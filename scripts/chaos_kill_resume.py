#!/usr/bin/env python
"""Kill a running campaign with SIGKILL, resume it, and verify the cache.

The scripted version of the durability contract's harshest test: a
campaign process that dies without *any* cleanup — no atexit hooks, no
exception handlers, exactly what an OOM kill or a power cut looks like —
must resume from its last completed task and, once finished, serve the
identical spec entirely from cache.

Phases (each is asserted, any failure exits non-zero):

1. **kill** — launch the campaign, poll the store until at least
   ``--min-objects`` task records exist, then ``SIGKILL`` the process.
   The store may only contain *complete* records afterwards (writes are
   atomic), which phase 3 verifies implicitly.
2. **resume** — run the same campaign to completion.  Completed tasks are
   served from the store; only the remainder computes.
3. **verify** — run a third time with ``--require-cached``: exit code 3
   from the CLI (anything recomputed) fails the drill.

Usage::

    PYTHONPATH=src python scripts/chaos_kill_resume.py \\
        --spec campaigns/smoke.toml --store /tmp/chaos/store

If the campaign finishes before the kill threshold is reached the drill
degrades to a plain cache check (and says so) — that can happen on very
fast machines with tiny specs; raise ``--min-objects`` to tighten it.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

#: Exit code of ``--require-cached`` when a task had to be computed.
REQUIRE_CACHED_EXIT = 3


def _campaign_command(args: argparse.Namespace, extra=()) -> list:
    return [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        "campaign",
        "--spec",
        args.spec,
        "--store",
        args.store,
        "--out",
        args.out,
        "--explain",
        *extra,
    ]


def _store_objects(store: Path) -> int:
    objects = store / "objects"
    if not objects.is_dir():
        return 0
    return sum(1 for _ in objects.glob("*/*.json"))


def phase_kill(args: argparse.Namespace) -> bool:
    """Start the campaign and SIGKILL it mid-run; True if the kill landed."""
    store = Path(args.store)
    process = subprocess.Popen(_campaign_command(args))
    deadline = time.monotonic() + args.kill_timeout
    try:
        while time.monotonic() < deadline:
            if process.poll() is not None:
                print(
                    f"[chaos] campaign finished (rc={process.returncode}) before "
                    f"{args.min_objects} store object(s) appeared — kill skipped"
                )
                return False
            if _store_objects(store) >= args.min_objects:
                os.kill(process.pid, signal.SIGKILL)
                process.wait()
                print(
                    f"[chaos] SIGKILL after {_store_objects(store)} store "
                    f"object(s); campaign exited rc={process.returncode}"
                )
                return True
            time.sleep(args.poll_seconds)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    raise SystemExit(
        f"[chaos] campaign neither finished nor reached {args.min_objects} "
        f"store object(s) within {args.kill_timeout}s"
    )


def phase_resume(args: argparse.Namespace) -> None:
    completed = subprocess.run(_campaign_command(args))
    if completed.returncode != 0:
        raise SystemExit(
            f"[chaos] resume run failed with rc={completed.returncode}"
        )
    print("[chaos] resume run completed")


def phase_verify(args: argparse.Namespace) -> None:
    completed = subprocess.run(
        _campaign_command(args, extra=("--require-cached",))
    )
    if completed.returncode == REQUIRE_CACHED_EXIT:
        raise SystemExit(
            "[chaos] verification failed: tasks were recomputed after resume "
            "(the store lost completed work)"
        )
    if completed.returncode != 0:
        raise SystemExit(
            f"[chaos] verification run failed with rc={completed.returncode}"
        )
    print("[chaos] verified: identical spec served 100% from cache")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--spec", default="campaigns/smoke.toml", help="campaign spec file"
    )
    parser.add_argument("--store", required=True, help="result store root")
    parser.add_argument(
        "--out", default=None, help="artefact directory (default: <store>/../out)"
    )
    parser.add_argument(
        "--min-objects",
        type=int,
        default=2,
        help="store objects that must exist before the kill fires",
    )
    parser.add_argument(
        "--kill-timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the kill threshold before giving up",
    )
    parser.add_argument(
        "--poll-seconds", type=float, default=0.05, help="store polling interval"
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = str(Path(args.store).parent / "out")

    killed = phase_kill(args)
    phase_resume(args)
    phase_verify(args)
    print(
        "[chaos] drill passed"
        + ("" if killed else " (campaign outran the kill; cache check only)")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
