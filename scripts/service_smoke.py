#!/usr/bin/env python
"""End-to-end smoke of the estimation service: loadgen, SIGKILL, recover.

Launches the real server (``rept-experiment serve``) as a subprocess,
then asserts the full always-on contract from outside the process:

1. **loadgen** — drive ``--tenants`` concurrent tenants at ``--rate``
   eps each (with interleaved queries) against the live server; the
   aggregate delivered throughput must clear ``--floor`` (env
   ``REPRO_SERVICE_SMOKE_FLOOR``) and no frame may be shed under block
   backpressure.
2. **drill** — open a deterministic tenant, stream a fixed seeded
   packet-flow prefix, take an explicit checkpoint, stream more frames
   that will *not* be checkpointed, then ``SIGKILL`` the server — no
   cleanup, no drain, OOM-kill semantics.
3. **recover** — restart the server on the same ``--checkpoint-dir``;
   reopening the drill tenant must report exactly the checkpointed
   offset, and its global/local estimates must be **bit-identical** to a
   fresh serial :class:`GroupStateSet` run over that delivered prefix.
4. **drain** — a client ``shutdown`` must checkpoint every session and
   exit the server cleanly (rc 0).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py \\
        --checkpoint-dir /tmp/service-smoke/ckpt

Any assertion failure exits non-zero.  Unlike the pytest suites this
crosses a real process boundary: the kill tests the on-disk checkpoint
story, not an in-process simulation of it.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import ReptConfig  # noqa: E402
from repro.core.state import GroupStateSet  # noqa: E402
from repro.generators.traffic import packet_flow_records  # noqa: E402
from repro.service.artefacts import READY_PREFIX, service_loadgen  # noqa: E402
from repro.service.client import TcpServiceClient  # noqa: E402

DRILL_TENANT = "smoke-drill"
DRILL_ENGINE = {"kind": "rept", "m": 16, "c": 32, "seed": 20260808}
DRILL_RECORDS = 6000
DRILL_FRAME = 500
#: Frames delivered before the explicit checkpoint; the rest are streamed
#: after it and must be lost to the SIGKILL.
DRILL_CHECKPOINTED_FRAMES = 8


class Server:
    """A ``rept-experiment serve`` subprocess plus its announced endpoint."""

    def __init__(self, checkpoint_dir: str, startup_timeout: float):
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.cli",
                "serve",
                "--port",
                "0",
                "--checkpoint-dir",
                checkpoint_dir,
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        lines: "queue.Queue[str]" = queue.Queue()

        def _pump():
            for line in self.process.stdout:
                lines.put(line)

        self._reader = threading.Thread(target=_pump, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + startup_timeout
        self.host = self.port = None
        while time.monotonic() < deadline:
            try:
                line = lines.get(timeout=0.2)
            except queue.Empty:
                if self.process.poll() is not None:
                    raise SystemExit(
                        f"[smoke] server exited rc={self.process.returncode} "
                        "before announcing readiness"
                    )
                continue
            if line.startswith(READY_PREFIX):
                _, self.host, port = line.split()
                self.port = int(port)
                return
        self.process.kill()
        raise SystemExit(
            f"[smoke] server did not announce {READY_PREFIX!r} within "
            f"{startup_timeout}s"
        )

    def sigkill(self) -> None:
        os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait()

    def wait_clean_exit(self, timeout: float = 30.0) -> None:
        rc = self.process.wait(timeout=timeout)
        if rc != 0:
            raise SystemExit(f"[smoke] server exited rc={rc} after shutdown")


def _call(host, port, coroutine_factory):
    """Run one client conversation on a fresh connection."""

    async def _run():
        client = await TcpServiceClient.connect(host, port)
        try:
            return await coroutine_factory(client)
        finally:
            await client.close()

    return asyncio.run(_run())


def drill_frames():
    records = packet_flow_records(
        DRILL_RECORDS, duration_seconds=600.0, seed=DRILL_ENGINE["seed"]
    )
    rows = [[record.u, record.v, record.time] for record in records]
    return [rows[i : i + DRILL_FRAME] for i in range(0, len(rows), DRILL_FRAME)]


def drill_reference(frames, num_frames):
    """Serial GroupStateSet run over the first ``num_frames`` frames."""
    state = GroupStateSet(
        ReptConfig(m=DRILL_ENGINE["m"], c=DRILL_ENGINE["c"], seed=DRILL_ENGINE["seed"])
    )
    delivered = 0
    for frame in frames[:num_frames]:
        delivered += state.process_edges([(u, v) for u, v, _ in frame])
    estimate = state.estimate(delivered)
    nodes = sorted(estimate.local_counts)[:5]
    return delivered, estimate, nodes


def phase_loadgen(args, server) -> None:
    result = service_loadgen(
        host=server.host,
        port=server.port,
        tenants=args.tenants,
        duration_seconds=args.duration,
        rate_eps=args.rate,
        frame_records=args.frame_records,
        seed=7,
        calibration_records=20_000,
    )
    report = result.metadata
    print(
        f"[smoke] loadgen: {report['aggregate_eps']:,.0f} eps aggregate over "
        f"{args.tenants} tenant(s), {report['shed_frames']} shed, "
        f"query p95 {report['query']['p95_ms']:.1f} ms"
    )
    if report["shed_frames"] != 0:
        raise SystemExit("[smoke] block backpressure shed frames")
    if report["delivered_records"] != report["submitted_records"]:
        raise SystemExit("[smoke] submitted frames were not all delivered")
    if report["aggregate_eps"] < args.floor:
        raise SystemExit(
            f"[smoke] aggregate {report['aggregate_eps']:,.0f} eps below the "
            f"{args.floor:,.0f} floor"
        )


def phase_drill_ingest(server, frames, expected_offset) -> None:
    async def conversation(client):
        await client.open(DRILL_TENANT, engine=DRILL_ENGINE)
        for frame in frames[:DRILL_CHECKPOINTED_FRAMES]:
            await client.ingest(DRILL_TENANT, frame, timestamped=True)
        # Poll until the ingest loop has drained the queue, then pin the
        # prefix with an explicit checkpoint.
        while True:
            stats = (await client.stats(DRILL_TENANT))["stats"]
            if stats["delivered"] >= expected_offset:
                break
            await asyncio.sleep(0.01)
        done = await client.checkpoint(DRILL_TENANT)
        offset = done["checkpoints"][DRILL_TENANT]["stream_offset"]
        if offset != expected_offset:
            raise SystemExit(
                f"[smoke] checkpoint landed at offset {offset}, "
                f"expected {expected_offset}"
            )
        # Post-checkpoint frames: delivered in memory, never durable —
        # the SIGKILL must erase exactly these.
        for frame in frames[DRILL_CHECKPOINTED_FRAMES:]:
            await client.ingest(DRILL_TENANT, frame, timestamped=True)

    _call(server.host, server.port, conversation)
    print(
        f"[smoke] drill tenant checkpointed at offset {expected_offset}, "
        f"{len(frames) - DRILL_CHECKPOINTED_FRAMES} un-checkpointed frame(s) "
        "in flight"
    )


def phase_recover(server, frames, checkpoint_offset) -> None:
    async def conversation(client):
        # No engine spec: this only succeeds if the restarted server
        # recovered the tenant from its checkpoints on start.
        opened = await client.open(DRILL_TENANT)
        if opened.get("created"):
            raise SystemExit("[smoke] drill tenant came back empty, not recovered")
        recovered_offset = opened["delivered"]
        # Recovery must land on a frame-aligned prefix no older than the
        # explicit checkpoint (the periodic checkpoint timer may have
        # captured some of the in-flight post-checkpoint frames too).
        if recovered_offset < checkpoint_offset:
            raise SystemExit(
                f"[smoke] recovered offset {recovered_offset} predates the "
                f"explicit checkpoint at {checkpoint_offset}"
            )
        if recovered_offset % DRILL_FRAME:
            raise SystemExit(
                f"[smoke] recovered offset {recovered_offset} is not "
                f"frame-aligned (frames hold {DRILL_FRAME} records)"
            )
        _, estimate, nodes = drill_reference(
            frames, recovered_offset // DRILL_FRAME
        )
        result = await client.query_global(DRILL_TENANT)
        if result["global_count"] != estimate.global_count:
            raise SystemExit(
                f"[smoke] post-recovery global count {result['global_count']} "
                f"!= serial reference {estimate.global_count}"
            )
        if result["edges_processed"] != estimate.edges_processed:
            raise SystemExit("[smoke] post-recovery edges_processed mismatch")
        counts = (await client.query_local(DRILL_TENANT, nodes))["counts"]
        for node, count in counts:
            if count != estimate.local_count(node):
                raise SystemExit(
                    f"[smoke] post-recovery local count mismatch at node {node}"
                )
        return recovered_offset, result

    recovered_offset, result = _call(server.host, server.port, conversation)
    print(
        f"[smoke] recovery verified: offset {recovered_offset}, global count "
        f"{result['global_count']:.3f} bit-identical to the serial reference"
    )


def phase_shutdown(server) -> None:
    async def conversation(client):
        return await client.shutdown()

    drained = _call(server.host, server.port, conversation)
    server.wait_clean_exit()
    print(
        f"[smoke] graceful shutdown drained {len(drained['drained'])} "
        "session(s), server exited rc=0"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument("--checkpoint-dir", required=True)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--rate", type=float, default=20_000.0)
    parser.add_argument("--frame-records", type=int, default=1000)
    parser.add_argument(
        "--floor",
        type=float,
        default=float(os.environ.get("REPRO_SERVICE_SMOKE_FLOOR", "10000")),
        help="minimum aggregate delivered eps for the loadgen phase",
    )
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)
    Path(args.checkpoint_dir).mkdir(parents=True, exist_ok=True)

    frames = drill_frames()
    checkpoint_offset = DRILL_CHECKPOINTED_FRAMES * DRILL_FRAME

    server = Server(args.checkpoint_dir, args.startup_timeout)
    print(f"[smoke] server ready on {server.host}:{server.port}")
    try:
        phase_loadgen(args, server)
        phase_drill_ingest(server, frames, checkpoint_offset)
        server.sigkill()
        print("[smoke] SIGKILL delivered — restarting on the same checkpoints")
    finally:
        if server.process.poll() is None:
            server.process.kill()
            server.process.wait()

    server = Server(args.checkpoint_dir, args.startup_timeout)
    try:
        phase_recover(server, frames, checkpoint_offset)
        phase_shutdown(server)
    finally:
        if server.process.poll() is None:
            server.process.kill()
            server.process.wait()

    print("[smoke] service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
