#!/usr/bin/env python
"""Membership-change chaos drill for the elastic shard coordinator.

The scripted version of the cluster's correctness contract: a worker
process SIGKILLed mid-stream (no cleanup — real `kill -9` semantics) and
a replacement joined a few batches later must leave the final estimate
**bit-identical** to the serial driver, over an (m, c) grid that covers
every group shape (single partial group, equal groups, ragged trailing
group).  Recovery must also be *observable*: the drill fails if
``worker_deaths``, ``worker_joins`` or ``shard_migrations`` stayed zero
where the script demands them.

Per (m, c) cell:

1. stream the first ``--kill-at`` batches into a 2-worker coordinator;
2. ``SIGKILL`` the worker owning the most shards (detected by the
   coordinator on the next interaction, shards migrated from restore
   points + WAL replay);
3. stream until ``--join-at``, then admit a replacement worker (live
   migration onto the joiner);
4. stream the remainder, estimate, and compare against
   ``run_rept(..., backend="serial")``: global count, local counts and
   edges stored must match exactly — not approximately.

Usage::

    PYTHONPATH=src python scripts/cluster_chaos_drill.py
    PYTHONPATH=src python scripts/cluster_chaos_drill.py \\
        --edges 3000 --grid 4:3,8:24,16:40

Exits non-zero on the first divergence or missing counter.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.cluster import ElasticCoordinator
from repro.core.config import ReptConfig
from repro.core.parallel import run_rept

#: Default (m, c) grid: c < m, c == m, c = k*m, and ragged shapes.
DEFAULT_GRID = "4:3,4:4,4:12,8:24,8:30,16:40"

#: Nodes probed for local-count bit-identity.
PROBE_NODES = (0, 1, 2, 17, 42, 77)


def make_edges(n: int, nodes: int, seed: int):
    rng = random.Random(seed)
    edges = []
    while len(edges) < n:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            edges.append((u, v))
    return edges


def drill_cell(m: int, c: int, args: argparse.Namespace) -> dict:
    config = ReptConfig(m=m, c=c, seed=args.seed + m * 100 + c, track_local=True)
    edges = make_edges(args.edges, args.nodes, args.seed + m + c)
    reference = run_rept(edges, config, backend="serial")

    with ElasticCoordinator(
        config,
        num_workers=2,
        snapshot_every=args.snapshot_every,
        wal_capacity=args.wal_capacity,
    ) as coord:
        for index, start in enumerate(range(0, len(edges), args.batch)):
            if index == args.kill_at:
                loads = coord.shard_map.by_worker()
                victim = max(loads, key=lambda w: (len(loads[w]), w))
                coord.kill_worker(victim)
            if index == args.join_at:
                coord.add_worker()
            coord.submit(edges[start : start + args.batch])
        estimate = coord.estimate()
        counters = dict(coord.counters)

    failures = []
    if estimate.global_count != reference.global_count:
        failures.append(
            f"global {estimate.global_count!r} != {reference.global_count!r}"
        )
    if estimate.edges_processed != reference.edges_processed:
        failures.append("edges_processed diverged")
    if estimate.edges_stored != reference.edges_stored:
        failures.append("edges_stored diverged")
    for node in PROBE_NODES:
        if estimate.local_count(node) != reference.local_count(node):
            failures.append(f"local_count({node}) diverged")
    for counter in ("worker_deaths", "worker_joins"):
        if counters[counter] < 1:
            failures.append(f"{counter} stayed zero — drill did not bite")
    if counters["shard_migrations"] < 1:
        failures.append("shard_migrations stayed zero — no live migration")
    return {
        "m": m,
        "c": c,
        "estimate": estimate,
        "counters": counters,
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=2000)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--batch", type=int, default=100)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--kill-at", type=int, default=6,
                        help="batch index before which a worker is SIGKILLed")
    parser.add_argument("--join-at", type=int, default=12,
                        help="batch index before which a replacement joins")
    parser.add_argument("--snapshot-every", type=int, default=4)
    parser.add_argument("--wal-capacity", type=int, default=32)
    parser.add_argument("--grid", default=DEFAULT_GRID,
                        help="comma-separated m:c cells")
    args = parser.parse_args(argv)

    if args.join_at <= args.kill_at:
        parser.error("--join-at must come after --kill-at")
    if args.kill_at >= args.edges // args.batch:
        parser.error("--kill-at is past the end of the stream")

    cells = []
    for token in args.grid.split(","):
        m_text, _, c_text = token.strip().partition(":")
        cells.append((int(m_text), int(c_text)))

    print(f"[drill] {len(cells)} (m, c) cells, {args.edges} edges each, "
          f"kill@batch {args.kill_at}, join@batch {args.join_at}")
    bad = 0
    for m, c in cells:
        result = drill_cell(m, c, args)
        counters = result["counters"]
        status = "ok " if not result["failures"] else "FAIL"
        print(
            f"[drill] {status} m={m:<3} c={c:<3} "
            f"global={result['estimate'].global_count:<14.4f} "
            f"deaths={counters['worker_deaths']} "
            f"joins={counters['worker_joins']} "
            f"migrations={counters['shard_migrations']} "
            f"epoch={int(result['estimate'].metadata['shard_map_epoch'])}"
        )
        for failure in result["failures"]:
            bad += 1
            print(f"[drill]     !! {failure}")
    if bad:
        print(f"[drill] FAILED: {bad} assertion(s) across the grid")
        return 1
    print("[drill] all cells bit-identical through kill + join — PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
