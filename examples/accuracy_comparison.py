"""Accuracy comparison: REPT vs parallel MASCOT / TRIÈST / GPS.

A miniature version of the paper's Figures 3–4: sweep the number of
processors ``c`` on one dataset, estimate the global triangle count with
each method over several independent trials, and print the NRMSE of each
method next to the closed-form prediction for REPT and parallel MASCOT.

Run with::

    python examples/accuracy_comparison.py
"""

from __future__ import annotations

from repro.analysis.variance import parallel_mascot_variance, predicted_nrmse, rept_variance
from repro.experiments.runner import default_method_specs, run_global_trials
from repro.generators.datasets import load_dataset
from repro.graph.statistics import compute_statistics
from repro.utils.tables import format_table


def main() -> None:
    dataset = "flickr-sim"
    inv_p = 10                      # p = 0.1 -> m = 10
    c_values = (2, 5, 10, 20)
    num_trials = 8

    stream = load_dataset(dataset)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    truth = float(stats.num_triangles)
    print(
        f"Dataset {dataset}: {stats.num_nodes} nodes, {stats.num_edges} edges, "
        f"tau = {stats.num_triangles:,}, eta = {stats.eta:,} "
        f"(eta/tau = {stats.eta_to_tau_ratio():.1f})"
    )

    rows = []
    for c in c_values:
        specs = default_method_specs(1.0 / inv_p, c, len(edges))
        summaries = run_global_trials(specs, edges, truth, num_trials, seed=17 + c)
        rows.append(
            [
                c,
                summaries["REPT"].nrmse,
                predicted_nrmse(rept_variance(truth, stats.eta, inv_p, c), truth),
                summaries["MASCOT"].nrmse,
                predicted_nrmse(parallel_mascot_variance(truth, stats.eta, inv_p, c), truth),
                summaries["TRIEST"].nrmse,
                summaries["GPS"].nrmse,
            ]
        )
    print()
    print(
        format_table(
            [
                "c",
                "REPT (measured)",
                "REPT (predicted)",
                "MASCOT (measured)",
                "MASCOT (predicted)",
                "TRIEST (measured)",
                "GPS (measured)",
            ],
            rows,
            title=f"Global-count NRMSE, p = 1/{inv_p}, {num_trials} trials per cell",
        )
    )
    print()
    print("Expected shape (paper, Figures 3-4): REPT below every baseline, and the")
    print("gap widening as c grows; GPS worst because it can store only half the")
    print("edges under the same memory budget.")


if __name__ == "__main__":
    main()
