"""Execution backends: the same REPT estimate from serial, thread and process drivers.

REPT's accuracy is a property of its counters, not of the scheduling of the
``c`` processors.  This example runs the same configuration through the
three drivers, checks the estimates agree bit-for-bit, and reports the
wall-clock time of each backend so the GIL's effect on the thread backend is
visible and honest (see DESIGN.md for the runtime-reproduction caveats).

Run with::

    python examples/scaling_backends.py
"""

from __future__ import annotations

from repro.core import ReptConfig, run_rept
from repro.generators.datasets import load_dataset
from repro.utils.tables import format_table
from repro.utils.timer import Timer


def main() -> None:
    stream = load_dataset("livejournal-sim")
    edges = stream.edges()
    config = ReptConfig(m=8, c=24, seed=2024, track_local=False)
    print(f"Stream: {stream!r}")
    print(f"Configuration: {config.describe()}")

    rows = []
    estimates = {}
    for backend in ("serial", "thread", "process"):
        with Timer() as timer:
            estimate = run_rept(edges, config, backend=backend)
        estimates[backend] = estimate.global_count
        rows.append([backend, round(timer.elapsed, 3), estimate.global_count,
                     estimate.edges_stored])

    print()
    print(format_table(
        ["backend", "seconds", "global estimate", "edges stored"],
        rows,
        title="Same configuration, three execution backends",
    ))
    print()
    agree = len({round(value, 6) for value in estimates.values()}) == 1
    print(f"Estimates identical across backends: {agree}")
    print("Note: the thread backend shows little speedup under CPython's GIL;")
    print("the process backend pays a start-up and serialisation cost that only")
    print("amortises on long streams.  Accuracy is unaffected either way.")


if __name__ == "__main__":
    main()
