"""Execution backends: the same REPT estimate from every driver.

REPT's accuracy is a property of its counters, not of the scheduling of the
``c`` processors.  This example runs the same configuration through all five
drivers — including the stream-sharded ``chunked-*`` backends, whose tasks
are (group × chunk) pairs merged exactly afterwards — checks the estimates
agree bit-for-bit, and reports the wall-clock time of each backend so the
GIL's effect on the thread backend and the sharding overheads are visible
and honest (see DESIGN.md for the runtime-reproduction caveats).

Run with::

    python examples/scaling_backends.py
"""

from __future__ import annotations

from repro.core import ReptConfig, run_rept
from repro.generators.datasets import load_dataset
from repro.utils.tables import format_table
from repro.utils.timer import Timer

BACKENDS = ("serial", "thread", "process", "chunked-serial", "chunked-process")


def main() -> None:
    stream = load_dataset("livejournal-sim")
    edges = stream.edges()
    config = ReptConfig(m=8, c=24, seed=2024, track_local=False)
    print(f"Stream: {stream!r}")
    print(f"Configuration: {config.describe()}")

    rows = []
    estimates = {}
    for backend in BACKENDS:
        with Timer() as timer:
            estimate = run_rept(edges, config, backend=backend)
        estimates[backend] = estimate.global_count
        rows.append([
            backend,
            round(timer.elapsed, 3),
            estimate.global_count,
            estimate.edges_stored,
            int(estimate.metadata.get("num_chunks", 1)),
        ])

    print()
    print(format_table(
        ["backend", "seconds", "global estimate", "edges stored", "chunks"],
        rows,
        title="Same configuration, five execution backends",
    ))
    print()
    agree = len(set(estimates.values())) == 1
    print(f"Estimates identical across backends: {agree}")
    print("Notes: the thread backend shows little speedup under CPython's GIL;")
    print("the process backend ships the whole stream to every worker and caps")
    print("parallelism at the number of groups; the chunked backends shard the")
    print("stream so parallelism scales with its length and no task receives")
    print("more than one chunk, at the cost of a cheap storing pre-pass.")


if __name__ == "__main__":
    main()
