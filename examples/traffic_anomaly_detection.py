"""Per-interval triangle counting on a packet stream (anomaly detection).

The paper motivates REPT with time-interval analysis: "Π is a network packet
stream collected on a router in a time interval (e.g., one hour in a day),
and one wants to compute global and local triangle counts for each
interval."  A sudden jump in the triangle count of an interval is a classic
signature of coordinated behaviour (botnet command bursts, scanning cliques,
sybil rings).

This example:

1. synthesises a router trace — sparse benign background traffic plus a
   coordinated clique burst in two intervals;
2. slices it into 5-minute windows;
3. estimates each window's triangle count with REPT (cheaply, using only a
   fraction of each window's edges per processor);
4. flags windows whose estimate exceeds a robust threshold (median + k·MAD).

Run with::

    python examples/traffic_anomaly_detection.py
"""

from __future__ import annotations

import statistics
from typing import List, Tuple

from repro import ReptConfig, ReptEstimator
from repro.generators.traffic import TrafficTraceSpec, synthetic_packet_trace
from repro.streaming.windows import TimeWindowedStream
from repro.utils.tables import format_table


def detect_anomalies(estimates: List[float], sensitivity: float = 6.0) -> List[int]:
    """Flag indices whose value exceeds median + sensitivity * MAD."""
    median = statistics.median(estimates)
    mad = statistics.median([abs(value - median) for value in estimates]) or 1.0
    threshold = median + sensitivity * mad
    return [index for index, value in enumerate(estimates) if value > threshold]


def run_detector(seed: int = 7) -> Tuple[List[float], List[int], TrafficTraceSpec]:
    """Generate the trace, estimate per-window counts, return flags."""
    spec = TrafficTraceSpec(
        num_hosts=600,
        duration_seconds=3600.0,       # one hour of traffic
        background_rate=15.0,          # benign flows per second
        anomaly_intervals=(4, 9),      # two coordinated bursts
        anomaly_clique_size=16,
        window_seconds=300.0,          # 5-minute intervals
    )
    records = synthetic_packet_trace(spec, seed=seed)
    windows = TimeWindowedStream(records, spec.window_seconds, name="router")

    estimates: List[float] = []
    for index, (start, end, stream) in enumerate(windows.windows()):
        # One REPT instance per interval; p = 1/4 of the window's edges per
        # processor, 4 processors.
        estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=1000 + index, track_local=False))
        estimate = estimator.run(stream)
        estimates.append(estimate.global_count)
    flagged = detect_anomalies(estimates)
    return estimates, flagged, spec


def main() -> None:
    estimates, flagged, spec = run_detector()
    rows = []
    for index, value in enumerate(estimates):
        status = "ANOMALY" if index in flagged else ""
        rows.append([index, f"{index * 5}-{index * 5 + 5} min", round(value, 1), status])
    print(format_table(["window", "interval", "estimated triangles", "flag"], rows,
                       title="Per-interval triangle count estimates (REPT, m=4, c=4)"))
    print()
    print(f"Planted anomalous intervals: {list(spec.anomaly_intervals)}")
    print(f"Flagged intervals:           {flagged}")


if __name__ == "__main__":
    main()
