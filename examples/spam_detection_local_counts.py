"""Local triangle counts for suspicious-account screening.

Local triangle counts (and the clustering coefficients derived from them)
are a standard feature for spam / sybil screening: genuine accounts embed in
tightly-knit neighbourhoods (high local triangle count relative to degree),
while spam accounts that mass-follow victims have many neighbours but almost
no triangles among them.

This example:

1. builds a social graph with organic communities (high triangle density)
   and injects a handful of "spammer" nodes that attach to many random
   victims without closing triangles;
2. streams the graph through REPT with local tracking enabled;
3. ranks nodes by estimated clustering coefficient (estimated local count
   over possible neighbour pairs) and reports how many of the true spammers
   appear in the bottom of the ranking.

Run with::

    python examples/spam_detection_local_counts.py
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro import ReptConfig, ReptEstimator
from repro.generators.random_graphs import barabasi_albert_stream
from repro.streaming.edge_stream import EdgeStream
from repro.streaming.transforms import shuffle_stream
from repro.utils.rng import as_random_source
from repro.utils.tables import format_table


def build_social_graph_with_spammers(
    num_users: int = 2000,
    num_spammers: int = 12,
    links_per_spammer: int = 60,
    seed: int = 5,
) -> Tuple[EdgeStream, Set[int]]:
    """Organic BA community graph + spammer nodes with triangle-free links."""
    organic = barabasi_albert_stream(num_users, 6, triad_closure=0.6, seed=seed)
    rng = as_random_source(seed + 1)
    edges = organic.edges()
    spammers = set(range(num_users, num_users + num_spammers))
    for spammer in spammers:
        victims = set()
        while len(victims) < links_per_spammer:
            victims.add(int(rng.integers(0, num_users)))
        for victim in victims:
            edges.append((spammer, victim))
    stream = EdgeStream(edges, name="social+spam", validate=False)
    return shuffle_stream(stream, seed=seed + 2), spammers


def estimated_clustering(
    local_counts: Dict, degrees: Dict, minimum_degree: int = 20
) -> Dict:
    """Estimated clustering coefficient for nodes above a degree floor."""
    scores = {}
    for node, degree in degrees.items():
        if degree < minimum_degree:
            continue
        pairs = degree * (degree - 1) / 2
        scores[node] = local_counts.get(node, 0.0) / pairs
    return scores


def main() -> None:
    stream, spammers = build_social_graph_with_spammers()
    print(f"Stream: {stream!r} with {len(spammers)} planted spammers")

    estimator = ReptEstimator(ReptConfig(m=5, c=5, seed=11, track_local=True))
    estimate = estimator.run(stream)

    degrees = stream.to_graph().degree_sequence()
    scores = estimated_clustering(estimate.local_counts, degrees)

    # Rank from most suspicious (lowest clustering) upward.
    ranked: List = sorted(scores, key=scores.get)
    suspects = ranked[: 2 * len(spammers)]
    caught = [node for node in suspects if node in spammers]

    rows = [
        [node, degrees[node], round(estimate.local_count(node), 1),
         f"{scores[node]:.4f}", "SPAMMER" if node in spammers else ""]
        for node in suspects[:20]
    ]
    print()
    print(format_table(
        ["node", "degree", "estimated tau_v", "est. clustering", "ground truth"],
        rows,
        title="Most suspicious accounts by estimated clustering coefficient",
    ))
    print()
    print(
        f"Planted spammers recovered in the top-{len(suspects)} suspect list: "
        f"{len(caught)}/{len(spammers)}"
    )


if __name__ == "__main__":
    main()
