"""Quickstart: estimate global and local triangle counts of a graph stream.

This example walks through the core public API in about a minute of runtime:

1. load a registered synthetic dataset (a laptop-scale analogue of one of
   the paper's graphs);
2. compute the exact counts for reference;
3. run REPT with ``c`` processors at sampling probability ``p = 1/m``;
4. run the parallel-MASCOT baseline at the same ``p`` and ``c``;
5. compare the errors.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExactStreamingCounter, ReptConfig, ReptEstimator, load_dataset, parallelize
from repro.utils.tables import format_table


def main() -> None:
    # 1. A graph stream: ~12,000 edges of the Flickr analogue.
    stream = load_dataset("flickr-sim")
    print(f"Stream: {stream!r}")

    # 2. Exact counts (feasible at this scale; on a billion-edge stream you
    #    would only have the estimates).
    exact = ExactStreamingCounter().run(stream)
    print(f"Exact global triangle count: {exact.global_count:,.0f}")

    # 3. REPT with m = 10 (p = 0.1) on c = 10 processors.
    config = ReptConfig(m=10, c=10, seed=42)
    rept_estimate = ReptEstimator(config).run(stream)

    # 4. The "direct parallelisation" baseline: 10 independent MASCOT
    #    instances at the same sampling probability, averaged.
    mascot_estimate = parallelize(
        "mascot", num_processors=10, probability=0.1, stream_length=len(stream), seed=42
    ).run(stream)

    # 5. Compare.
    truth = exact.global_count
    rows = [
        ["exact", truth, "-"],
        ["REPT", rept_estimate.global_count, abs(rept_estimate.global_count - truth) / truth],
        ["parallel MASCOT", mascot_estimate.global_count, abs(mascot_estimate.global_count - truth) / truth],
    ]
    print()
    print(format_table(["method", "global estimate", "relative error"], rows))

    # Local counts: show the five nodes with the largest exact counts.
    print()
    top_nodes = sorted(exact.local_counts, key=exact.local_counts.get, reverse=True)[:5]
    local_rows = [
        [node, exact.local_counts[node], rept_estimate.local_count(node)]
        for node in top_nodes
    ]
    print(format_table(["node", "exact tau_v", "REPT estimate"], local_rows,
                       title="Local triangle counts of the five busiest nodes"))


if __name__ == "__main__":
    main()
