"""Ingestion-throughput benchmark: per-edge vs batched vs native ingestion.

Measures edges/second for the per-edge streaming path against the batched
pipeline (``process_stream(batch_size=...)``) across (m, c) shapes, both
hash families, two stream sizes and both ingestion kernels, on the
packet-flow workload the paper motivates (duplicate-heavy arrivals over a
scale-free host topology).  Every cell asserts bit-identical estimates
between the two paths; two cells carry acceptance bars at m=16, c=32 on
the full-size stream:

* the **python headline** (tabulation hashing) asserts the batch path is
  at least ``REPRO_BENCH_INGEST_MIN_SPEEDUP`` (default 3×) faster than
  the per-edge path;
* the **native headline** asserts the compiled kernel's batch path is at
  least ``REPRO_BENCH_INGEST_MIN_NATIVE_SPEEDUP`` (default 2×) faster
  than the python kernel's batch path on the same cell.

Every other cell asserts the batch path is not slower than per-edge (with
a small noise allowance).

Each run rewrites ``benchmarks/BENCH_ingest.json`` with the measured
numbers so the repository carries a throughput trajectory across PRs; the
CI smoke job uploads the file as an artifact and the regression gate
(``benchmarks/check_bench_regression.py``) matches cells kernel-keyed.

Scale knobs: ``REPRO_BENCH_INGEST_EDGES`` (default 250000; CI uses a
smaller stream), ``REPRO_BENCH_INGEST_ROUNDS`` (interleaved best-of
rounds), ``REPRO_BENCH_INGEST_MIN_SPEEDUP`` and
``REPRO_BENCH_INGEST_MIN_NATIVE_SPEEDUP``.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core import ReptConfig, ReptEstimator
from repro.core.kernel import available_native_providers
from repro.generators.traffic import packet_flow_stream

BENCH_EDGES = int(os.environ.get("REPRO_BENCH_INGEST_EDGES", "250000"))
BENCH_ROUNDS = int(os.environ.get("REPRO_BENCH_INGEST_ROUNDS", "2"))
MIN_HEADLINE_SPEEDUP = float(os.environ.get("REPRO_BENCH_INGEST_MIN_SPEEDUP", "3.0"))
#: Native-kernel acceptance bar: compiled batch ingestion vs the python
#: kernel's batch ingestion on the same (m, c, hash, stream) cell.
MIN_NATIVE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_INGEST_MIN_NATIVE_SPEEDUP", "2.0")
)
#: Noise allowance for the "batch is not slower" assertion on non-headline
#: cells (process schedulers on shared CI runners jitter second-scale runs).
NOT_SLOWER_TOLERANCE = 0.9
BATCH_SIZE = 65536
RESULTS_PATH = Path(__file__).with_name("BENCH_ingest.json")

#: (m, c, hash_kind, fraction of BENCH_EDGES, kernel, headline?).  The
#: headline rows are the acceptance-criterion configuration: two complete
#: processor groups (c = 2m) at m=16 over a ≥200k-record stream, with the
#: hash family whose scalar path is the most expensive — exactly what
#: vectorization (and the compiled closure loop) amortise.  The python
#: cell of each (shape, hash, fraction) runs before its native twin so the
#: native headline can compare against the freshly measured python cell.
GRID = [
    (16, 32, "tabulation", 1.0, "python", True),
    (16, 32, "tabulation", 1.0, "auto", True),
    (16, 32, "splitmix", 1.0, "python", False),
    (16, 32, "splitmix", 1.0, "auto", False),
    (16, 16, "tabulation", 0.2, "python", False),
    (16, 32, "splitmix", 0.2, "python", False),
    (4, 8, "splitmix", 0.2, "auto", False),
]

_cells = []


def _measure(edges, m, c, hash_kind, kernel="python"):
    """Interleaved best-of-``BENCH_ROUNDS`` timing of both ingestion paths.

    Cyclic garbage collection is suspended inside the timed sections (and
    run between them): a generation-2 collection scans every live object —
    including the stream and whatever else the test session keeps resident
    — so letting one fire inside a timing window makes the measured ratio
    depend on allocation-count phase alignment rather than on the
    ingestion paths themselves.
    """
    config = dict(
        m=m, c=c, seed=7, hash_kind=hash_kind, track_local=False, kernel=kernel
    )
    per_edge_best = batch_best = float("inf")
    per_edge_estimate = batch_estimate = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(BENCH_ROUNDS):
            estimator = ReptEstimator(ReptConfig(**config))
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            estimator.process_stream(edges)
            per_edge_best = min(per_edge_best, time.perf_counter() - start)
            gc.enable()
            per_edge_estimate = estimator.estimate()
            del estimator

            estimator = ReptEstimator(ReptConfig(**config))
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            estimator.process_stream(edges, batch_size=BATCH_SIZE)
            batch_best = min(batch_best, time.perf_counter() - start)
            gc.enable()
            batch_estimate = estimator.estimate()
            del estimator
    finally:
        if gc_was_enabled:
            gc.enable()
    return per_edge_best, batch_best, per_edge_estimate, batch_estimate


@pytest.fixture(scope="module")
def full_stream():
    return packet_flow_stream(BENCH_EDGES, seed=13)


def _python_twin(m, c, hash_kind, num_records):
    """The already-measured python-kernel cell matching a native cell."""
    for cell in _cells:
        if (
            cell["m"] == m
            and cell["c"] == c
            and cell["hash"] == hash_kind
            and cell["num_records"] == num_records
            and cell["kernel"] == "python"
        ):
            return cell
    return None


@pytest.mark.parametrize(
    "m,c,hash_kind,fraction,kernel,headline",
    GRID,
    ids=[
        f"m{m}-c{c}-{kind}-{int(frac * 100)}pct-{kernel}"
        for m, c, kind, frac, kernel, _ in GRID
    ],
)
def test_bench_ingest_throughput(full_stream, m, c, hash_kind, fraction, kernel, headline):
    if kernel != "python" and not available_native_providers():
        pytest.skip("no native kernel provider available in this environment")
    edges = full_stream.edges()
    if fraction < 1.0:
        edges = edges[: int(len(edges) * fraction)]
    num_distinct = len({tuple(sorted(edge)) for edge in edges})

    per_edge_seconds, batch_seconds, per_edge_estimate, batch_estimate = _measure(
        edges, m, c, hash_kind, kernel
    )
    resolved = batch_estimate.metadata.get("kernel", "python")
    python_twin = _python_twin(m, c, hash_kind, len(edges)) if kernel != "python" else None

    def _needs_retry():
        if not headline or len(edges) < 200_000:
            return False
        if kernel == "python":
            return per_edge_seconds / batch_seconds < MIN_HEADLINE_SPEEDUP
        return (
            python_twin is not None
            and python_twin["batch_seconds"] / batch_seconds < MIN_NATIVE_SPEEDUP
        )

    if _needs_retry():
        # Adaptive retry before judging the headline bar: best-of timings
        # can dip a few percent under ambient machine noise (the preceding
        # benchmarks saturate every core for minutes).  Extra interleaved
        # rounds only ever tighten the best-of estimates, so a genuine
        # regression still fails -- transient jitter recovers.
        retry = _measure(edges, m, c, hash_kind, kernel)
        per_edge_seconds = min(per_edge_seconds, retry[0])
        batch_seconds = min(batch_seconds, retry[1])

    # Exactness first: the batch pipeline (and the compiled kernel) is an
    # optimisation, not an approximation.
    assert batch_estimate.global_count == per_edge_estimate.global_count
    assert batch_estimate.local_counts == per_edge_estimate.local_counts
    assert batch_estimate.edges_stored == per_edge_estimate.edges_stored

    speedup = per_edge_seconds / batch_seconds
    _cells.append(
        {
            "m": m,
            "c": c,
            "hash": hash_kind,
            "kernel": resolved,
            "num_records": len(edges),
            "num_distinct": num_distinct,
            "per_edge_seconds": round(per_edge_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "per_edge_eps": int(len(edges) / per_edge_seconds),
            "batch_eps": int(len(edges) / batch_seconds),
            "speedup": round(speedup, 3),
            "headline": headline,
        }
    )
    print(
        f"\n  m={m} c={c} hash={hash_kind} kernel={resolved} records={len(edges)}: "
        f"per-edge {len(edges) / per_edge_seconds / 1e3:.0f}k eps, "
        f"batch {len(edges) / batch_seconds / 1e3:.0f}k eps ({speedup:.2f}x)"
    )

    if headline and kernel != "python" and len(edges) >= 200_000:
        # The native acceptance-criterion cell: the compiled kernel's batch
        # path against the python kernel's batch path on the same cell.  At
        # reduced smoke scale it degrades to the not-slower assertion.
        assert python_twin is not None, "python twin cell did not run first"
        native_speedup = python_twin["batch_seconds"] / batch_seconds
        print(f"  native batch speedup over python batch: {native_speedup:.2f}x")
        assert native_speedup >= MIN_NATIVE_SPEEDUP, (
            f"native batch ingestion speedup {native_speedup:.2f}x below the "
            f"{MIN_NATIVE_SPEEDUP}x acceptance bar at m={m}, c={c}"
        )
    elif headline and len(edges) >= 200_000:
        # The python acceptance-criterion cell; at reduced smoke scale
        # (REPRO_BENCH_INGEST_EDGES < 200k) it degrades to the
        # not-slower assertion like every other cell.
        assert speedup >= MIN_HEADLINE_SPEEDUP, (
            f"batch ingestion speedup {speedup:.2f}x below the "
            f"{MIN_HEADLINE_SPEEDUP}x acceptance bar at m={m}, c={c}"
        )
    else:
        assert speedup >= NOT_SLOWER_TOLERANCE, (
            f"batch ingestion slower than per-edge ({speedup:.2f}x) at "
            f"m={m}, c={c}, hash={hash_kind}, kernel={resolved}"
        )


def test_bench_ingest_writes_baseline():
    """Persist the measured cells as the repo's throughput baseline."""
    assert _cells, "benchmark cells did not run"
    payload = {
        "benchmark": "ingest-throughput",
        "created_unix": int(time.time()),
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "batch_size": BATCH_SIZE,
        "rounds": BENCH_ROUNDS,
        "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
        "min_native_speedup": MIN_NATIVE_SPEEDUP,
        "cells": _cells,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert RESULTS_PATH.exists()
