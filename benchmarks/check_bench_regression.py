#!/usr/bin/env python
"""CI throughput-regression gate for the ingest and service benchmarks.

Diffs a fresh benchmark payload against the baseline committed in the
repository and fails on regressions beyond a configurable tolerance
(default 20%).  Two payload kinds are understood (auto-detected from the
file, or forced with ``--kind``):

* **ingest** — ``BENCH_ingest.json`` (written by
  ``benchmarks/test_bench_ingest_throughput.py``): every cell's **batch
  throughput** is gated, calibrated by the per-edge reference path;
* **service** — ``BENCH_service.json`` (written by
  ``benchmarks/test_bench_service.py``): the multi-tenant
  **aggregate delivered eps** of the estimation service is gated,
  calibrated by ``calibration_eps`` (raw single-threaded estimator
  ingest on the same engine shape).

Cross-machine calibration
-------------------------
CI runners and the machine that produced the committed baseline rarely
share clock speed, so absolute edges/second are not directly comparable.
The gate therefore rescales the baseline by a *calibration factor*: the
median ratio of fresh vs baseline **per-edge** throughput across matched
cells.  The per-edge path is the un-optimised reference loop — a slower
machine slows both paths by the same factor, so calibrating on it isolates
regressions in the batch pipeline (the thing this repo optimises) from
hardware drift.  A regression in code shared by both paths shows up in the
calibration factor itself, which is printed and bounded (a factor outside
[1/5, 5] aborts with a diagnostic rather than silently gating nonsense).
Disable with ``--no-calibrate`` (or ``REPRO_BENCH_REGRESSION_CALIBRATE=0``)
when baseline and fresh run share hardware.

Cells are matched on ``(m, c, hash, kernel, fraction-of-full-stream)`` so
the gate works even when CI runs a reduced stream
(``REPRO_BENCH_INGEST_EDGES``): the fraction each cell used of its run's
full stream is scale-invariant.  Cells written before the kernel dimension
existed default to ``kernel="python"``; each kernel's cells carry their
own floors, so a native-kernel regression cannot hide behind a python-path
improvement (or vice versa).  The calibration factor is computed from
python-kernel cells only — their per-edge path is the un-optimised
reference loop, while a native cell's per-edge path goes through the
compiled kernel and would fold kernel regressions into the hardware
factor.

Environment overrides (also available as flags):

* ``REPRO_BENCH_REGRESSION_TOLERANCE`` — allowed fractional regression
  per cell (default ``0.20``);
* ``REPRO_BENCH_REGRESSION_CALIBRATE`` — ``0`` disables calibration;
* ``REPRO_BENCH_REGRESSION_METRIC`` — ``batch_eps`` (default) gates
  calibrated batch throughput, ``speedup`` gates the machine-independent
  batch/per-edge ratio instead (ingest payloads only);
* ``REPRO_BENCH_REGRESSION_KIND`` — ``auto`` (default), ``ingest`` or
  ``service``.

Exit codes: 0 pass, 1 regression detected, 2 malformed/unmatched input.
Standalone by design — no imports from the package, runnable without
``PYTHONPATH``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

DEFAULT_TOLERANCE = 0.20
#: Calibration factors outside this band mean the per-edge reference itself
#: moved too much to trust a cross-machine comparison.
CALIBRATION_BAND = (0.2, 5.0)

CellKey = Tuple[int, int, str, str, float]


def _read_payload(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: cannot read benchmark payload {path}: {error}")
    if not isinstance(payload, dict):
        raise SystemExit(f"error: benchmark payload {path} is not a JSON object")
    return payload


def _detect_kind(payload: dict, path: Path) -> str:
    """Classify a payload as ``ingest`` (cell grid) or ``service`` (report)."""
    if "cells" in payload:
        return "ingest"
    if "aggregate_eps" in payload:
        return "service"
    raise SystemExit(
        f"error: cannot detect benchmark kind of {path}: expected an "
        "ingest payload (with 'cells') or a service payload (with "
        "'aggregate_eps')"
    )


def _load_cells(path: Path) -> Dict[CellKey, dict]:
    """Index a benchmark payload's cells by their scale-invariant key."""
    try:
        payload = json.loads(path.read_text())
        cells = payload["cells"]
        full = max(int(cell["num_records"]) for cell in cells)
    except (OSError, ValueError, KeyError) as error:
        raise SystemExit(f"error: cannot read benchmark payload {path}: {error}")
    indexed: Dict[CellKey, dict] = {}
    for cell in cells:
        key = (
            int(cell["m"]),
            int(cell["c"]),
            str(cell["hash"]),
            str(cell.get("kernel", "python")),
            round(int(cell["num_records"]) / full, 3),
        )
        indexed[key] = cell
    return indexed


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "no", "off")


def check_regression(
    baseline: Dict[CellKey, dict],
    fresh: Dict[CellKey, dict],
    tolerance: float,
    calibrate: bool = True,
    metric: str = "batch_eps",
    out=sys.stdout,
) -> int:
    """Compare fresh cells against the baseline; returns a process exit code."""
    if metric not in ("batch_eps", "speedup"):
        print(f"error: unknown metric {metric!r}", file=out)
        return 2
    matched = sorted(set(baseline) & set(fresh))
    if not matched:
        print(
            "error: no cells match between baseline and fresh run "
            f"(baseline keys: {sorted(baseline)}, fresh keys: {sorted(fresh)})",
            file=out,
        )
        return 2

    factor = 1.0
    if calibrate and metric == "batch_eps":
        # Python-kernel cells only: their per-edge path is the un-optimised
        # reference loop.  A native cell's per-edge path runs the compiled
        # kernel, so including it would launder kernel regressions into the
        # "hardware" factor.
        calibration_keys = [key for key in matched if key[3] == "python"]
        if not calibration_keys:
            calibration_keys = matched
        ratios = [
            fresh[key]["per_edge_eps"] / baseline[key]["per_edge_eps"]
            for key in calibration_keys
            if baseline[key].get("per_edge_eps")
        ]
        if ratios:
            factor = median(ratios)
        low, high = CALIBRATION_BAND
        if not low <= factor <= high:
            print(
                f"error: per-edge calibration factor {factor:.3f} is outside "
                f"[{low}, {high}] — the un-optimised reference path moved too "
                "much for a trustworthy cross-machine comparison; refresh the "
                "committed baseline or investigate the per-edge path",
                file=out,
            )
            return 2

    print(
        f"ingest-throughput regression gate: metric={metric}, "
        f"tolerance={tolerance:.0%}, calibration={factor:.3f} "
        f"({len(matched)} matched cells)",
        file=out,
    )
    failures: List[str] = []
    for key in matched:
        m, c, hash_kind, kernel, fraction = key
        base_cell = baseline[key]
        fresh_cell = fresh[key]
        if metric == "speedup":
            expected = float(base_cell["speedup"])
            observed = float(fresh_cell["speedup"])
        else:
            expected = float(base_cell["batch_eps"]) * factor
            observed = float(fresh_cell["batch_eps"])
        floor = expected * (1.0 - tolerance)
        status = "ok" if observed >= floor else "REGRESSED"
        print(
            f"  m={m} c={c} hash={hash_kind} kernel={kernel} frac={fraction}: "
            f"{metric} {observed:,.2f} vs expected {expected:,.2f} "
            f"(floor {floor:,.2f}) {status}",
            file=out,
        )
        if observed < floor:
            failures.append(
                f"m={m} c={c} hash={hash_kind} kernel={kernel} frac={fraction}: "
                f"{observed:,.2f} < {floor:,.2f} "
                f"({1.0 - observed / expected:.1%} below baseline)"
            )
    if failures:
        print(
            f"FAIL: {len(failures)} cell(s) regressed more than "
            f"{tolerance:.0%}:",
            file=out,
        )
        for line in failures:
            print(f"  {line}", file=out)
        return 1
    print("PASS: no cell regressed beyond tolerance", file=out)
    return 0


def check_service_regression(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    calibrate: bool = True,
    out=sys.stdout,
) -> int:
    """Gate the service loadgen's aggregate delivered throughput.

    The committed baseline and a CI runner rarely share hardware, so the
    baseline's ``aggregate_eps`` is rescaled by the ratio of fresh vs
    baseline ``calibration_eps`` — raw single-threaded estimator ingest,
    which moves with the machine but not with the service stack.  A
    regression in the estimator itself shows up in the factor, which is
    bounded like the ingest gate's.
    """
    try:
        base_eps = float(baseline["aggregate_eps"])
        fresh_eps = float(fresh["aggregate_eps"])
    except (KeyError, TypeError, ValueError) as error:
        print(f"error: service payload missing aggregate_eps: {error}", file=out)
        return 2

    factor = 1.0
    if calibrate:
        try:
            base_cal = float(baseline["calibration_eps"])
            fresh_cal = float(fresh["calibration_eps"])
        except (KeyError, TypeError, ValueError):
            base_cal = fresh_cal = 0.0
        if base_cal > 0.0 and fresh_cal > 0.0:
            factor = fresh_cal / base_cal
        low, high = CALIBRATION_BAND
        if not low <= factor <= high:
            print(
                f"error: service calibration factor {factor:.3f} is outside "
                f"[{low}, {high}] — raw estimator ingest moved too much for "
                "a trustworthy cross-machine comparison; refresh the "
                "committed baseline or investigate the estimator hot path",
                file=out,
            )
            return 2

    expected = base_eps * factor
    floor = expected * (1.0 - tolerance)
    status = "ok" if fresh_eps >= floor else "REGRESSED"
    print(
        f"service-throughput regression gate: tolerance={tolerance:.0%}, "
        f"calibration={factor:.3f}",
        file=out,
    )
    print(
        f"  aggregate_eps {fresh_eps:,.0f} vs expected {expected:,.0f} "
        f"(floor {floor:,.0f}) {status}",
        file=out,
    )
    shed = fresh.get("shed_frames")
    if shed:
        print(f"  note: fresh run shed {shed} frame(s)", file=out)
    query = fresh.get("query") or {}
    if query.get("p95_ms") is not None:
        print(f"  query p95 {query['p95_ms']:.2f} ms (informational)", file=out)
    if fresh_eps < floor:
        print(
            f"FAIL: aggregate throughput {fresh_eps:,.0f} eps is "
            f"{1.0 - fresh_eps / expected:.1%} below the calibrated "
            f"baseline (tolerance {tolerance:.0%})",
            file=out,
        )
        return 1
    print("PASS: aggregate throughput within tolerance", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="committed BENCH_ingest.json to gate against",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="BENCH_ingest.json written by the fresh benchmark run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(
            os.environ.get("REPRO_BENCH_REGRESSION_TOLERANCE", DEFAULT_TOLERANCE)
        ),
        help="allowed fractional regression per cell (default 0.20)",
    )
    parser.add_argument(
        "--metric",
        choices=("batch_eps", "speedup"),
        default=os.environ.get("REPRO_BENCH_REGRESSION_METRIC", "batch_eps"),
        help="what to gate: calibrated batch throughput (default) or the "
        "machine-independent batch/per-edge speedup (ingest payloads only)",
    )
    parser.add_argument(
        "--kind",
        choices=("auto", "ingest", "service"),
        default=os.environ.get("REPRO_BENCH_REGRESSION_KIND", "auto"),
        help="payload kind; 'auto' (default) detects it from the files",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="compare absolute batch_eps without per-edge calibration "
        "(same-hardware runs)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    calibrate = not args.no_calibrate and _env_flag(
        "REPRO_BENCH_REGRESSION_CALIBRATE", True
    )
    baseline_payload = _read_payload(args.baseline)
    fresh_payload = _read_payload(args.fresh)
    kind = args.kind
    if kind == "auto":
        kind = _detect_kind(baseline_payload, args.baseline)
        fresh_kind = _detect_kind(fresh_payload, args.fresh)
        if fresh_kind != kind:
            print(
                f"error: baseline is a {kind} payload but fresh is "
                f"{fresh_kind} — compare like with like"
            )
            return 2
    if kind == "service":
        return check_service_regression(
            baseline_payload,
            fresh_payload,
            tolerance=args.tolerance,
            calibrate=calibrate,
        )
    return check_regression(
        _load_cells(args.baseline),
        _load_cells(args.fresh),
        tolerance=args.tolerance,
        calibrate=calibrate,
        metric=args.metric,
    )


if __name__ == "__main__":
    sys.exit(main())
