#!/usr/bin/env python
"""CI throughput-regression gate for the ingest benchmark.

Diffs a fresh ``BENCH_ingest.json`` (written by
``benchmarks/test_bench_ingest_throughput.py``) against the baseline
committed in the repository and fails if any cell's **batch throughput**
regressed by more than a configurable tolerance (default 20%).

Cross-machine calibration
-------------------------
CI runners and the machine that produced the committed baseline rarely
share clock speed, so absolute edges/second are not directly comparable.
The gate therefore rescales the baseline by a *calibration factor*: the
median ratio of fresh vs baseline **per-edge** throughput across matched
cells.  The per-edge path is the un-optimised reference loop — a slower
machine slows both paths by the same factor, so calibrating on it isolates
regressions in the batch pipeline (the thing this repo optimises) from
hardware drift.  A regression in code shared by both paths shows up in the
calibration factor itself, which is printed and bounded (a factor outside
[1/5, 5] aborts with a diagnostic rather than silently gating nonsense).
Disable with ``--no-calibrate`` (or ``REPRO_BENCH_REGRESSION_CALIBRATE=0``)
when baseline and fresh run share hardware.

Cells are matched on ``(m, c, hash, fraction-of-full-stream)`` so the gate
works even when CI runs a reduced stream (``REPRO_BENCH_INGEST_EDGES``):
the fraction each cell used of its run's full stream is scale-invariant.

Environment overrides (also available as flags):

* ``REPRO_BENCH_REGRESSION_TOLERANCE`` — allowed fractional regression
  per cell (default ``0.20``);
* ``REPRO_BENCH_REGRESSION_CALIBRATE`` — ``0`` disables calibration;
* ``REPRO_BENCH_REGRESSION_METRIC`` — ``batch_eps`` (default) gates
  calibrated batch throughput, ``speedup`` gates the machine-independent
  batch/per-edge ratio instead.

Exit codes: 0 pass, 1 regression detected, 2 malformed/unmatched input.
Standalone by design — no imports from the package, runnable without
``PYTHONPATH``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

DEFAULT_TOLERANCE = 0.20
#: Calibration factors outside this band mean the per-edge reference itself
#: moved too much to trust a cross-machine comparison.
CALIBRATION_BAND = (0.2, 5.0)

CellKey = Tuple[int, int, str, float]


def _load_cells(path: Path) -> Dict[CellKey, dict]:
    """Index a benchmark payload's cells by their scale-invariant key."""
    try:
        payload = json.loads(path.read_text())
        cells = payload["cells"]
        full = max(int(cell["num_records"]) for cell in cells)
    except (OSError, ValueError, KeyError) as error:
        raise SystemExit(f"error: cannot read benchmark payload {path}: {error}")
    indexed: Dict[CellKey, dict] = {}
    for cell in cells:
        key = (
            int(cell["m"]),
            int(cell["c"]),
            str(cell["hash"]),
            round(int(cell["num_records"]) / full, 3),
        )
        indexed[key] = cell
    return indexed


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "no", "off")


def check_regression(
    baseline: Dict[CellKey, dict],
    fresh: Dict[CellKey, dict],
    tolerance: float,
    calibrate: bool = True,
    metric: str = "batch_eps",
    out=sys.stdout,
) -> int:
    """Compare fresh cells against the baseline; returns a process exit code."""
    if metric not in ("batch_eps", "speedup"):
        print(f"error: unknown metric {metric!r}", file=out)
        return 2
    matched = sorted(set(baseline) & set(fresh))
    if not matched:
        print(
            "error: no cells match between baseline and fresh run "
            f"(baseline keys: {sorted(baseline)}, fresh keys: {sorted(fresh)})",
            file=out,
        )
        return 2

    factor = 1.0
    if calibrate and metric == "batch_eps":
        ratios = [
            fresh[key]["per_edge_eps"] / baseline[key]["per_edge_eps"]
            for key in matched
            if baseline[key].get("per_edge_eps")
        ]
        if ratios:
            factor = median(ratios)
        low, high = CALIBRATION_BAND
        if not low <= factor <= high:
            print(
                f"error: per-edge calibration factor {factor:.3f} is outside "
                f"[{low}, {high}] — the un-optimised reference path moved too "
                "much for a trustworthy cross-machine comparison; refresh the "
                "committed baseline or investigate the per-edge path",
                file=out,
            )
            return 2

    print(
        f"ingest-throughput regression gate: metric={metric}, "
        f"tolerance={tolerance:.0%}, calibration={factor:.3f} "
        f"({len(matched)} matched cells)",
        file=out,
    )
    failures: List[str] = []
    for key in matched:
        m, c, hash_kind, fraction = key
        base_cell = baseline[key]
        fresh_cell = fresh[key]
        if metric == "speedup":
            expected = float(base_cell["speedup"])
            observed = float(fresh_cell["speedup"])
        else:
            expected = float(base_cell["batch_eps"]) * factor
            observed = float(fresh_cell["batch_eps"])
        floor = expected * (1.0 - tolerance)
        status = "ok" if observed >= floor else "REGRESSED"
        print(
            f"  m={m} c={c} hash={hash_kind} frac={fraction}: "
            f"{metric} {observed:,.2f} vs expected {expected:,.2f} "
            f"(floor {floor:,.2f}) {status}",
            file=out,
        )
        if observed < floor:
            failures.append(
                f"m={m} c={c} hash={hash_kind} frac={fraction}: "
                f"{observed:,.2f} < {floor:,.2f} "
                f"({1.0 - observed / expected:.1%} below baseline)"
            )
    if failures:
        print(
            f"FAIL: {len(failures)} cell(s) regressed more than "
            f"{tolerance:.0%}:",
            file=out,
        )
        for line in failures:
            print(f"  {line}", file=out)
        return 1
    print("PASS: no cell regressed beyond tolerance", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="committed BENCH_ingest.json to gate against",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="BENCH_ingest.json written by the fresh benchmark run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(
            os.environ.get("REPRO_BENCH_REGRESSION_TOLERANCE", DEFAULT_TOLERANCE)
        ),
        help="allowed fractional regression per cell (default 0.20)",
    )
    parser.add_argument(
        "--metric",
        choices=("batch_eps", "speedup"),
        default=os.environ.get("REPRO_BENCH_REGRESSION_METRIC", "batch_eps"),
        help="what to gate: calibrated batch throughput (default) or the "
        "machine-independent batch/per-edge speedup",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="compare absolute batch_eps without per-edge calibration "
        "(same-hardware runs)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    calibrate = not args.no_calibrate and _env_flag(
        "REPRO_BENCH_REGRESSION_CALIBRATE", True
    )
    return check_regression(
        _load_cells(args.baseline),
        _load_cells(args.fresh),
        tolerance=args.tolerance,
        calibrate=calibrate,
        metric=args.metric,
    )


if __name__ == "__main__":
    sys.exit(main())
