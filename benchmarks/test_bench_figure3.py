"""Benchmark E3 — Figure 3: global-count NRMSE vs c at p = 0.01.

Shape to reproduce: REPT's NRMSE is below parallel MASCOT / TRIÈST / GPS for
every processor count, and the gap widens as c grows (the error reduction
achieved by REPT increases with c).
"""

from _config import (
    BENCH_C_VALUES_P001,
    BENCH_DATASETS,
    BENCH_MAX_EDGES,
    BENCH_TRIALS,
    record_result,
)

from repro.experiments.figures import figure3


def test_bench_figure3(benchmark):
    result = benchmark.pedantic(
        lambda: figure3(
            datasets=BENCH_DATASETS,
            c_values=BENCH_C_VALUES_P001,
            num_trials=BENCH_TRIALS,
            max_edges=BENCH_MAX_EDGES,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    for dataset in BENCH_DATASETS:
        series = result.series[dataset]
        # Every method produced one NRMSE value per c, all finite and positive.
        for method, values in series.items():
            assert len(values) == len(BENCH_C_VALUES_P001)
            assert all(value >= 0 for value in values), method
    # Headline shape: on the covariance-heavy dataset REPT does not lose to
    # the direct parallelisation of MASCOT across the sweep (summed NRMSE,
    # with slack for the small trial count).
    heavy = result.series["flickr-sim"]
    assert sum(heavy["REPT"]) <= 1.25 * sum(heavy["MASCOT"])
