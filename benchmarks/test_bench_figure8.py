"""Benchmark E8 — Figure 8: REPT vs single-threaded baselines, equal memory.

The single-threaded baselines (MASCOT-S / TRIÈST-S / GPS-S) receive the
combined memory of REPT's c processors (sampling probability c·p, budgets
c·p·|E|).  Shape to reproduce: as c grows the single-threaded methods get
slower (they process ever more sampled edges in one thread) while their
errors and REPT's stay in the same ballpark.
"""

from _config import record_result

from repro.experiments.figures import figure8

FIGURE8_C_VALUES = (2, 8, 16)
FIGURE8_MAX_EDGES = 5000


def test_bench_figure8(benchmark):
    result = benchmark.pedantic(
        lambda: figure8(
            dataset="flickr-sim",
            c_values=FIGURE8_C_VALUES,
            inv_p=10,
            num_trials=2,
            max_edges=FIGURE8_MAX_EDGES,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    runtime = result.series["runtime"]
    errors = result.series["nrmse"]
    assert set(runtime) == {"MASCOT-S", "TRIEST-S", "GPS-S", "REPT"}
    assert set(errors) == set(runtime)
    for values in list(runtime.values()) + list(errors.values()):
        assert len(values) == len(FIGURE8_C_VALUES)
    # Single-threaded MASCOT-S slows down as its combined budget grows with c.
    assert runtime["MASCOT-S"][-1] >= runtime["MASCOT-S"][0] * 0.8
    # Errors stay bounded (comparable accuracy claim, loose cap).
    for method, values in errors.items():
        assert all(value < 1.0 for value in values), method
