"""Benchmark A4 — predicted vs measured NRMSE (Section III-C made empirical).

Runs REPT and parallel MASCOT across the three analytical regimes of c and
overlays the measured NRMSE with the closed-form predictions computed from
the exact τ and η of the dataset.
"""

from _config import record_result

from repro.experiments.predictions import prediction_vs_measurement


def test_bench_predictions(benchmark):
    result = benchmark.pedantic(
        lambda: prediction_vs_measurement(
            dataset="flickr-sim",
            m=10,
            c_values=(2, 5, 10, 20, 30),
            num_trials=8,
            max_edges=6000,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    series = result.series["flickr-sim"]
    # Predictions say REPT never loses to parallel MASCOT, and the measured
    # curves should agree with their predictions within a factor of ~3 at
    # this trial count.
    for rept_pred, mascot_pred in zip(series["REPT predicted"], series["MASCOT predicted"]):
        assert rept_pred <= mascot_pred + 1e-12
    for measured, predicted in zip(series["REPT measured"], series["REPT predicted"]):
        assert 0.2 < measured / predicted < 5.0
