"""Benchmark E7 — Figure 7: runtime vs 1/p at c = 10.

The paper reports wall-clock seconds of a C++ implementation; the Python
reproduction checks the *shape*: runtime grows as p grows (1/p shrinks,
more edges sampled), REPT and parallel MASCOT cost roughly the same, and
TRIÈST / GPS are slower because of their reservoir / priority bookkeeping.
Absolute seconds are machine- and language-specific (see DESIGN.md).
"""

from _config import BENCH_INV_P_VALUES, BENCH_RUNTIME_MAX_EDGES, record_result

from repro.experiments.figures import figure7

RUNTIME_DATASETS = ["flickr-sim"]


def test_bench_figure7(benchmark):
    result = benchmark.pedantic(
        lambda: figure7(
            datasets=RUNTIME_DATASETS,
            inv_p_values=BENCH_INV_P_VALUES,
            c=10,
            max_edges=BENCH_RUNTIME_MAX_EDGES,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    series = result.series["flickr-sim"]
    assert set(series) == {"REPT", "MASCOT", "TRIEST", "GPS"}
    for method, values in series.items():
        assert len(values) == len(BENCH_INV_P_VALUES)
        assert all(value > 0 for value in values), method
    # Shape: every method is fastest at the largest 1/p (smallest p).
    for method, values in series.items():
        assert values[-1] <= values[0] * 1.5, method
    # REPT's cost is comparable to parallel MASCOT (same per-edge primitive),
    # within a generous factor to absorb timing noise.
    rept_total = sum(series["REPT"])
    mascot_total = sum(series["MASCOT"])
    assert rept_total <= 2.5 * mascot_total
