"""Benchmark A3 — hash-family ablation (splitmix vs tabulation).

REPT's analysis only needs the partition hash to be uniform; accuracy must
not depend on which concrete family implements it.
"""

from _config import record_result

from repro.experiments.ablations import ablation_hash_family


def test_bench_ablation_hash(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_hash_family(
            dataset="web-google-sim",
            m=10,
            c=10,
            num_trials=30,
            max_edges=4000,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    nrmse = {row[0]: row[1] for row in result.rows}
    assert set(nrmse) == {"splitmix", "tabulation"}
    assert all(value < 0.5 for value in nrmse.values())
    ratio = nrmse["splitmix"] / nrmse["tabulation"]
    assert 0.33 < ratio < 3.0
