"""Service-throughput benchmark: multi-tenant ingest under concurrent queries.

Hosts the estimation service on a loopback TCP socket and drives it with
the load generator — N tenants streaming packet-flow frames at a target
rate while a probe client interleaves global/local queries — then writes
``benchmarks/BENCH_service.json`` so the repository carries the service's
throughput trajectory across PRs (the CI ``service-smoke`` job gates a
fresh run against the committed file via
``benchmarks/check_bench_regression.py``).

The payload also records ``calibration_eps`` — raw single-threaded
``GroupStateSet`` ingest on the same engine shape — so the regression
gate can rescale the committed baseline to the runner's hardware, and
``service_to_raw_ratio``, the machine-independent fraction of raw
estimator throughput the full service stack (framing, TCP, queueing,
concurrent queries) retains.

Scale knobs: ``REPRO_BENCH_SERVICE_SECONDS`` (default 3.0),
``REPRO_BENCH_SERVICE_TENANTS`` (3), ``REPRO_BENCH_SERVICE_RATE``
(per-tenant target eps, 50000), ``REPRO_BENCH_SERVICE_MIN_EPS``
(aggregate delivered floor, default 50000 — CI lowers it for shared
runners).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.service.artefacts import service_loadgen

BENCH_SECONDS = float(os.environ.get("REPRO_BENCH_SERVICE_SECONDS", "3.0"))
BENCH_TENANTS = int(os.environ.get("REPRO_BENCH_SERVICE_TENANTS", "3"))
BENCH_RATE_EPS = float(os.environ.get("REPRO_BENCH_SERVICE_RATE", "50000"))
MIN_AGGREGATE_EPS = float(os.environ.get("REPRO_BENCH_SERVICE_MIN_EPS", "50000"))
FRAME_RECORDS = 2000
RESULTS_PATH = Path(__file__).with_name("BENCH_service.json")


#: Extra loadgen attempts before judging the throughput floor: ambient
#: machine noise (the preceding benchmarks saturate every core for
#: minutes) can transiently dent an absolute eps floor.  A genuine
#: regression fails every attempt; a transient dip recovers.
MAX_ATTEMPTS = 3


def test_bench_service_loadgen_writes_baseline():
    report = None
    for attempt in range(MAX_ATTEMPTS):
        result = service_loadgen(
            tenants=BENCH_TENANTS,
            duration_seconds=BENCH_SECONDS,
            rate_eps=BENCH_RATE_EPS,
            frame_records=FRAME_RECORDS,
            backpressure="block",
            seed=7,
            bench_out=str(RESULTS_PATH),
        )
        print(f"\n{result.text}")
        if report is None or result.metadata["aggregate_eps"] > report["aggregate_eps"]:
            report = result.metadata
        if report["aggregate_eps"] >= MIN_AGGREGATE_EPS:
            break
    # The committed payload carries the best attempt, not the last one.
    RESULTS_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # The loadgen drained every frame it submitted (block backpressure
    # never sheds; the per-tenant drain loop waits for delivery).
    assert report["shed_frames"] == 0
    assert report["delivered_records"] == report["submitted_records"]
    assert report["delivered_records"] > 0

    # Queries genuinely ran concurrently with ingestion.
    assert report["query"]["queries"] > 0
    assert report["query"]["p95_ms"] > 0.0

    # The headline floor: aggregate delivered ingest across tenants.
    assert report["aggregate_eps"] >= MIN_AGGREGATE_EPS, (
        f"service delivered {report['aggregate_eps']:,.0f} eps aggregate, "
        f"below the {MIN_AGGREGATE_EPS:,.0f} floor "
        f"(raw calibration {report['calibration_eps']:,.0f} eps)"
    )

    # The committed payload is well-formed for the regression gate.
    payload = json.loads(RESULTS_PATH.read_text())
    assert payload["benchmark"] == "service-loadgen"
    for key in ("aggregate_eps", "calibration_eps", "service_to_raw_ratio"):
        assert key in payload
