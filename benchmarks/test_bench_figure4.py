"""Benchmark E4 — Figure 4: global-count NRMSE vs c at p = 0.1.

Same sweep as Figure 3 with a ten-times larger sampling probability and the
correspondingly smaller processor counts (2–32).
"""

from _config import (
    BENCH_C_VALUES_P01,
    BENCH_DATASETS,
    BENCH_MAX_EDGES,
    BENCH_TRIALS,
    record_result,
)

from repro.experiments.figures import figure4


def test_bench_figure4(benchmark):
    result = benchmark.pedantic(
        lambda: figure4(
            datasets=BENCH_DATASETS,
            c_values=BENCH_C_VALUES_P01,
            num_trials=BENCH_TRIALS,
            max_edges=BENCH_MAX_EDGES,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    for dataset in BENCH_DATASETS:
        series = result.series[dataset]
        for values in series.values():
            assert len(values) == len(BENCH_C_VALUES_P01)
    # Ordering check on the covariance-heavy dataset, summed across the
    # sweep to smooth the small trial count.
    heavy = result.series["flickr-sim"]
    assert sum(heavy["REPT"]) <= 1.25 * sum(heavy["MASCOT"])
