"""Benchmark E5 — Figure 5: local-count NRMSE vs c at p = 0.01.

The paper omits GPS from the local-count comparison; so do we.  Shape to
reproduce: REPT's aggregated local NRMSE stays below parallel MASCOT and
TRIÈST across the processor-count axis.
"""

from _config import BENCH_DATASETS, BENCH_TRIALS, record_result

from repro.experiments.figures import figure5

# Local tracking is the expensive part; keep the streams a little smaller.
LOCAL_MAX_EDGES = 3000
LOCAL_C_VALUES = (20, 160, 320)


def test_bench_figure5(benchmark):
    result = benchmark.pedantic(
        lambda: figure5(
            datasets=BENCH_DATASETS,
            c_values=LOCAL_C_VALUES,
            num_trials=BENCH_TRIALS,
            max_edges=LOCAL_MAX_EDGES,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    for dataset in BENCH_DATASETS:
        series = result.series[dataset]
        assert set(series) == {"REPT", "MASCOT", "TRIEST"}
        for values in series.values():
            assert len(values) == len(LOCAL_C_VALUES)
            assert all(value >= 0 for value in values)
    heavy = result.series["flickr-sim"]
    assert sum(heavy["REPT"]) <= 1.25 * sum(heavy["MASCOT"])
