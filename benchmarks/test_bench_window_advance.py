"""Window-advance benchmark: merge-based advance vs per-window re-ingestion.

The sliding-window monitor does its counting work when records *arrive*;
advancing a window across a pane boundary then only detaches the pending
pane's counters as an O(pane) delta, folds it into the window's
accumulator (the exact η merge) and combines the summaries — no retained
pane is ever re-ingested.  The re-ingestion alternative pays O(window) at
every advance: build a fresh estimator and replay the window's records.

This benchmark drives both over the same timestamped packet-flow trace and
asserts

* **exactness** — every monitor window estimate is bit-identical to the
  from-scratch re-ingestion of the same records, and
* **advance latency** — the monitor's median per-advance cost beats the
  median per-window re-ingestion cost (the margin is ~8x at the default
  scale; ``REPRO_BENCH_WINDOW_ADVANCE_TOL`` relaxes the comparison for
  noisy machines).

The amortized totals (arrival-time ingestion vs summed re-ingestion) are
printed for context: with overlapping windows both designs update each
record once per covering window, so total work is comparable — the
monitor's structural wins are the O(pane) advance, O(window-state) memory
instead of retaining the whole trace, and online results.

Scale knobs: ``REPRO_BENCH_WINDOW_EDGES`` (default 30000).
"""

from __future__ import annotations

import os
import time
from statistics import median

from repro.core import ReptConfig, ReptEstimator
from repro.generators.traffic import packet_flow_records
from repro.streaming.monitor import WindowedTriangleMonitor

BENCH_EDGES = int(os.environ.get("REPRO_BENCH_WINDOW_EDGES", "30000"))
ADVANCE_TOL = float(os.environ.get("REPRO_BENCH_WINDOW_ADVANCE_TOL", "1.0"))

DURATION = 1800.0
NUM_HOSTS = 1000
WINDOW_SECONDS = 300.0
PANE_SECONDS = 60.0  # slide = pane: a window closes at every pane boundary
CONFIG = ReptConfig(m=16, c=32, seed=7, hash_kind="tabulation", track_local=False)


def test_bench_window_advance():
    records = packet_flow_records(
        BENCH_EDGES, duration_seconds=DURATION, num_hosts=NUM_HOSTS, seed=13
    )
    pane_buckets = {}
    for record in records:
        pane_buckets.setdefault(int(record.time // PANE_SECONDS), []).append(record)

    # Merge-based monitor: arrival work per pane, then the timed advance —
    # an explicit watermark tick across the pane boundary that closes the
    # due window by folding the pending pane delta (keep_pane_deltas=True
    # is the merge-based accumulator path).
    monitor = WindowedTriangleMonitor(
        WINDOW_SECONDS,
        slide_seconds=PANE_SECONDS,
        pane_seconds=PANE_SECONDS,
        config=CONFIG,
        origin=0.0,
        keep_pane_deltas=True,
        record_replay=True,
    )
    advance_seconds = []
    results = []
    ingest_total = 0.0
    for pane in sorted(pane_buckets):
        start = time.perf_counter()
        monitor.ingest(pane_buckets[pane])
        ingest_total += time.perf_counter() - start
        start = time.perf_counter()
        closed = monitor.advance_watermark((pane + 1) * PANE_SECONDS)
        elapsed = time.perf_counter() - start
        if closed:
            advance_seconds.append(elapsed)
            results.extend(closed)
    results.extend(monitor.flush())
    assert len(advance_seconds) >= 10, "stream too short to measure advances"

    # Re-ingestion alternative: at each advance, replay the window's
    # records (already assembled — the replay log is exactly the window's
    # member records in ingestion order) through a fresh estimator.
    reingest_seconds = []
    for result in results:
        start = time.perf_counter()
        estimator = ReptEstimator(CONFIG)
        estimator.process_stream(result.replay, batch_size=65536)
        estimate = estimator.estimate()
        reingest_seconds.append(time.perf_counter() - start)

        # Exactness first: merge-based advance is an execution strategy,
        # not an approximation.
        assert estimate.global_count == result.estimate.global_count
        assert estimate.local_counts == result.estimate.local_counts
        assert estimate.edges_stored == result.estimate.edges_stored
        assert estimate.edges_processed == result.records

    advance_ms = median(advance_seconds) * 1e3
    reingest_ms = median(reingest_seconds) * 1e3
    print(
        f"\n  {len(results)} windows (window={WINDOW_SECONDS:.0f}s, "
        f"pane={PANE_SECONDS:.0f}s, {len(records)} records): "
        f"merge-based advance median {advance_ms:.2f}ms vs "
        f"re-ingestion median {reingest_ms:.2f}ms "
        f"({reingest_ms / advance_ms:.1f}x)"
    )
    print(
        f"  amortized context: arrival-time ingestion {ingest_total:.2f}s total, "
        f"summed re-ingestion {sum(reingest_seconds):.2f}s total"
    )
    assert advance_ms * ADVANCE_TOL < reingest_ms, (
        f"merge-based advance ({advance_ms:.2f}ms median) did not beat "
        f"per-window re-ingestion ({reingest_ms:.2f}ms median)"
    )
