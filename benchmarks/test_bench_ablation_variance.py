"""Benchmark A1 — empirical REPT variance vs the paper's closed forms.

For a fixed m, sweep c across the three regimes (c < m, c = m, c a multiple
of m) and compare the empirical variance of τ̂ over repeated trials with the
formulas of Theorem 3 / Section III-B.
"""

from _config import record_result

from repro.experiments.ablations import ablation_variance


def test_bench_ablation_variance(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_variance(
            dataset="youtube-sim",
            m=10,
            c_values=(2, 5, 10, 20, 30),
            num_trials=40,
            max_edges=4000,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    empirical = result.series["youtube-sim"]["empirical"]
    predicted = result.series["youtube-sim"]["predicted"]
    # Predictions are positive and decrease as c grows.
    assert all(value > 0 for value in predicted)
    assert predicted[-1] < predicted[0]
    # Empirical variance tracks the prediction within a factor of ~3 at
    # 40 trials (the variance of a variance estimate is large).
    for emp, pred in zip(empirical, predicted):
        assert 0.25 < emp / pred < 4.0
