"""Scale knobs and helpers shared by the benchmark harness.

Every benchmark regenerates one paper artefact at a reduced-but-meaningful
scale; a single edit here trades fidelity against runtime.  The full-scale
sweeps are available through the ``rept-experiment`` CLI (see EXPERIMENTS.md).
"""

from __future__ import annotations

#: Datasets used by the per-figure benchmarks (a covariance-heavy Chung-Lu
#: analogue and a milder Barabasi-Albert analogue).
BENCH_DATASETS = ["flickr-sim", "youtube-sim"]

#: Stream truncation applied by the accuracy benchmarks.
BENCH_MAX_EDGES = 4000

#: Independent trials per (dataset, method, c) cell.
BENCH_TRIALS = 3

#: Reduced processor grids that still span the paper's ranges.
BENCH_C_VALUES_P001 = (20, 160, 320)
BENCH_C_VALUES_P01 = (2, 16, 32)

#: Runtime benchmark (Figure 7/8) parameters.
BENCH_INV_P_VALUES = (2, 8, 32)
BENCH_RUNTIME_MAX_EDGES = 6000


def record_result(benchmark, result) -> None:
    """Attach an ExperimentResult's headline data to the benchmark record."""
    benchmark.extra_info["experiment_id"] = result.experiment_id
    benchmark.extra_info["description"] = result.description
    benchmark.extra_info["metadata"] = {
        key: value for key, value in result.metadata.items() if not isinstance(value, dict)
    }
    print()
    print(result.text)
