"""Benchmark E6 — Figure 6: local-count NRMSE vs c at p = 0.1."""

from _config import BENCH_DATASETS, BENCH_TRIALS, record_result

from repro.experiments.figures import figure6

LOCAL_MAX_EDGES = 3000
LOCAL_C_VALUES = (2, 16, 32)


def test_bench_figure6(benchmark):
    result = benchmark.pedantic(
        lambda: figure6(
            datasets=BENCH_DATASETS,
            c_values=LOCAL_C_VALUES,
            num_trials=BENCH_TRIALS,
            max_edges=LOCAL_MAX_EDGES,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    for dataset in BENCH_DATASETS:
        series = result.series[dataset]
        assert set(series) == {"REPT", "MASCOT", "TRIEST"}
        for values in series.values():
            assert len(values) == len(LOCAL_C_VALUES)
    # Ordering check on the covariance-heavy dataset, summed across the sweep.
    heavy = result.series["flickr-sim"]
    assert sum(heavy["REPT"]) <= 1.25 * sum(heavy["MASCOT"])
