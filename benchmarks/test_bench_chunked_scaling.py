"""Scaling benchmark: per-group ``process`` backend vs the stream-sharded engine.

The chunked backends exist to fix two scaling pathologies of the per-group
``process`` backend: every worker receives the *entire* stream (shipping and
peak memory grow with stream length), and parallelism is capped at the
number of processor groups (``c ≤ m`` gets none).  This benchmark runs the
same configuration through ``serial``, ``process`` and ``chunked-process``
on a synthetic Barabási–Albert stream and records:

* wall-clock per backend (one round each — these are second-scale runs);
* the maximum number of stream edges any single task receives (the whole
  stream for ``process``, one chunk for ``chunked-process``);
* exact equality of the estimates, which is asserted, not just recorded.

Scale knob: the stream defaults to ~40k edges so the benchmark stays in the
suite's time budget on a laptop; set ``REPRO_BENCH_CHUNKED_NODES`` (e.g. to
``125000``, giving a ≥500k-edge stream) to reproduce the full-scale scaling
claim on real hardware.  The wall-clock comparison between the process-pool
backends is only asserted on machines with at least 4 cores; on fewer cores
process pools cannot beat anything and the timings are recorded as-is.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ReptConfig, run_rept
from repro.core.parallel import auto_chunk_size
from repro.generators.random_graphs import barabasi_albert_stream

BENCH_NODES = int(os.environ.get("REPRO_BENCH_CHUNKED_NODES", "10000"))
BENCH_CHUNK_SIZE = 8192
_CONFIG = dict(m=8, c=12, seed=3, track_local=False)


@pytest.fixture(scope="module")
def chunked_stream():
    return barabasi_albert_stream(BENCH_NODES, 4, triad_closure=0.3, seed=17).edges()


@pytest.fixture(scope="module")
def serial_reference(chunked_stream):
    return run_rept(chunked_stream, ReptConfig(**_CONFIG), backend="serial")


class TestChunkedScaling:
    def test_bench_serial_reference(self, benchmark, chunked_stream, serial_reference):
        estimate = benchmark.pedantic(
            lambda: run_rept(chunked_stream, ReptConfig(**_CONFIG), backend="serial"),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["num_edges"] = len(chunked_stream)
        assert estimate.global_count == serial_reference.global_count

    def test_bench_process_ships_whole_stream(
        self, benchmark, chunked_stream, serial_reference
    ):
        estimate = benchmark.pedantic(
            lambda: run_rept(chunked_stream, ReptConfig(**_CONFIG), backend="process"),
            rounds=1,
            iterations=1,
        )
        # Every per-group task receives the full stream: that is the
        # scaling pathology the chunked engine removes.
        benchmark.extra_info["max_task_payload_edges"] = len(chunked_stream)
        assert estimate.global_count == serial_reference.global_count
        assert estimate.local_counts == serial_reference.local_counts
        assert estimate.edges_stored == serial_reference.edges_stored

    def test_bench_chunked_process_bounded_payload(
        self, benchmark, chunked_stream, serial_reference
    ):
        estimate = benchmark.pedantic(
            lambda: run_rept(
                chunked_stream,
                ReptConfig(**_CONFIG),
                backend="chunked-process",
                chunk_size=BENCH_CHUNK_SIZE,
            ),
            rounds=1,
            iterations=1,
        )
        assert estimate.global_count == serial_reference.global_count
        assert estimate.local_counts == serial_reference.local_counts
        assert estimate.edges_stored == serial_reference.edges_stored
        # Peak per-task stream payload is one chunk, not the whole stream.
        max_payload = estimate.metadata["chunk_edges_max"]
        benchmark.extra_info["max_task_payload_edges"] = max_payload
        benchmark.extra_info["num_chunks"] = estimate.metadata["num_chunks"]
        assert max_payload <= BENCH_CHUNK_SIZE
        assert max_payload < len(chunked_stream)

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="process pools cannot show wall-clock wins below 4 cores",
    )
    def test_chunked_beats_whole_stream_process_backend(self, chunked_stream):
        import time

        config = ReptConfig(**_CONFIG)
        start = time.perf_counter()
        process = run_rept(chunked_stream, config, backend="process")
        process_seconds = time.perf_counter() - start
        start = time.perf_counter()
        chunked = run_rept(chunked_stream, config, backend="chunked-process")
        chunked_seconds = time.perf_counter() - start
        assert chunked.global_count == process.global_count
        # Generous bound: the sharded schedule must at least be competitive
        # (it has strictly more parallelism and ships strictly less data).
        assert chunked_seconds < 2.0 * process_seconds

    def test_auto_chunk_size_scales_with_workers(self):
        # More workers -> more, smaller chunks (down to the floor).
        n = 1_000_000
        sizes = [auto_chunk_size(n, workers, num_groups=1) for workers in (1, 4, 16)]
        assert sizes[0] >= sizes[1] >= sizes[2]
        assert all(size >= 1 for size in sizes)
        # Tiny streams never split below one chunk.
        assert auto_chunk_size(100, 16, num_groups=4) == 100
