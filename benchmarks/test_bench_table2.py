"""Benchmark E2 — Table II: dataset statistics.

Regenerates the node / edge / triangle counts of every registered synthetic
analogue next to the original sizes the paper reports, making the scale
substitution explicit.
"""

from _config import record_result

from repro.experiments.tables import table2
from repro.generators.datasets import available_datasets


def test_bench_table2(benchmark):
    result = benchmark.pedantic(lambda: table2(), rounds=1, iterations=1)
    record_result(benchmark, result)

    assert len(result.rows) == len(available_datasets())
    for row in result.rows:
        name, nodes, edges, triangles = row[0], row[1], row[2], row[3]
        assert nodes > 0 and edges > 0
        assert triangles > 0, f"{name} should contain triangles"
    # Size ordering mirrors the paper: the Twitter analogue is the largest.
    edges_by_name = {row[0]: row[2] for row in result.rows}
    assert edges_by_name["twitter-sim"] == max(edges_by_name.values())
