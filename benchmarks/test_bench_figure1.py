"""Benchmark E1 — Figure 1: τ vs η and the MASCOT variance terms.

Regenerates, for every registered dataset, the exact τ and η values and the
two terms of MASCOT's variance at p ∈ {0.1, 0.05, 0.01}.  The paper's claim
to check: the covariance term ``2η(p⁻¹−1)`` exceeds the self term
``τ(p⁻²−1)`` at p = 0.1 on the covariance-heavy graphs, and the gap narrows
as p decreases.
"""

from _config import record_result

from repro.experiments.figures import figure1
from repro.generators.datasets import available_datasets


def test_bench_figure1(benchmark):
    result = benchmark.pedantic(
        lambda: figure1(datasets=available_datasets()),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    # Shape check: on the dense Chung-Lu analogues the covariance term
    # dominates at p = 0.1 (Figure 1(b)).
    for dataset in ("flickr-sim", "twitter-sim"):
        series = result.series[dataset]
        assert series["cov_term"][0] > series["tau_term"][0]
    # And every dataset has eta > 0 (pairs of triangles sharing an edge exist).
    for dataset in available_datasets():
        assert result.series[dataset]["eta"][0] > 0
