"""Benchmark A2 — value of the Graybill–Deal combination when c mod m != 0.

Compares the NRMSE of the combined estimate against using only the complete
groups (τ̂⁽¹⁾) or only the partial group (τ̂⁽²⁾).  Expected shape: the
combination is never worse than the worse ingredient and usually close to
(or better than) the better one.
"""

from _config import record_result

from repro.experiments.ablations import ablation_combination


def test_bench_ablation_combine(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_combination(
            dataset="youtube-sim",
            m=8,
            c_values=(10, 12, 20, 28),
            num_trials=25,
            max_edges=4000,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    for row in result.rows:
        _, combined, complete_only, partial_only = row[:4]
        assert combined <= max(complete_only, partial_only) + 1e-9
        assert combined >= 0
    # The partial group alone (few processors, full covariance term) should
    # generally be the weakest ingredient.
    worst_partial = max(row[3] for row in result.rows)
    best_combined = min(row[1] for row in result.rows)
    assert best_combined < worst_partial
