"""Pytest fixtures for the benchmark harness."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def _warm_dataset_cache():
    """Generate the benchmark datasets once so timings exclude generation."""
    from _config import BENCH_DATASETS

    from repro.generators.datasets import load_dataset

    for name in BENCH_DATASETS:
        load_dataset(name)
    yield
