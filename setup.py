"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode (``python setup.py
develop`` or ``pip install -e .``) on environments whose setuptools
tool-chain predates PEP 660 editable wheels (e.g. offline machines without
the ``wheel`` package).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
