"""Ingestion-throughput artefact: per-edge vs batched REPT ingestion.

Not a figure of the paper, but the experiment behind its throughput story:
REPT is designed for counting over massive edge streams, so the cost that
dominates deployment is raw ingestion.  This artefact measures edges/second
for the per-edge streaming path (:meth:`ReptEstimator.process_edge`) against
the batched pipeline (:meth:`ReptEstimator.process_edges`) on a
duplicate-heavy packet stream, asserts the two paths return bit-identical
estimates, and reports the speedup per hash family.  Exposed on the CLI as
``rept-experiment ingest`` (``--batch-size`` controls the chunking).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.config import ReptConfig
from repro.core.rept import ReptEstimator
from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult
from repro.generators.traffic import packet_flow_stream
from repro.utils.tables import format_table

#: Hash families measured by default.  Scalar tabulation hashing is the
#: expensive one (eight table lookups per edge in Python), which is exactly
#: where the vectorized batch pipeline pays off most.
DEFAULT_HASH_KINDS = ("splitmix", "tabulation")


def _run_rounds(make_estimator, edges, ingest, rounds: int):
    """Best-of-``rounds`` wall-clock for one ingestion strategy."""
    best_seconds = float("inf")
    estimate = None
    for _ in range(rounds):
        estimator = make_estimator()
        start = time.perf_counter()
        ingest(estimator, edges)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
        estimate = estimator.estimate()
    return best_seconds, estimate


def ingest_throughput(
    num_edges: int = 250_000,
    m: int = 16,
    c: int = 32,
    seed: int = 2024,
    hash_kinds: Sequence[str] = DEFAULT_HASH_KINDS,
    batch_size: int = 65_536,
    rounds: int = 2,
    track_local: bool = False,
    kernel: str = "auto",
) -> ExperimentResult:
    """Measure per-edge vs batched ingestion throughput.

    Returns a table of edges/second per (hash kind, path) and the batch
    speedup.  A mismatch between the two paths' estimates raises
    :class:`ExperimentError` — the batch pipeline is exact, not
    approximate, so divergence is a bug.  ``kernel`` selects the ingestion
    kernel (see :class:`ReptConfig`); the resolved label is recorded in
    the result metadata.
    """
    if num_edges < 1:
        raise ExperimentError("num_edges must be >= 1")
    stream = packet_flow_stream(num_edges, seed=seed)
    edges = stream.edges()

    headers = ["hash", "path", "seconds", "edges/s", "speedup", "identical"]
    rows: List[List] = []
    metadata = {
        "num_edges": len(edges),
        "num_distinct": stream.num_distinct_edges,
        "m": m,
        "c": c,
        "seed": seed,
        "batch_size": batch_size,
        "rounds": rounds,
        "kernel": kernel,
        "speedups": {},
    }
    resolved_kernel = None
    for hash_kind in hash_kinds:
        def make_estimator(_kind=hash_kind):
            return ReptEstimator(
                ReptConfig(
                    m=m,
                    c=c,
                    seed=seed,
                    hash_kind=_kind,
                    track_local=track_local,
                    kernel=kernel,
                )
            )

        per_edge_seconds, per_edge_estimate = _run_rounds(
            make_estimator, edges, lambda est, e: est.process_stream(e), rounds
        )
        batch_seconds, batch_estimate = _run_rounds(
            make_estimator,
            edges,
            lambda est, e: est.process_stream(e, batch_size=batch_size),
            rounds,
        )
        resolved_kernel = batch_estimate.metadata.get("kernel", "python")
        identical = (
            batch_estimate.global_count == per_edge_estimate.global_count
            and batch_estimate.local_counts == per_edge_estimate.local_counts
            and batch_estimate.edges_stored == per_edge_estimate.edges_stored
        )
        if not identical:
            raise ExperimentError(
                f"batch ingestion diverged from per-edge for hash={hash_kind!r}: "
                f"{batch_estimate.global_count!r} != {per_edge_estimate.global_count!r}"
            )
        speedup = per_edge_seconds / batch_seconds if batch_seconds else float("inf")
        metadata["speedups"][hash_kind] = speedup
        rows.append(
            [
                hash_kind,
                "per-edge",
                round(per_edge_seconds, 3),
                int(len(edges) / per_edge_seconds),
                "",
                "yes",
            ]
        )
        rows.append(
            [
                hash_kind,
                f"batch({batch_size})",
                round(batch_seconds, 3),
                int(len(edges) / batch_seconds),
                f"{speedup:.2f}x",
                "yes",
            ]
        )

    metadata["resolved_kernel"] = resolved_kernel
    text = format_table(
        headers,
        rows,
        title=(
            f"Ingestion throughput on {stream.name} ({len(edges)} records, "
            f"{stream.num_distinct_edges} distinct flows, m={m}, c={c}, "
            f"kernel={resolved_kernel})"
        ),
    )
    return ExperimentResult(
        experiment_id="ingest",
        description="Per-edge vs batched REPT ingestion throughput",
        rows=rows,
        headers=headers,
        text=text,
        metadata=metadata,
    )
