"""Command-line entry point: ``rept-experiment <artefact> [options]``.

Examples
--------
Run the Table II reproduction on every registered dataset::

    rept-experiment table2

Run Figure 3 on two datasets with 3 trials and truncated streams::

    rept-experiment figure3 --datasets flickr-sim youtube-sim --trials 3 --max-edges 4000

Run (or incrementally re-run) a full campaign from a spec file::

    rept-experiment campaign --spec campaigns/paper_full.toml --explain

The campaign artefact caches every task in a content-addressed store; an
immediate re-run is pure cache hits, ``--force`` recomputes everything,
``--dry-run`` shows what would run without running it, and
``--require-cached`` fails (exit code 3) if anything was *not* served from
cache — the CI hook that proves incremental reproduction works.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.registry import artefact_names, get_artefact
from repro.experiments.spec import ExperimentResult

#: Exit code of ``--require-cached`` when a task had to be computed.
EXIT_CACHE_MISS = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rept-experiment",
        description="Regenerate a table or figure of the REPT paper, or run a campaign",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(artefact_names() + ["campaign"]),
        help="which paper artefact (or ablation, or 'campaign') to regenerate",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="registered dataset names (default: all)",
    )
    parser.add_argument("--trials", type=int, default=None, help="independent trials per cell")
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--max-edges",
        type=int,
        default=None,
        help="truncate every stream to this many edges (smaller = faster)",
    )
    parser.add_argument(
        "--c-values",
        nargs="*",
        type=int,
        default=None,
        help="override the processor-count axis for the accuracy figures",
    )
    parser.add_argument(
        "--backends",
        nargs="*",
        default=None,
        help="execution backends for the 'backends' artefact "
        "(default: serial thread process chunked-serial chunked-process)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="edges per chunk for the chunked backends (default: auto-tuned)",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="include the 'chunked-elastic' shard-coordinator backend in "
        "the 'backends' artefact (combine with --workers and --chaos for "
        "membership-change chaos drills)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="records per ingestion batch for the 'ingest' artefact "
        "(default: 65536)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="window width in seconds for the 'monitor' artefact "
        "(default: 300)",
    )
    parser.add_argument(
        "--slide",
        type=float,
        default=None,
        help="window slide in seconds for the 'monitor' artefact "
        "(default: the window width — tumbling)",
    )
    parser.add_argument(
        "--panes",
        type=int,
        default=None,
        help="panes per window for the 'monitor' artefact "
        "(default: one pane per slide)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="trace duration in seconds for the 'monitor' artefact "
        "(default: 3600; smaller = faster)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="durable checkpoint directory for the 'monitor' artefact: "
        "every ingest batch is checkpointed and the run resumes from the "
        "newest valid checkpoint on failure (a temporary directory is used "
        "when --chaos is given without one)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "native", "cc", "numba"),
        default=None,
        help="ingestion-kernel selection for the 'ingest', 'backends' and "
        "'monitor' artefacts: 'auto' (default) uses a compiled kernel when "
        "available, 'python' forces the dict/set reference, 'native' "
        "requires a compiled kernel, 'cc'/'numba' pin a provider",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="arm a deterministic fault-injection plan (a plan JSON file, "
        "or a directory containing plan.json) for the run — injected "
        "worker crashes exercise the supervision and checkpoint/recovery "
        "paths while the artefact's results must stay bit-identical; see "
        "repro.testing.faults",
    )

    service = parser.add_argument_group("service options (serve / loadgen)")
    service.add_argument(
        "--host",
        default=None,
        help="bind address for 'serve' / target address for 'loadgen' "
        "(default: 127.0.0.1 / self-hosted loopback)",
    )
    service.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port for 'serve' (0 = ephemeral) or the 'loadgen' target "
        "(omitted: loadgen self-hosts a loopback server)",
    )
    service.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="number of concurrent tenants for 'loadgen' (default: 3)",
    )
    service.add_argument(
        "--rate",
        type=float,
        default=None,
        help="target per-tenant ingest rate in edges/s for 'loadgen' "
        "(default: 50000)",
    )
    service.add_argument(
        "--frame-records",
        type=int,
        default=None,
        help="records per ingest frame for 'loadgen' (default: 2000)",
    )
    service.add_argument(
        "--queue-frames",
        type=int,
        default=None,
        help="per-session ingest queue bound, in frames (default: 64)",
    )
    service.add_argument(
        "--backpressure",
        choices=("block", "shed"),
        default=None,
        help="queue-full policy: 'block' delays the ingest response, "
        "'shed' drops the frame and counts it (default: block)",
    )
    service.add_argument(
        "--bench-out",
        default=None,
        help="write the 'loadgen' report as a bench JSON file "
        "(the BENCH_service.json payload)",
    )

    campaign = parser.add_argument_group("campaign options")
    campaign.add_argument(
        "--spec",
        default=None,
        help="campaign spec file (.toml or .json); required for 'campaign'",
    )
    campaign.add_argument(
        "--store",
        default=None,
        help="content-addressed result store directory "
        "(default: campaign-out/<name>/store)",
    )
    campaign.add_argument(
        "--out",
        default=None,
        help="directory for rendered outputs + manifest "
        "(default: campaign-out/<name>/artefacts)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes: campaign task fan-out (default: the spec's "
        "setting) or the 'backends' artefact's pool size",
    )
    campaign.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached task results (on by default); --no-resume recomputes "
        "everything without consulting the cache",
    )
    campaign.add_argument(
        "--force",
        action="store_true",
        help="recompute every task, overwriting cached records",
    )
    campaign.add_argument(
        "--explain",
        action="store_true",
        help="print the per-task cache hit/miss table",
    )
    campaign.add_argument(
        "--dry-run",
        action="store_true",
        help="plan and fingerprint only; show what would run",
    )
    campaign.add_argument(
        "--require-cached",
        action="store_true",
        help=f"exit with code {EXIT_CACHE_MISS} if any task was not served "
        "from cache (CI regression hook)",
    )
    return parser


def _run_artefact(name: str, args: argparse.Namespace) -> ExperimentResult:
    kwargs: Dict[str, object] = {}
    if args.max_edges is not None:
        kwargs["max_edges"] = args.max_edges

    if name in ("figure3", "figure4", "figure5", "figure6"):
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
        if args.trials is not None:
            kwargs["num_trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.c_values:
            kwargs["c_values"] = args.c_values
    elif name == "figure1":
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
    elif name == "figure7":
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
    elif name == "figure8":
        if args.datasets:
            kwargs["dataset"] = args.datasets[0]
        if args.trials is not None:
            kwargs["num_trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.c_values:
            kwargs["c_values"] = args.c_values
    elif name == "table2":
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
    elif name == "backends":
        if args.datasets:
            kwargs["dataset"] = args.datasets[0]
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.backends:
            kwargs["backends"] = args.backends
        if args.chunk_size is not None:
            kwargs["chunk_size"] = args.chunk_size
        if args.elastic:
            kwargs["elastic"] = True
        if args.workers is not None:
            kwargs["max_workers"] = args.workers
        if args.kernel is not None:
            kwargs["kernel"] = args.kernel
    elif name == "ingest":
        kwargs.pop("max_edges", None)
        if args.max_edges is not None:
            kwargs["num_edges"] = args.max_edges
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.batch_size is not None:
            kwargs["batch_size"] = args.batch_size
        if args.kernel is not None:
            kwargs["kernel"] = args.kernel
    elif name == "serve":
        kwargs.pop("max_edges", None)
        if args.host is not None:
            kwargs["host"] = args.host
        if args.port is not None:
            kwargs["port"] = args.port
        if args.checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = args.checkpoint_dir
        if args.duration is not None:
            kwargs["duration_seconds"] = args.duration
        if args.queue_frames is not None:
            kwargs["queue_frames"] = args.queue_frames
        if args.backpressure is not None:
            kwargs["backpressure"] = args.backpressure
    elif name == "loadgen":
        kwargs.pop("max_edges", None)
        if args.host is not None:
            kwargs["host"] = args.host
        if args.port is not None:
            kwargs["port"] = args.port
        if args.tenants is not None:
            kwargs["tenants"] = args.tenants
        if args.duration is not None:
            kwargs["duration_seconds"] = args.duration
        if args.rate is not None:
            kwargs["rate_eps"] = args.rate
        if args.frame_records is not None:
            kwargs["frame_records"] = args.frame_records
        if args.queue_frames is not None:
            kwargs["queue_frames"] = args.queue_frames
        if args.backpressure is not None:
            kwargs["backpressure"] = args.backpressure
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.bench_out is not None:
            kwargs["bench_out"] = args.bench_out
    elif name == "monitor":
        kwargs.pop("max_edges", None)
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = args.checkpoint_dir
        if args.window is not None:
            kwargs["window_seconds"] = args.window
        if args.slide is not None:
            kwargs["slide_seconds"] = args.slide
        if args.panes is not None:
            kwargs["panes_per_window"] = args.panes
        if args.duration is not None:
            kwargs["duration_seconds"] = args.duration
        if args.kernel is not None:
            kwargs["kernel"] = args.kernel
    else:  # ablations / predictions
        if args.datasets:
            kwargs["dataset"] = args.datasets[0]
        if args.trials is not None:
            kwargs["num_trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
    return get_artefact(name)(**kwargs)


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import load_campaign_spec, run_campaign

    if not args.spec:
        print("campaign requires --spec <file.toml|file.json>", file=sys.stderr)
        return 2
    spec = load_campaign_spec(args.spec)
    base = Path("campaign-out") / spec.name
    store = Path(args.store) if args.store else base / "store"
    out_dir = Path(args.out) if args.out else base / "artefacts"
    report = run_campaign(
        spec,
        store=store,
        out_dir=out_dir,
        resume=args.resume,
        force=args.force,
        workers=args.workers,
        dry_run=args.dry_run,
    )
    if args.explain:
        print(report.explain_text())
    else:
        print(report.summary_line())
    if not args.dry_run:
        print(f"store: {report.store_root}")
        print(f"outputs: {report.out_dir}")
    if args.require_cached and report.num_computed > 0:
        print(
            f"--require-cached: {report.num_computed} task(s) were not served "
            "from cache",
            file=sys.stderr,
        )
        return EXIT_CACHE_MISS
    return 0


def _chaos_context(plan_argument: str):
    """Arm the fault plan named by ``--chaos``.

    Accepts either a plan JSON file or a plan directory (one holding
    ``plan.json``).  A directory keeps its firing tokens afterwards for
    post-mortem inspection; a bare file gets a throwaway token directory.
    """
    import json as _json

    from repro.testing.faults import PLAN_FILE, FaultPlan, arm

    path = Path(plan_argument)
    directory = path if path.is_dir() else None
    plan_file = (path / PLAN_FILE) if directory else path
    plan = FaultPlan.from_json(_json.loads(plan_file.read_text(encoding="utf-8")))
    return arm(plan, directory=directory)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    import contextlib
    import tempfile

    args = _build_parser().parse_args(argv)
    if args.artefact == "campaign":
        return _run_campaign(args)
    with contextlib.ExitStack() as stack:
        if args.chaos:
            if args.artefact in ("monitor", "serve") and args.checkpoint_dir is None:
                # Chaos without durability would simply crash the artefact;
                # default to a throwaway checkpoint directory so recovery
                # has somewhere to resume from.
                args.checkpoint_dir = stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-service-ckpt-")
                )
            stack.enter_context(_chaos_context(args.chaos))
        result = _run_artefact(args.artefact, args)
    print(result.text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
