"""Command-line entry point: ``rept-experiment <artefact> [options]``.

Examples
--------
Run the Table II reproduction on every registered dataset::

    rept-experiment table2

Run Figure 3 on two datasets with 3 trials and truncated streams::

    rept-experiment figure3 --datasets flickr-sim youtube-sim --trials 3 --max-edges 4000
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import backends as backends_module
from repro.experiments import figures, tables
from repro.experiments import ablations
from repro.experiments.spec import ExperimentResult


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rept-experiment",
        description="Regenerate a table or figure of the REPT paper",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(_ARTEFACTS),
        help="which paper artefact (or ablation) to regenerate",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="registered dataset names (default: all)",
    )
    parser.add_argument("--trials", type=int, default=None, help="independent trials per cell")
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--max-edges",
        type=int,
        default=None,
        help="truncate every stream to this many edges (smaller = faster)",
    )
    parser.add_argument(
        "--c-values",
        nargs="*",
        type=int,
        default=None,
        help="override the processor-count axis for the accuracy figures",
    )
    parser.add_argument(
        "--backends",
        nargs="*",
        default=None,
        help="execution backends for the 'backends' artefact "
        "(default: serial thread process chunked-serial chunked-process)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="edges per chunk for the chunked backends (default: auto-tuned)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="records per ingestion batch for the 'ingest' artefact "
        "(default: 65536)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="window width in seconds for the 'monitor' artefact "
        "(default: 300)",
    )
    parser.add_argument(
        "--slide",
        type=float,
        default=None,
        help="window slide in seconds for the 'monitor' artefact "
        "(default: the window width — tumbling)",
    )
    parser.add_argument(
        "--panes",
        type=int,
        default=None,
        help="panes per window for the 'monitor' artefact "
        "(default: one pane per slide)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="trace duration in seconds for the 'monitor' artefact "
        "(default: 3600; smaller = faster)",
    )
    return parser


def _run_artefact(name: str, args: argparse.Namespace) -> ExperimentResult:
    kwargs: Dict[str, object] = {}
    if args.max_edges is not None:
        kwargs["max_edges"] = args.max_edges

    if name in ("figure3", "figure4", "figure5", "figure6"):
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
        if args.trials is not None:
            kwargs["num_trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.c_values:
            kwargs["c_values"] = args.c_values
    elif name == "figure1":
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
    elif name == "figure7":
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
    elif name == "figure8":
        if args.datasets:
            kwargs["dataset"] = args.datasets[0]
        if args.trials is not None:
            kwargs["num_trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.c_values:
            kwargs["c_values"] = args.c_values
    elif name == "table2":
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
    elif name == "backends":
        if args.datasets:
            kwargs["dataset"] = args.datasets[0]
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.backends:
            kwargs["backends"] = args.backends
        if args.chunk_size is not None:
            kwargs["chunk_size"] = args.chunk_size
    elif name == "ingest":
        kwargs.pop("max_edges", None)
        if args.max_edges is not None:
            kwargs["num_edges"] = args.max_edges
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.batch_size is not None:
            kwargs["batch_size"] = args.batch_size
    elif name == "monitor":
        kwargs.pop("max_edges", None)
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.window is not None:
            kwargs["window_seconds"] = args.window
        if args.slide is not None:
            kwargs["slide_seconds"] = args.slide
        if args.panes is not None:
            kwargs["panes_per_window"] = args.panes
        if args.duration is not None:
            kwargs["duration_seconds"] = args.duration
    else:  # ablations
        if args.datasets:
            kwargs["dataset"] = args.datasets[0]
        if args.trials is not None:
            kwargs["num_trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
    return _ARTEFACTS[name](**kwargs)


def _prediction_artefact(**kwargs) -> ExperimentResult:
    from repro.experiments.predictions import prediction_vs_measurement

    return prediction_vs_measurement(**kwargs)


def _ingest_artefact(**kwargs) -> ExperimentResult:
    from repro.experiments.ingest import ingest_throughput

    return ingest_throughput(**kwargs)


def _monitor_artefact(**kwargs) -> ExperimentResult:
    from repro.experiments.monitoring import windowed_monitoring

    return windowed_monitoring(**kwargs)


_ARTEFACTS: Dict[str, Callable[..., ExperimentResult]] = {
    "ingest": _ingest_artefact,
    "monitor": _monitor_artefact,
    "figure1": figures.figure1,
    "figure3": figures.figure3,
    "figure4": figures.figure4,
    "figure5": figures.figure5,
    "figure6": figures.figure6,
    "figure7": figures.figure7,
    "figure8": figures.figure8,
    "table2": tables.table2,
    "backends": backends_module.backend_comparison,
    "ablation-variance": ablations.ablation_variance,
    "ablation-combination": ablations.ablation_combination,
    "ablation-hash": ablations.ablation_hash_family,
    "predictions": _prediction_artefact,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    result = _run_artefact(args.artefact, args)
    print(result.text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
