"""Experiment descriptions and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.base import StreamingTriangleEstimator
from repro.exceptions import ExperimentError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class MethodSpec:
    """One estimator configuration to include in a sweep.

    Attributes
    ----------
    name:
        Label used in reports ("REPT", "MASCOT", ...).
    factory:
        Callable ``(seed) -> estimator``; called once per trial with an
        independently spawned seed.
    """

    name: str
    factory: Callable[[SeedLike], StreamingTriangleEstimator]


@dataclass
class SweepSpec:
    """A parameter sweep over one axis (the x axis of a figure).

    Attributes
    ----------
    axis_name:
        The swept parameter ("c", "1/p", ...).
    axis_values:
        Values of the swept parameter, in plot order.
    datasets:
        Dataset names the sweep runs on.
    num_trials:
        Independent trials per cell.
    seed:
        Master seed; each (dataset, method, axis value, trial) derives its
        own child deterministically.
    """

    axis_name: str
    axis_values: Sequence
    datasets: Sequence[str]
    num_trials: int = 5
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if not self.axis_values:
            raise ExperimentError("a sweep needs at least one axis value")
        if not self.datasets:
            raise ExperimentError("a sweep needs at least one dataset")
        if self.num_trials < 1:
            raise ExperimentError("num_trials must be >= 1")


@dataclass
class ExperimentResult:
    """Structured output of one figure/table reproduction.

    Attributes
    ----------
    experiment_id:
        Paper artefact identifier, e.g. ``"figure3"``.
    description:
        One-line description of what was run.
    axis_name, axis_values:
        The x axis (empty for tables).
    series:
        Mapping ``dataset -> method -> list of y values`` aligned with
        ``axis_values`` (figures), or ``dataset -> column -> value``
        (tables use :attr:`rows` instead).
    rows:
        For table-style results: a list of row lists.
    headers:
        Column names accompanying :attr:`rows`.
    text:
        Plain-text rendering (what the CLI prints and EXPERIMENTS.md quotes).
    metadata:
        Parameters the experiment was run with (p, trials, seed, ...).
    """

    experiment_id: str
    description: str
    axis_name: str = ""
    axis_values: List = field(default_factory=list)
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    rows: List[List] = field(default_factory=list)
    headers: List[str] = field(default_factory=list)
    text: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def method_series(self, dataset: str, method: str) -> List[float]:
        """Return the y-series of ``method`` on ``dataset``.

        Raises :class:`ExperimentError` when the cell is missing, which
        usually means the experiment was run with a restricted dataset or
        method list.
        """
        try:
            return self.series[dataset][method]
        except KeyError as exc:
            raise ExperimentError(
                f"{self.experiment_id} has no series for dataset={dataset!r}, "
                f"method={method!r}"
            ) from exc
