"""Experiment descriptions and result containers.

Alongside the per-trial containers (:class:`MethodSpec`, :class:`SweepSpec`,
:class:`ExperimentResult`) this module holds the *campaign* layer's
declarative spec: a :class:`CampaignSpec` is a validated, in-memory form of
a TOML/JSON campaign file — a named set of :class:`StageSpec` entries that
the planner in :mod:`repro.experiments.campaign` expands into a
fingerprinted task graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.base import StreamingTriangleEstimator
from repro.exceptions import ExperimentError
from repro.utils.rng import SeedLike

#: Stage and campaign names become task-id and path components; keep them
#: to a filesystem- and report-friendly alphabet.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class MethodSpec:
    """One estimator configuration to include in a sweep.

    Attributes
    ----------
    name:
        Label used in reports ("REPT", "MASCOT", ...).
    factory:
        Callable ``(seed) -> estimator``; called once per trial with an
        independently spawned seed.
    """

    name: str
    factory: Callable[[SeedLike], StreamingTriangleEstimator]


@dataclass
class SweepSpec:
    """A parameter sweep over one axis (the x axis of a figure).

    Attributes
    ----------
    axis_name:
        The swept parameter ("c", "1/p", ...).
    axis_values:
        Values of the swept parameter, in plot order.
    datasets:
        Dataset names the sweep runs on.
    num_trials:
        Independent trials per cell.
    seed:
        Master seed; each (dataset, method, axis value, trial) derives its
        own child deterministically.
    """

    axis_name: str
    axis_values: Sequence
    datasets: Sequence[str]
    num_trials: int = 5
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if not self.axis_values:
            raise ExperimentError("a sweep needs at least one axis value")
        if not self.datasets:
            raise ExperimentError("a sweep needs at least one dataset")
        if self.num_trials < 1:
            raise ExperimentError("num_trials must be >= 1")


@dataclass
class ExperimentResult:
    """Structured output of one figure/table reproduction.

    Attributes
    ----------
    experiment_id:
        Paper artefact identifier, e.g. ``"figure3"``.
    description:
        One-line description of what was run.
    axis_name, axis_values:
        The x axis (empty for tables).
    series:
        Mapping ``dataset -> method -> list of y values`` aligned with
        ``axis_values`` (figures), or ``dataset -> column -> value``
        (tables use :attr:`rows` instead).
    rows:
        For table-style results: a list of row lists.
    headers:
        Column names accompanying :attr:`rows`.
    text:
        Plain-text rendering (what the CLI prints and EXPERIMENTS.md quotes).
    metadata:
        Parameters the experiment was run with (p, trials, seed, ...).
    """

    experiment_id: str
    description: str
    axis_name: str = ""
    axis_values: List = field(default_factory=list)
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    rows: List[List] = field(default_factory=list)
    headers: List[str] = field(default_factory=list)
    text: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def method_series(self, dataset: str, method: str) -> List[float]:
        """Return the y-series of ``method`` on ``dataset``.

        Raises :class:`ExperimentError` when the cell is missing, which
        usually means the experiment was run with a restricted dataset or
        method list.
        """
        try:
            return self.series[dataset][method]
        except KeyError as exc:
            raise ExperimentError(
                f"{self.experiment_id} has no series for dataset={dataset!r}, "
                f"method={method!r}"
            ) from exc


# ---------------------------------------------------------------------------
# Campaign layer: declarative, resumable experiment campaigns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StageSpec:
    """One stage of a campaign: a task kind plus its resolved configuration.

    Attributes
    ----------
    name:
        Stage identifier, unique within the campaign; task ids are derived
        from it (``<name>`` or ``<name>/<suffix>`` for fan-out stages).
    kind:
        Registered task-kind name (see
        :mod:`repro.experiments.campaign.kinds`); the planner decides how
        the stage expands into tasks (e.g. ``accuracy-figure`` becomes one
        cell task per (dataset, c) plus an aggregation task).
    config:
        Kind-specific configuration.  Every value participates in the task
        fingerprints, so it must be JSON-encodable
        (:func:`repro.experiments.results.encode_value`).
    depends_on:
        Names of stages this one consumes.  Dependencies contribute their
        fingerprints to this stage's tasks — any upstream change invalidates
        exactly this stage's cached outputs and those of its descendants.
    """

    name: str
    kind: str
    config: Mapping[str, object] = field(default_factory=dict)
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.match(self.name):
            raise ExperimentError(
                f"invalid stage name {self.name!r}: use letters, digits, '_', '-', '.'"
            )
        if not self.kind or not isinstance(self.kind, str):
            raise ExperimentError(f"stage {self.name!r} needs a task kind")
        if not isinstance(self.config, Mapping):
            raise ExperimentError(f"stage {self.name!r} config must be a table/dict")
        for dep in self.depends_on:
            if not _NAME_PATTERN.match(dep):
                raise ExperimentError(
                    f"stage {self.name!r} has an invalid dependency name {dep!r}"
                )
        if self.name in self.depends_on:
            raise ExperimentError(f"stage {self.name!r} depends on itself")


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: named stages forming a DAG.

    Attributes
    ----------
    name:
        Campaign identifier (used for the run manifest / output directory).
    description:
        Free-form one-liner shown in reports.
    stages:
        The stages, in declaration order.  Order carries no execution
        semantics (the planner topologically sorts), but reports preserve it.
    defaults:
        Campaign-wide config defaults merged under every stage config
        (stage values win).  Typical keys: ``max_edges``, ``num_trials``,
        ``seed``.
    workers:
        Default number of worker processes for task fan-out (1 = serial;
        results are bit-identical either way).
    task_retries:
        How many times a failed task is retried (with deterministic
        exponential backoff) before the campaign aborts.  0 (the default)
        fails fast.  Deterministic errors
        (:class:`~repro.exceptions.ExperimentError`) are never retried —
        retrying a config mistake only hides it.
    """

    name: str
    description: str = ""
    stages: Tuple[StageSpec, ...] = ()
    defaults: Mapping[str, object] = field(default_factory=dict)
    workers: int = 1
    task_retries: int = 0

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.match(self.name):
            raise ExperimentError(
                f"invalid campaign name {self.name!r}: use letters, digits, '_', '-', '.'"
            )
        if not self.stages:
            raise ExperimentError(f"campaign {self.name!r} declares no stages")
        if self.workers < 1:
            raise ExperimentError("workers must be >= 1")
        if self.task_retries < 0:
            raise ExperimentError("task_retries must be >= 0")
        seen = set()
        for stage in self.stages:
            if stage.name in seen:
                raise ExperimentError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
        for stage in self.stages:
            for dep in stage.depends_on:
                if dep not in seen:
                    raise ExperimentError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )

    def stage(self, name: str) -> StageSpec:
        """Return the stage named ``name``."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ExperimentError(f"campaign {self.name!r} has no stage {name!r}")

    def stage_names(self) -> List[str]:
        """Stage names in declaration order."""
        return [stage.name for stage in self.stages]
