"""Persistence and comparison of experiment results, and the campaign store.

Long sweeps are expensive; these helpers serialise an
:class:`~repro.experiments.spec.ExperimentResult` to JSON (and back) so that
runs can be archived, diffed across code versions, and quoted in
EXPERIMENTS.md without re-running anything.

The same serializer backs :class:`ResultStore`, the content-addressed
on-disk cache used by :mod:`repro.experiments.campaign`: every task output
is written under its fingerprint, so a re-run can load any task whose
inputs did not change instead of recomputing it.

Serialisation is *explicit*: only JSON-native values (plus tuples and
numpy scalars, which have an obvious faithful mapping) are accepted, and
anything else raises :class:`~repro.exceptions.ExperimentError` instead of
being silently stringified.  Format version 2 guarantees a faithful
save → load round trip; version-1 files (written by the old ``default=str``
serializer) are still readable, with whatever damage they already contain.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult

PathLike = Union[str, Path]

#: Version 2 switched from ``json.dump(default=str)`` to the explicit
#: encoder below; version-1 files remain loadable.
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)

#: Layout version of the content-addressed store records.
_STORE_VERSION = 1


def encode_value(value):
    """Return ``value`` converted to JSON-native types, faithfully.

    Accepted inputs: ``None``, ``bool``, ``int``, ``float``, ``str``,
    numpy integer/floating scalars (converted via ``.item()``), and
    dict/list/tuple containers thereof (tuples become lists, which is the
    one lossy-but-documented mapping: JSON has no tuple type).  Dict keys
    must be strings.  Anything else raises :class:`ExperimentError` so a
    non-serialisable result is a loud error at save time, never a silently
    stringified value that breaks the load round trip.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ExperimentError(
                    f"cannot serialise dict key {key!r} of type {type(key).__name__}; "
                    "store keys must be strings"
                )
            encoded[key] = encode_value(item)
        return encoded
    raise ExperimentError(
        f"cannot serialise value of type {type(value).__name__}: {value!r}"
    )


def canonical_json(value) -> str:
    """Compact, key-sorted JSON used for fingerprinting.

    Key order never affects the digest; list/tuple order does.
    """
    return json.dumps(encode_value(value), sort_keys=True, separators=(",", ":"))


def _atomic_write_json(payload, path: Path) -> None:
    """Serialise ``payload`` to ``path`` atomically (write temp + rename).

    A campaign killed mid-write must never leave a truncated store object
    behind — resume correctness depends on every on-disk record being
    either absent or complete.  Key order is preserved (not sorted) so
    ordered payloads such as method → value maps round-trip in order.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
    )
    try:
        with handle:
            json.dump(payload, handle, indent=2)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def encode_result(result: ExperimentResult) -> Dict:
    """Return the faithful JSON form of an :class:`ExperimentResult`."""
    return encode_value(asdict(result))


def decode_result(data: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its JSON form."""
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        description=data.get("description", ""),
        axis_name=data.get("axis_name", ""),
        axis_values=data.get("axis_values", []),
        series=data.get("series", {}),
        rows=data.get("rows", []),
        headers=data.get("headers", []),
        text=data.get("text", ""),
        metadata=data.get("metadata", {}),
    )


def save_result(result: ExperimentResult, path: PathLike) -> Path:
    """Serialise ``result`` to a JSON file and return the path written.

    Raises :class:`ExperimentError` if the result contains values the
    explicit encoder does not understand (see :func:`encode_value`).
    """
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "result": encode_result(result),
    }
    _atomic_write_json(payload, path)
    return path


def load_result(path: PathLike) -> ExperimentResult:
    """Load an :class:`ExperimentResult` previously written by :func:`save_result`.

    Reads both current (v2, explicit encoder) and legacy (v1,
    ``default=str``) files.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "result" not in payload:
        raise ExperimentError(f"{path} is not a saved experiment result")
    version = payload.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ExperimentError(
            f"{path} uses format version {version!r}; this build reads "
            f"{_READABLE_VERSIONS}"
        )
    return decode_result(payload["result"])


def compare_results(
    baseline: ExperimentResult, candidate: ExperimentResult
) -> Dict[str, Dict[str, List[float]]]:
    """Return per-series ratios ``candidate / baseline`` for matching cells.

    Useful for regression tracking: run a sweep on two code versions, save
    both, and inspect where the candidate's errors (or runtimes) moved.
    Cells present in only one result are skipped.

    Raises
    ------
    ExperimentError
        If the two results regenerate different experiments or different
        axis values (ratios would be meaningless).
    """
    if baseline.experiment_id != candidate.experiment_id:
        raise ExperimentError(
            "cannot compare results of different experiments: "
            f"{baseline.experiment_id!r} vs {candidate.experiment_id!r}"
        )
    if baseline.axis_values != candidate.axis_values:
        raise ExperimentError("cannot compare results with different axis values")
    ratios: Dict[str, Dict[str, List[float]]] = {}
    for dataset, methods in baseline.series.items():
        if dataset not in candidate.series:
            continue
        for method, baseline_values in methods.items():
            candidate_values = candidate.series[dataset].get(method)
            if candidate_values is None:
                continue
            pairs = zip(baseline_values, candidate_values)
            ratios.setdefault(dataset, {})[method] = [
                (cand / base) if base else float("inf") for base, cand in pairs
            ]
    return ratios


class ResultStore:
    """Content-addressed store of campaign task outputs.

    Every record is keyed by its task's fingerprint — a digest of the task
    kind, its resolved configuration, its upstream fingerprints and the
    code version — so a record is valid for exactly as long as everything
    that produced it is unchanged.  Records live under
    ``<root>/objects/<fp[:2]>/<fp>.json`` and are written atomically, which
    makes a killed campaign resumable: completed tasks are on disk in
    full, everything else is absent.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        """Return the object path of ``fingerprint`` (existing or not)."""
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    def has(self, fingerprint: str) -> bool:
        """Return whether a completed record exists for ``fingerprint``."""
        return self.path_for(fingerprint).is_file()

    def quarantine(self, fingerprint: str) -> Path:
        """Move the record for ``fingerprint`` aside as ``*.corrupt``.

        The quarantined file keeps the damaged bytes for post-mortem
        inspection while freeing the fingerprint: ``has``/``verify`` report
        it absent afterwards, so the task simply recomputes.  Returns the
        quarantine path.
        """
        path = self.path_for(fingerprint)
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except FileNotFoundError:
            pass
        return target

    def verify(self, fingerprint: str) -> bool:
        """Validate the record for ``fingerprint``, quarantining bad ones.

        Returns True only for a present, parseable record whose recorded
        fingerprint and store version match.  Anything else — torn JSON, a
        hand-edited or bit-rotted record, a foreign store version — is
        renamed to ``*.corrupt`` and reported False, so cache planning
        treats it as a miss and the task recomputes instead of crashing
        mid-campaign (or worse, trusting damaged data).
        """
        path = self.path_for(fingerprint)
        if not path.is_file():
            return False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.quarantine(fingerprint)
            return False
        if (
            not isinstance(record, dict)
            or record.get("fingerprint") != fingerprint
            or "payload" not in record
        ):
            self.quarantine(fingerprint)
            return False
        # A foreign store version is unusable but not damaged: report a
        # miss without quarantining (an older build may still read it).
        return record.get("store_version") == _STORE_VERSION

    def save(self, fingerprint: str, task_id: str, kind: str, payload) -> Path:
        """Persist one task output; returns the object path written."""
        record = {
            "store_version": _STORE_VERSION,
            "fingerprint": fingerprint,
            "task_id": task_id,
            "kind": kind,
            "payload": encode_value(payload),
        }
        path = self.path_for(fingerprint)
        _atomic_write_json(record, path)
        return path

    def load(self, fingerprint: str):
        """Return the payload stored under ``fingerprint``.

        Raises :class:`ExperimentError` when the record is missing or does
        not validate (a corrupted or hand-edited store); invalid records
        are quarantined as ``*.corrupt`` first, so the next run recomputes
        the task instead of tripping over the same damage.
        """
        path = self.path_for(fingerprint)
        if not path.is_file():
            raise ExperimentError(f"store has no record for fingerprint {fingerprint}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            quarantined = self.quarantine(fingerprint)
            raise ExperimentError(
                f"{path} is not valid JSON (quarantined to {quarantined.name}): {exc}"
            ) from exc
        if not isinstance(record, dict) or record.get("fingerprint") != fingerprint:
            quarantined = self.quarantine(fingerprint)
            raise ExperimentError(
                f"{path} is not a valid store record "
                f"(quarantined to {quarantined.name})"
            )
        if record.get("store_version") != _STORE_VERSION:
            raise ExperimentError(
                f"{path} uses store version {record.get('store_version')!r}; "
                f"this build reads {_STORE_VERSION}"
            )
        return record["payload"]

    def discard(self, fingerprint: str) -> None:
        """Remove the record for ``fingerprint`` if present (``--force``)."""
        try:
            self.path_for(fingerprint).unlink()
        except FileNotFoundError:
            pass

    def fingerprints(self) -> List[str]:
        """Return every fingerprint currently stored (sorted)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(path.stem for path in objects.glob("*/*.json"))
