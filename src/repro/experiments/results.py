"""Persistence and comparison of experiment results.

Long sweeps are expensive; these helpers serialise an
:class:`~repro.experiments.spec.ExperimentResult` to JSON (and back) so that
runs can be archived, diffed across code versions, and quoted in
EXPERIMENTS.md without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_result(result: ExperimentResult, path: PathLike) -> Path:
    """Serialise ``result`` to a JSON file and return the path written."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "result": asdict(result),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return path


def load_result(path: PathLike) -> ExperimentResult:
    """Load an :class:`ExperimentResult` previously written by :func:`save_result`."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "result" not in payload:
        raise ExperimentError(f"{path} is not a saved experiment result")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ExperimentError(
            f"{path} uses format version {version!r}; this build reads {_FORMAT_VERSION}"
        )
    data = payload["result"]
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        description=data.get("description", ""),
        axis_name=data.get("axis_name", ""),
        axis_values=data.get("axis_values", []),
        series=data.get("series", {}),
        rows=data.get("rows", []),
        headers=data.get("headers", []),
        text=data.get("text", ""),
        metadata=data.get("metadata", {}),
    )


def compare_results(
    baseline: ExperimentResult, candidate: ExperimentResult
) -> Dict[str, Dict[str, List[float]]]:
    """Return per-series ratios ``candidate / baseline`` for matching cells.

    Useful for regression tracking: run a sweep on two code versions, save
    both, and inspect where the candidate's errors (or runtimes) moved.
    Cells present in only one result are skipped.

    Raises
    ------
    ExperimentError
        If the two results regenerate different experiments or different
        axis values (ratios would be meaningless).
    """
    if baseline.experiment_id != candidate.experiment_id:
        raise ExperimentError(
            "cannot compare results of different experiments: "
            f"{baseline.experiment_id!r} vs {candidate.experiment_id!r}"
        )
    if baseline.axis_values != candidate.axis_values:
        raise ExperimentError("cannot compare results with different axis values")
    ratios: Dict[str, Dict[str, List[float]]] = {}
    for dataset, methods in baseline.series.items():
        if dataset not in candidate.series:
            continue
        for method, baseline_values in methods.items():
            candidate_values = candidate.series[dataset].get(method)
            if candidate_values is None:
                continue
            pairs = zip(baseline_values, candidate_values)
            ratios.setdefault(dataset, {})[method] = [
                (cand / base) if base else float("inf") for base, cand in pairs
            ]
    return ratios
