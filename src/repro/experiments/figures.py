"""One function per figure of the paper's evaluation section.

Every function returns an :class:`~repro.experiments.spec.ExperimentResult`
whose ``series`` (or ``rows``) contain the same quantities the paper plots,
and whose ``text`` field is a ready-to-print rendering.  Parameters default
to a configuration that runs in minutes on a laptop against the synthetic
dataset registry; pass larger ``num_trials`` / full dataset lists for
tighter error bars.

The accuracy figures (3–6) are *declarative*: each is an
:class:`~repro.experiments.stages.AccuracySweepDef` entry in
:data:`ACCURACY_FIGURES`, executed by the shared
:func:`~repro.experiments.stages.accuracy_sweep` primitive — the same
primitive the campaign engine decomposes into cached per-(dataset, c) cell
tasks.  ``figure3(...)`` and a campaign stage running figure3 therefore
produce identical output.

The paper's axes:

* Figure 1  — τ vs η and the two MASCOT variance terms, per dataset.
* Figure 3  — global NRMSE vs c (p = 0.01), REPT vs MASCOT/TRIÈST/GPS.
* Figure 4  — global NRMSE vs c (p = 0.1).
* Figure 5  — local NRMSE vs c (p = 0.01), REPT vs MASCOT/TRIÈST.
* Figure 6  — local NRMSE vs c (p = 0.1).
* Figure 7  — runtime vs 1/p at c = 10, all four methods.
* Figure 8  — REPT vs single-threaded baselines (equal total memory):
              runtime and NRMSE vs c on Flickr.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import default_method_specs, run_global_trials
from repro.experiments.spec import ExperimentResult
from repro.experiments.stages import (
    AccuracySweepDef,
    accuracy_sweep,
    prepare_stream,
    resolve_datasets,
)
from repro.graph.statistics import compute_statistics
from repro.metrics.runtime import measure_runtime
from repro.utils.rng import derive_seed
from repro.utils.tables import format_series, format_table

#: Paper parameter grids (Figures 3-6).
FIGURE3_C_VALUES = (20, 80, 160, 240, 320)
FIGURE4_C_VALUES = (2, 8, 16, 24, 32)
FIGURE7_INV_P_VALUES = (2, 4, 8, 16, 32)
FIGURE8_C_VALUES = (2, 4, 8, 16, 32)

#: The accuracy figures as data: p, axis, method line-up and default seed
#: are the *only* things that differ between Figures 3–6.
ACCURACY_FIGURES: Dict[str, AccuracySweepDef] = {
    "figure3": AccuracySweepDef(
        experiment_id="figure3",
        description="Global NRMSE vs number of processors, p=0.01",
        p=0.01,
        c_values=FIGURE3_C_VALUES,
        methods=("mascot", "triest", "gps", "rept"),
        local=False,
        default_seed=3,
    ),
    "figure4": AccuracySweepDef(
        experiment_id="figure4",
        description="Global NRMSE vs number of processors, p=0.1",
        p=0.1,
        c_values=FIGURE4_C_VALUES,
        methods=("mascot", "triest", "gps", "rept"),
        local=False,
        default_seed=4,
    ),
    "figure5": AccuracySweepDef(
        experiment_id="figure5",
        description="Local NRMSE vs number of processors, p=0.01",
        p=0.01,
        c_values=FIGURE3_C_VALUES,
        methods=("mascot", "triest", "rept"),
        local=True,
        default_seed=5,
    ),
    "figure6": AccuracySweepDef(
        experiment_id="figure6",
        description="Local NRMSE vs number of processors, p=0.1",
        p=0.1,
        c_values=FIGURE4_C_VALUES,
        methods=("mascot", "triest", "rept"),
        local=True,
        default_seed=6,
    ),
}


def _make_accuracy_figure(sweep: AccuracySweepDef):
    """Build the thin public wrapper for one declarative accuracy figure."""

    def figure(
        datasets: Optional[Sequence[str]] = None,
        c_values: Sequence[int] = sweep.c_values,
        num_trials: int = sweep.default_trials,
        seed: int = sweep.default_seed,
        max_edges: Optional[int] = None,
        methods: Sequence[str] = sweep.methods,
        rept_backend: Optional[str] = None,
    ) -> ExperimentResult:
        return accuracy_sweep(
            sweep,
            datasets=datasets,
            c_values=c_values,
            num_trials=num_trials,
            seed=seed,
            max_edges=max_edges,
            methods=methods,
            rept_backend=rept_backend,
        )

    figure.__name__ = sweep.experiment_id
    figure.__qualname__ = sweep.experiment_id
    figure.__doc__ = f"{sweep.experiment_id.capitalize()}: {sweep.description}."
    return figure


figure3 = _make_accuracy_figure(ACCURACY_FIGURES["figure3"])
figure4 = _make_accuracy_figure(ACCURACY_FIGURES["figure4"])
figure5 = _make_accuracy_figure(ACCURACY_FIGURES["figure5"])
figure6 = _make_accuracy_figure(ACCURACY_FIGURES["figure6"])


# ---------------------------------------------------------------------------
# Figure 1: τ vs η and the MASCOT variance terms
# ---------------------------------------------------------------------------

def figure1(
    datasets: Optional[Sequence[str]] = None,
    probabilities: Sequence[float] = (0.1, 0.05, 0.01),
    max_edges: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 1: exact τ, η and the variance terms per dataset.

    The paper's claim is that ``2η(p⁻¹−1)`` dominates ``τ(p⁻²−1)`` — i.e.
    the covariance between sampled semi-triangles dominates MASCOT's error.
    """
    names = resolve_datasets(datasets)
    headers = ["dataset", "tau", "eta", "eta/tau"]
    for p in probabilities:
        headers.append(f"tau(p^-2-1) p={p}")
        headers.append(f"2eta(p^-1-1) p={p}")
        headers.append(f"ratio p={p}")
    rows: List[List] = []
    series: Dict[str, Dict[str, List[float]]] = {}
    for name in names:
        stream = prepare_stream(name, max_edges)
        stats = compute_statistics(stream.edges(), name=name)
        row: List = [name, stats.num_triangles, stats.eta, stats.eta_to_tau_ratio()]
        per_dataset: Dict[str, List[float]] = {"tau": [], "eta": [], "tau_term": [], "cov_term": []}
        for p in probabilities:
            terms = stats.mascot_variance_terms(p)
            tau_term = terms["tau_term"]
            cov_term = terms["covariance_term"]
            ratio = cov_term / tau_term if tau_term > 0 else float("inf")
            row.extend([tau_term, cov_term, ratio])
            per_dataset["tau"].append(float(stats.num_triangles))
            per_dataset["eta"].append(float(stats.eta))
            per_dataset["tau_term"].append(tau_term)
            per_dataset["cov_term"].append(cov_term)
        rows.append(row)
        series[name] = per_dataset
    text = format_table(headers, rows, title="Figure 1: tau vs eta and MASCOT variance terms")
    return ExperimentResult(
        experiment_id="figure1",
        description="Exact tau/eta and MASCOT variance terms per dataset",
        axis_name="p",
        axis_values=list(probabilities),
        series=series,
        rows=rows,
        headers=headers,
        text=text,
        metadata={"datasets": names, "probabilities": list(probabilities)},
    )


# ---------------------------------------------------------------------------
# Figure 7: runtime vs 1/p
# ---------------------------------------------------------------------------

def figure7(
    datasets: Optional[Sequence[str]] = None,
    inv_p_values: Sequence[int] = FIGURE7_INV_P_VALUES,
    c: int = 10,
    seed: int = 7,
    max_edges: Optional[int] = None,
    methods: Sequence[str] = ("mascot", "triest", "gps", "rept"),
) -> ExperimentResult:
    """Figure 7: wall-clock runtime vs 1/p at c = 10 processors.

    Absolute seconds are implementation- and machine-specific (the paper
    times a C++ implementation); the reproduction checks the *ordering*
    (REPT ≈ MASCOT faster than TRIÈST faster than GPS) and the growth of
    runtime as p grows (1/p shrinks).
    """
    names = resolve_datasets(datasets)
    series: Dict[str, Dict[str, List[float]]] = {}
    text_blocks: List[str] = []
    for name in names:
        stream = prepare_stream(name, max_edges)
        edges = stream.edges()
        per_method: Dict[str, List[float]] = {}
        for inv_p in inv_p_values:
            p = 1.0 / inv_p
            specs = default_method_specs(p, c, len(edges), methods=methods, track_local=True)
            for index, spec in enumerate(specs):
                trial_seed = derive_seed(seed, "figure7", name, inv_p, index)
                estimator = spec.factory(trial_seed)
                measurement = measure_runtime(estimator, edges)
                per_method.setdefault(spec.name, []).append(measurement.seconds)
        series[name] = per_method
        text_blocks.append(
            format_series(
                "1/p",
                list(inv_p_values),
                [(method, values) for method, values in per_method.items()],
                title=f"figure7 — {name} runtime seconds (c={c})",
            )
        )
    return ExperimentResult(
        experiment_id="figure7",
        description="Runtime vs 1/p at c=10 processors",
        axis_name="1/p",
        axis_values=list(inv_p_values),
        series=series,
        text="\n\n".join(text_blocks),
        metadata={"c": c, "datasets": names, "methods": list(methods), "max_edges": max_edges},
    )


# ---------------------------------------------------------------------------
# Figure 8: REPT vs single-threaded baselines with equal total memory
# ---------------------------------------------------------------------------

def figure8(
    dataset: str = "flickr-sim",
    c_values: Sequence[int] = FIGURE8_C_VALUES,
    inv_p: int = 10,
    num_trials: int = 5,
    seed: int = 8,
    max_edges: Optional[int] = None,
) -> ExperimentResult:
    """Figure 8: runtime and NRMSE of REPT vs MASCOT-S / TRIÈST-S / GPS-S.

    The single-threaded baselines get the *combined* memory of the c
    processors (sampling probability ``c·p``, budgets ``c·p·|E|``); REPT
    uses ``c`` processors at probability ``p``.  The paper's observation is
    that REPT is one to two orders of magnitude faster per worker while its
    error stays comparable.
    """
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    truth = float(stats.num_triangles)
    p = 1.0 / inv_p

    methods = ("mascot-s", "triest-s", "gps-s", "rept")
    runtime_series: Dict[str, List[float]] = {}
    error_series: Dict[str, List[float]] = {}
    for c in c_values:
        specs = default_method_specs(p, c, len(edges), methods=methods, track_local=True)
        cell_seed = derive_seed(seed, "figure8", dataset, c)
        summaries = run_global_trials(specs, edges, truth, num_trials, seed=cell_seed)
        for spec in specs:
            error_series.setdefault(spec.name, []).append(summaries[spec.name].nrmse)
        for index, spec in enumerate(specs):
            estimator = spec.factory(derive_seed(seed, "figure8-rt", dataset, c, index))
            measurement = measure_runtime(estimator, edges)
            runtime_series.setdefault(spec.name, []).append(measurement.seconds)

    text = "\n\n".join(
        [
            format_series(
                "c",
                list(c_values),
                [(name, values) for name, values in runtime_series.items()],
                title=f"figure8 — {dataset} runtime seconds (1/p={inv_p})",
            ),
            format_series(
                "c",
                list(c_values),
                [(name, values) for name, values in error_series.items()],
                title=f"figure8 — {dataset} global NRMSE (1/p={inv_p}, trials={num_trials})",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="figure8",
        description="REPT vs single-threaded baselines with equal total memory",
        axis_name="c",
        axis_values=list(c_values),
        series={"runtime": runtime_series, "nrmse": error_series},
        text=text,
        metadata={
            "dataset": dataset,
            "inv_p": inv_p,
            "num_trials": num_trials,
            "seed": seed,
            "max_edges": max_edges,
        },
    )
