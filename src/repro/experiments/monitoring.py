"""Windowed-monitoring artefact: per-interval triangle series, online.

The paper's motivating deployment — per-interval triangle counts over a
router packet stream — exercised end to end: a synthetic packet trace with
planted anomaly bursts is fed once, in arrival order, through
:class:`~repro.streaming.monitor.WindowedTriangleMonitor`, and every
emitted window is estimated three ways:

* **REPT** through the merge-based engine (pane deltas, shared encoding,
  no re-ingestion on window advance);
* **exact** through a per-window exact streaming counter (ground truth);
* **TRIÈST** through a per-window reservoir estimator (fixed-memory
  baseline).

The table reports the per-window series and relative errors, so accuracy
can be compared across window sizes (``--window``/``--slide``/``--panes``
on the CLI).  Exposed as ``rept-experiment monitor``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.triest import TriestImprEstimator
from repro.core.config import ReptConfig
from repro.durability import RetryPolicy, call_with_retry, run_monitor_durable
from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult
from repro.generators.traffic import TrafficTraceSpec, synthetic_packet_trace
from repro.streaming.monitor import MonitorWindowResult, WindowedTriangleMonitor
from repro.utils.tables import format_table

#: Records handed to the monitors per ingest call (arrival batching).
_INGEST_BATCH = 8192


def _run_monitor(
    monitor: WindowedTriangleMonitor, records
) -> List[MonitorWindowResult]:
    """Feed the trace once, in arrival order, and collect every window."""
    closed: List[MonitorWindowResult] = []
    for start in range(0, len(records), _INGEST_BATCH):
        closed.extend(monitor.ingest(records[start : start + _INGEST_BATCH]))
    closed.extend(monitor.flush())
    return closed


def windowed_monitoring(
    window_seconds: float = 300.0,
    slide_seconds: Optional[float] = None,
    panes_per_window: Optional[int] = None,
    duration_seconds: float = 3600.0,
    background_rate: float = 20.0,
    num_hosts: int = 500,
    m: int = 8,
    c: int = 16,
    triest_budget: int = 2000,
    seed: int = 2024,
    checkpoint_dir: Optional[str] = None,
    kernel: str = "auto",
) -> ExperimentResult:
    """Per-interval triangle monitoring over a synthetic router trace.

    Returns one row per emitted window with the exact count, the REPT and
    TRIÈST estimates and their relative errors.  The REPT column comes from
    the merge-based monitor engine, whose estimates are bit-identical to
    re-ingesting each window from scratch — so its errors here are purely
    the estimator's sampling error, never an artefact of the windowing.

    ``checkpoint_dir`` routes the REPT monitor through the durable runner
    (:func:`~repro.durability.run_monitor_durable`): every ingest batch is
    checkpointed, and the whole run is retried on failure, resuming from
    the newest checkpoint.  Under a ``--chaos`` fault plan this is the
    artefact-level demonstration that a crashed-and-recovered monitoring
    session reports the same window series (the runner's results are
    bit-identical to the in-memory path, so the error columns do not
    move).
    """
    if window_seconds <= 0:
        raise ExperimentError("window_seconds must be positive")
    if panes_per_window is not None and panes_per_window < 1:
        raise ExperimentError("panes_per_window must be >= 1")
    spec = TrafficTraceSpec(
        num_hosts=num_hosts,
        duration_seconds=duration_seconds,
        background_rate=background_rate,
        window_seconds=window_seconds,
    )
    records = synthetic_packet_trace(spec, seed=seed)
    if not records:
        raise ExperimentError("the synthetic trace is empty")
    slide = window_seconds if slide_seconds is None else slide_seconds
    pane = (
        min(window_seconds, slide)
        if panes_per_window is None
        else window_seconds / panes_per_window
    )

    def make_monitor(**engine) -> WindowedTriangleMonitor:
        return WindowedTriangleMonitor(
            window_seconds,
            slide_seconds=slide,
            pane_seconds=pane,
            seed=seed,
            origin=0.0,
            allowed_lateness=0.0,
            **engine,
        )

    config = ReptConfig(m=m, c=c, seed=seed, track_local=False, kernel=kernel)
    if checkpoint_dir is not None:
        def durable_run() -> List[MonitorWindowResult]:
            results, _ = run_monitor_durable(
                lambda: make_monitor(config=config),
                records,
                checkpoint_dir,
                checkpoint_every=_INGEST_BATCH,
            )
            return results

        # Injected (or real) mid-run failures surface here as exceptions;
        # each retry re-enters the durable runner, which resumes from the
        # newest valid checkpoint instead of starting over.
        rept_windows = call_with_retry(
            durable_run, RetryPolicy(max_attempts=4, base_delay=0.01, seed=seed)
        )
    else:
        rept_windows = _run_monitor(make_monitor(config=config), records)
    exact_windows = _run_monitor(
        make_monitor(estimator_factory=lambda _s: ExactStreamingCounter()), records
    )
    triest_windows = _run_monitor(
        make_monitor(
            estimator_factory=lambda s: TriestImprEstimator(
                budget=triest_budget, seed=s, track_local=False
            )
        ),
        records,
    )
    if not (len(rept_windows) == len(exact_windows) == len(triest_windows)):
        raise ExperimentError("monitor engines disagree on the window series")

    headers = [
        "window",
        "start",
        "records",
        "exact",
        "rept",
        "rept_err%",
        "triest",
        "triest_err%",
    ]
    rows: List[List] = []
    series = {"exact": [], "rept": [], "triest": []}
    for rept, exact, triest in zip(rept_windows, exact_windows, triest_windows):
        truth = exact.estimate.global_count
        rept_value = rept.estimate.global_count
        triest_value = triest.estimate.global_count
        denominator = truth if truth else 1.0
        series["exact"].append(truth)
        series["rept"].append(rept_value)
        series["triest"].append(triest_value)
        rows.append(
            [
                rept.index,
                round(rept.start, 1),
                rept.records,
                int(truth),
                round(rept_value, 1),
                round(100.0 * abs(rept_value - truth) / denominator, 2),
                round(triest_value, 1),
                round(100.0 * abs(triest_value - truth) / denominator, 2),
            ]
        )

    text = format_table(
        headers,
        rows,
        title=(
            f"Windowed triangle monitoring ({len(records)} records, "
            f"window={window_seconds}s, slide={slide}s, pane={pane}s, "
            f"REPT m={m} c={c}, TRIÈST budget={triest_budget})"
        ),
    )
    return ExperimentResult(
        experiment_id="monitor",
        description="Per-interval triangle estimates via the sliding-window monitor",
        rows=rows,
        headers=headers,
        text=text,
        metadata={
            "num_records": len(records),
            "window_seconds": window_seconds,
            "slide_seconds": slide,
            "pane_seconds": pane,
            "num_windows": len(rows),
            "m": m,
            "c": c,
            "triest_budget": triest_budget,
            "seed": seed,
            "checkpointed": checkpoint_dir is not None,
            "series": series,
        },
    )
