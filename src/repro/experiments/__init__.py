"""Experiment harness: regenerate every table and figure of the paper.

The harness has four layers:

* :mod:`repro.experiments.runner` — run one (dataset, method, parameters)
  cell for a number of independent trials and summarise the errors;
* :mod:`repro.experiments.stages` — the shared stage primitives (dataset
  prep, declarative accuracy sweeps and their per-cell unit of work);
* :mod:`repro.experiments.figures` / :mod:`repro.experiments.tables` — one
  function per paper artefact (Figure 1, Table II, Figures 3–8) plus the
  ablations listed in DESIGN.md, each returning a structured result and a
  plain-text rendering of the same rows/series the paper reports;
* :mod:`repro.experiments.campaign` — declarative, resumable campaigns: a
  spec file declares stages as a DAG of fingerprinted tasks cached in a
  content-addressed store, so a full paper reproduction re-runs
  incrementally (see ``campaigns/paper_full.toml``);
* :mod:`repro.experiments.cli` — ``rept-experiment`` command-line entry
  point for running any of them from a shell.
"""

from repro.experiments.spec import (
    CampaignSpec,
    ExperimentResult,
    MethodSpec,
    StageSpec,
    SweepSpec,
)
from repro.experiments.runner import (
    default_method_specs,
    run_global_trials,
    run_local_trials,
)
from repro.experiments.stages import (
    AccuracySweepDef,
    accuracy_cell,
    accuracy_sweep,
    prepare_stream,
    resolve_datasets,
)
from repro.experiments.figures import (
    ACCURACY_FIGURES,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.tables import table2
from repro.experiments.backends import backend_comparison
from repro.experiments.results import ResultStore, load_result, save_result
from repro.experiments.campaign import (
    load_campaign_spec,
    plan_campaign,
    run_campaign,
)

__all__ = [
    "ACCURACY_FIGURES",
    "AccuracySweepDef",
    "CampaignSpec",
    "ExperimentResult",
    "MethodSpec",
    "ResultStore",
    "StageSpec",
    "SweepSpec",
    "accuracy_cell",
    "accuracy_sweep",
    "backend_comparison",
    "default_method_specs",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "load_campaign_spec",
    "load_result",
    "plan_campaign",
    "prepare_stream",
    "resolve_datasets",
    "run_campaign",
    "run_global_trials",
    "run_local_trials",
    "save_result",
    "table2",
]
