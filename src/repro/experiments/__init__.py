"""Experiment harness: regenerate every table and figure of the paper.

The harness has three layers:

* :mod:`repro.experiments.runner` — run one (dataset, method, parameters)
  cell for a number of independent trials and summarise the errors;
* :mod:`repro.experiments.figures` / :mod:`repro.experiments.tables` — one
  function per paper artefact (Figure 1, Table II, Figures 3–8) plus the
  ablations listed in DESIGN.md, each returning a structured result and a
  plain-text rendering of the same rows/series the paper reports;
* :mod:`repro.experiments.cli` — ``rept-experiment`` command-line entry
  point for running any of them from a shell.
"""

from repro.experiments.spec import ExperimentResult, MethodSpec, SweepSpec
from repro.experiments.runner import (
    default_method_specs,
    run_global_trials,
    run_local_trials,
)
from repro.experiments.figures import (
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.tables import table2
from repro.experiments.backends import backend_comparison

__all__ = [
    "backend_comparison",
    "ExperimentResult",
    "MethodSpec",
    "SweepSpec",
    "default_method_specs",
    "run_global_trials",
    "run_local_trials",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "table2",
]
