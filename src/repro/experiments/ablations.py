"""Ablation experiments called out in DESIGN.md (A1–A3).

* A1 — empirical variance of REPT vs the closed-form predictions, for the
  three regimes ``c < m``, ``c = m`` and ``c = c₁·m``;
* A2 — the value of the Graybill–Deal combination when ``c mod m ≠ 0``:
  combined estimate vs using only the complete groups (τ̂⁽¹⁾) or only the
  partial group (τ̂⁽²⁾);
* A3 — hash-family choice (splitmix vs tabulation) does not change accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.variance import rept_variance
from repro.core.config import ReptConfig
from repro.core.rept import ReptEstimator
from repro.experiments.spec import ExperimentResult
from repro.experiments.stages import prepare_stream
from repro.graph.statistics import compute_statistics
from repro.metrics.errors import empirical_variance, normalized_rmse
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def ablation_variance(
    dataset: str = "youtube-sim",
    m: int = 10,
    c_values: Sequence[int] = (2, 5, 10, 20, 30),
    num_trials: int = 30,
    seed: int = 11,
    max_edges: Optional[int] = 4000,
) -> ExperimentResult:
    """A1: empirical variance of τ̂ against the paper's closed forms."""
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    headers = ["c", "regime", "empirical Var", "predicted Var", "ratio"]
    rows: List[List] = []
    series: Dict[str, Dict[str, List[float]]] = {dataset: {"empirical": [], "predicted": []}}
    for c in c_values:
        estimates = []
        for trial in range(num_trials):
            config = ReptConfig(
                m=m, c=c, seed=derive_seed(seed, "A1", c, trial), track_local=False
            )
            estimates.append(ReptEstimator(config).run(edges).global_count)
        empirical = empirical_variance(estimates)
        predicted = rept_variance(stats.num_triangles, stats.eta, m, c)
        regime = "c<m" if c < m else ("c=m" if c == m else ("c=k*m" if c % m == 0 else "c>m,c%m!=0"))
        ratio = empirical / predicted if predicted > 0 else float("inf")
        rows.append([c, regime, empirical, predicted, ratio])
        series[dataset]["empirical"].append(empirical)
        series[dataset]["predicted"].append(predicted)
    text = format_table(
        headers, rows, title=f"Ablation A1: REPT variance vs closed form ({dataset}, m={m})"
    )
    return ExperimentResult(
        experiment_id="ablation_variance",
        description="Empirical vs predicted variance of REPT",
        axis_name="c",
        axis_values=list(c_values),
        series=series,
        rows=rows,
        headers=headers,
        text=text,
        metadata={"dataset": dataset, "m": m, "num_trials": num_trials, "seed": seed},
    )


def ablation_combination(
    dataset: str = "youtube-sim",
    m: int = 8,
    c_values: Sequence[int] = (10, 12, 20, 28),
    num_trials: int = 20,
    seed: int = 12,
    max_edges: Optional[int] = 4000,
) -> ExperimentResult:
    """A2: Graybill–Deal combination vs its two ingredients (c mod m != 0)."""
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    truth = float(stats.num_triangles)
    headers = ["c", "NRMSE combined", "NRMSE complete-only", "NRMSE partial-only"]
    rows: List[List] = []
    series: Dict[str, Dict[str, List[float]]] = {
        dataset: {"combined": [], "complete_only": [], "partial_only": []}
    }
    for c in c_values:
        combined, complete_only, partial_only = [], [], []
        for trial in range(num_trials):
            config = ReptConfig(m=m, c=c, seed=derive_seed(seed, "A2", c, trial), track_local=False)
            estimate = ReptEstimator(config).run(edges)
            combined.append(estimate.global_count)
            complete_only.append(estimate.metadata.get("tau_hat_complete", estimate.global_count))
            partial_only.append(estimate.metadata.get("tau_hat_partial", estimate.global_count))
        rows.append(
            [
                c,
                normalized_rmse(combined, truth),
                normalized_rmse(complete_only, truth),
                normalized_rmse(partial_only, truth),
            ]
        )
        series[dataset]["combined"].append(rows[-1][1])
        series[dataset]["complete_only"].append(rows[-1][2])
        series[dataset]["partial_only"].append(rows[-1][3])
    text = format_table(
        headers, rows, title=f"Ablation A2: Graybill-Deal combination ({dataset}, m={m})"
    )
    return ExperimentResult(
        experiment_id="ablation_combination",
        description="Combined estimate vs complete-only / partial-only estimates",
        axis_name="c",
        axis_values=list(c_values),
        series=series,
        rows=rows,
        headers=headers,
        text=text,
        metadata={"dataset": dataset, "m": m, "num_trials": num_trials, "seed": seed},
    )


def ablation_hash_family(
    dataset: str = "web-google-sim",
    m: int = 10,
    c: int = 10,
    num_trials: int = 20,
    seed: int = 13,
    max_edges: Optional[int] = 4000,
) -> ExperimentResult:
    """A3: splitmix vs tabulation hashing — accuracy should be indistinguishable."""
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    truth = float(stats.num_triangles)
    headers = ["hash family", "NRMSE", "mean estimate"]
    rows: List[List] = []
    series: Dict[str, Dict[str, List[float]]] = {dataset: {}}
    for kind in ("splitmix", "tabulation"):
        estimates = []
        for trial in range(num_trials):
            config = ReptConfig(
                m=m, c=c, seed=derive_seed(seed, "A3", kind, trial),
                hash_kind=kind, track_local=False,
            )
            estimates.append(ReptEstimator(config).run(edges).global_count)
        nrmse = normalized_rmse(estimates, truth)
        rows.append([kind, nrmse, sum(estimates) / len(estimates)])
        series[dataset][kind] = [nrmse]
    text = format_table(
        headers, rows, title=f"Ablation A3: hash family comparison ({dataset}, m={m}, c={c})"
    )
    return ExperimentResult(
        experiment_id="ablation_hash_family",
        description="REPT accuracy under different edge-partition hash families",
        axis_name="hash",
        axis_values=["splitmix", "tabulation"],
        series=series,
        rows=rows,
        headers=headers,
        text=text,
        metadata={"dataset": dataset, "m": m, "c": c, "num_trials": num_trials, "seed": seed},
    )
