"""Execution-backend comparison artefact.

Not a figure of the paper, but the experiment that backs its deployment
story: the same :class:`~repro.core.config.ReptConfig` run through every
execution backend of :func:`repro.core.parallel.run_rept` must produce
bit-identical estimates, while wall-clock and per-task payload vary with
the scheduling strategy.  The comparison reports both, and is exposed on
the CLI as ``rept-experiment backends``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import ReptConfig
from repro.core.parallel import run_rept
from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult
from repro.generators.datasets import load_dataset
from repro.utils.tables import format_table
from repro.utils.timer import Timer

#: Backends compared by default, reference first.
DEFAULT_BACKENDS = ("serial", "thread", "process", "chunked-serial", "chunked-process")


def backend_comparison(
    dataset: str = "flickr-sim",
    backends: Sequence[str] = DEFAULT_BACKENDS,
    m: int = 8,
    c: int = 24,
    seed: int = 2024,
    max_edges: Optional[int] = None,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    elastic: bool = False,
    kernel: str = "auto",
) -> ExperimentResult:
    """Run one REPT configuration through every execution backend.

    Returns a table of wall-clock seconds, the estimate, and whether each
    backend's estimate is bit-identical to the first (reference) backend —
    which it must be; a mismatch raises :class:`ExperimentError` because it
    indicates a broken merge, not a tuning problem.  ``elastic=True`` adds
    the ``chunked-elastic`` shard-coordinator backend to the comparison
    (the CLI's ``--elastic``, typically with ``--workers N`` and a
    ``--chaos`` plan targeting the cluster fault sites).
    """
    if not backends:
        raise ExperimentError("at least one backend is required")
    if elastic and "chunked-elastic" not in backends:
        backends = tuple(backends) + ("chunked-elastic",)
    stream = load_dataset(dataset)
    if max_edges is not None and len(stream) > max_edges:
        stream = stream.prefix(max_edges)
    edges = stream.edges()
    config = ReptConfig(m=m, c=c, seed=seed, track_local=False, kernel=kernel)

    headers = [
        "backend", "seconds", "global estimate", "edges stored", "chunks",
        "faults", "identical",
    ]
    rows: List[List] = []
    reference = None
    timings = {}
    supervision_events = {}
    for backend in backends:
        with Timer() as timer:
            estimate = run_rept(
                edges,
                config,
                backend=backend,
                max_workers=max_workers,
                chunk_size=chunk_size,
            )
        if reference is None:
            reference = estimate
        identical = (
            estimate.global_count == reference.global_count
            and estimate.edges_stored == reference.edges_stored
        )
        if not identical:
            raise ExperimentError(
                f"backend {backend!r} diverged from {backends[0]!r}: "
                f"{estimate.global_count!r} != {reference.global_count!r}"
            )
        timings[backend] = timer.elapsed
        # Supervision counters (nonzero only under injected/real worker
        # failures, e.g. a --chaos run): the estimate must stay identical
        # anyway — that is the point of the recovery paths.
        retries = int(estimate.metadata.get("worker_retries", 0))
        restarts = int(estimate.metadata.get("pool_restarts", 0))
        degraded = estimate.metadata.get("degraded", 0.0) > 0
        deaths = int(estimate.metadata.get("worker_deaths", 0))
        migrations = int(estimate.metadata.get("shard_migrations", 0))
        supervision_events[backend] = {
            "worker_retries": retries,
            "pool_restarts": restarts,
            "degraded": degraded,
            "worker_deaths": deaths,
            "shard_migrations": migrations,
        }
        if deaths or migrations:
            faults = f"{deaths}d/{migrations}m" + ("/degraded" if degraded else "")
        elif retries or restarts or degraded:
            faults = f"{retries}r/{restarts}p" + ("/degraded" if degraded else "")
        else:
            faults = "-"
        rows.append(
            [
                backend,
                round(timer.elapsed, 3),
                estimate.global_count,
                estimate.edges_stored,
                int(estimate.metadata.get("num_chunks", 1)),
                faults,
                "yes",
            ]
        )

    text = format_table(
        headers,
        rows,
        title=f"Execution backends on {dataset} ({len(edges)} edges, {config.describe()})",
    )
    return ExperimentResult(
        experiment_id="backends",
        description="Same REPT configuration through every execution backend",
        rows=rows,
        headers=headers,
        text=text,
        metadata={
            "dataset": dataset,
            "m": m,
            "c": c,
            "seed": seed,
            "num_edges": len(edges),
            "timings": timings,
            "supervision": supervision_events,
        },
    )
