"""Load campaign specs from TOML or JSON files.

File layout (TOML shown; JSON uses the same structure)::

    [campaign]
    name = "smoke"
    description = "tiny CI campaign"
    workers = 2           # optional, default 1
    task_retries = 2      # optional, default 0 (fail fast)

    [defaults]            # optional, merged under every stage config
    max_edges = 1200
    num_trials = 2

    [stages.prep]
    kind = "dataset-stats"
    datasets = ["youtube-sim"]

    [stages.figure4]
    kind = "accuracy-figure"
    depends_on = ["prep"]
    c_values = [2, 8]

Every key of a stage table other than ``kind`` and ``depends_on`` is that
stage's configuration.  Stage declaration order is preserved (it fixes
report section order); execution order comes from ``depends_on``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Union

from repro.exceptions import ExperimentError
from repro.experiments.spec import CampaignSpec, StageSpec

PathLike = Union[str, Path]

_TOP_LEVEL_KEYS = ("campaign", "defaults", "stages")
_STAGE_RESERVED = ("kind", "depends_on")


def _parse_file(path: Path) -> Mapping:
    if path.suffix.lower() == ".toml":
        import tomllib

        with open(path, "rb") as handle:
            try:
                return tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise ExperimentError(f"{path} is not valid TOML: {exc}") from exc
    if path.suffix.lower() == ".json":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as exc:
                raise ExperimentError(f"{path} is not valid JSON: {exc}") from exc
    raise ExperimentError(
        f"unsupported campaign spec extension {path.suffix!r} (use .toml or .json)"
    )


def campaign_spec_from_mapping(data: Mapping, source: str = "<mapping>") -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from parsed file contents."""
    if not isinstance(data, Mapping):
        raise ExperimentError(f"{source}: campaign spec must be a table/object")
    unknown = sorted(set(data) - set(_TOP_LEVEL_KEYS))
    if unknown:
        raise ExperimentError(
            f"{source}: unknown top-level sections {unknown}; "
            f"expected {list(_TOP_LEVEL_KEYS)}"
        )
    header = data.get("campaign")
    if not isinstance(header, Mapping) or "name" not in header:
        raise ExperimentError(f"{source}: missing [campaign] section with a name")
    stages_table = data.get("stages")
    if not isinstance(stages_table, Mapping) or not stages_table:
        raise ExperimentError(f"{source}: missing [stages.*] sections")

    stages = []
    for name, body in stages_table.items():
        if not isinstance(body, Mapping):
            raise ExperimentError(f"{source}: stage {name!r} must be a table/object")
        if "kind" not in body:
            raise ExperimentError(f"{source}: stage {name!r} declares no kind")
        depends_on = body.get("depends_on", ())
        if isinstance(depends_on, str) or not isinstance(depends_on, (list, tuple)):
            raise ExperimentError(
                f"{source}: stage {name!r} depends_on must be a list of stage names"
            )
        config = {
            key: value for key, value in body.items() if key not in _STAGE_RESERVED
        }
        stages.append(
            StageSpec(
                name=str(name),
                kind=str(body["kind"]),
                config=config,
                depends_on=tuple(str(dep) for dep in depends_on),
            )
        )

    workers = header.get("workers", 1)
    if not isinstance(workers, int):
        raise ExperimentError(f"{source}: campaign workers must be an integer")
    task_retries = header.get("task_retries", 0)
    if not isinstance(task_retries, int):
        raise ExperimentError(f"{source}: campaign task_retries must be an integer")
    return CampaignSpec(
        name=str(header["name"]),
        description=str(header.get("description", "")),
        stages=tuple(stages),
        defaults=dict(data.get("defaults", {})),
        workers=workers,
        task_retries=task_retries,
    )


def load_campaign_spec(path: PathLike) -> CampaignSpec:
    """Parse and validate the campaign spec file at ``path``."""
    path = Path(path)
    if not path.is_file():
        raise ExperimentError(f"campaign spec {path} does not exist")
    return campaign_spec_from_mapping(_parse_file(path), source=str(path))
