"""Planner: expand a validated :class:`CampaignSpec` into a task graph.

Each stage expands according to its kind:

* ``dataset-stats`` fans out into one task per dataset
  (``<stage>/<dataset>``);
* ``accuracy-figure`` fans out into one ``accuracy-cell`` task per
  (dataset, c) pair (``<stage>/<dataset>/c<c>``) plus one aggregation task
  named after the stage — the cells are the cache/parallelism unit;
* ``artefact`` and ``report`` stay single tasks.

Dependency wiring follows the data: a figure's cells depend on *their*
dataset's ``dataset-stats`` task (so changing one dataset's preparation
invalidates only that dataset's cells), while any other upstream stage
attaches to the stage's terminal task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.registry import artefact_names
from repro.experiments.spec import CampaignSpec, StageSpec
from repro.experiments.stages import resolve_datasets


@dataclass(frozen=True)
class Task:
    """One node of the planned graph (still unexecuted, unfingerprinted)."""

    task_id: str
    stage: str
    kind: str
    config: Mapping[str, object]
    deps: Tuple[str, ...] = ()


@dataclass
class TaskGraph:
    """The planned campaign: tasks in topological (insertion) order."""

    campaign: str
    tasks: Dict[str, Task] = field(default_factory=dict)
    #: stage name -> the task ids downstream stages should consume.
    terminals: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, task: Task) -> None:
        if task.task_id in self.tasks:
            raise ExperimentError(f"duplicate task id {task.task_id!r}")
        for dep in task.deps:
            if dep not in self.tasks:
                raise ExperimentError(
                    f"task {task.task_id!r} depends on unplanned task {dep!r}"
                )
        self.tasks[task.task_id] = task

    def topological_ids(self) -> List[str]:
        """Task ids with every dependency preceding its dependents."""
        return list(self.tasks)


def _topological_stages(spec: CampaignSpec) -> List[StageSpec]:
    """Stages sorted so dependencies come first (declaration-order stable)."""
    remaining = list(spec.stages)
    done: List[StageSpec] = []
    done_names: set = set()
    while remaining:
        progressed = False
        still: List[StageSpec] = []
        for stage in remaining:
            if all(dep in done_names for dep in stage.depends_on):
                done.append(stage)
                done_names.add(stage.name)
                progressed = True
            else:
                still.append(stage)
        if not progressed:
            cycle = ", ".join(stage.name for stage in still)
            raise ExperimentError(f"campaign {spec.name!r} has a dependency cycle: {cycle}")
        remaining = still
    return done


def _merged_config(spec: CampaignSpec, stage: StageSpec) -> Dict[str, object]:
    return {**dict(spec.defaults), **dict(stage.config)}


def _check_keys(stage: StageSpec, accepted: Sequence[str]) -> None:
    unknown = sorted(set(stage.config) - set(accepted))
    if unknown:
        raise ExperimentError(
            f"stage {stage.name!r} ({stage.kind}) has unknown config keys {unknown}; "
            f"accepted: {sorted(accepted)}"
        )


def _dep_terminals(graph: TaskGraph, stage: StageSpec) -> List[str]:
    terminals: List[str] = []
    for dep in stage.depends_on:
        terminals.extend(graph.terminals[dep])
    return terminals


def _plan_dataset_stats(spec: CampaignSpec, stage: StageSpec, graph: TaskGraph) -> None:
    _check_keys(stage, ("datasets", "max_edges"))
    merged = _merged_config(spec, stage)
    datasets = resolve_datasets(merged.get("datasets"))
    deps = tuple(_dep_terminals(graph, stage))
    terminal_ids: List[str] = []
    for dataset in datasets:
        task_id = f"{stage.name}/{dataset}"
        graph.add(
            Task(
                task_id=task_id,
                stage=stage.name,
                kind="dataset-stats",
                config={"dataset": dataset, "max_edges": merged.get("max_edges")},
                deps=deps,
            )
        )
        terminal_ids.append(task_id)
    graph.terminals[stage.name] = terminal_ids


def _plan_accuracy_figure(spec: CampaignSpec, stage: StageSpec, graph: TaskGraph) -> None:
    from repro.experiments.figures import ACCURACY_FIGURES

    _check_keys(
        stage,
        (
            "figure", "datasets", "c_values", "num_trials",
            "seed", "max_edges", "methods", "rept_backend",
        ),
    )
    merged = _merged_config(spec, stage)
    figure = merged.get("figure", stage.name)
    if figure not in ACCURACY_FIGURES:
        raise ExperimentError(
            f"stage {stage.name!r}: {figure!r} is not an accuracy figure; "
            f"known: {sorted(ACCURACY_FIGURES)}"
        )
    sweep = ACCURACY_FIGURES[figure]
    datasets = resolve_datasets(merged.get("datasets"))
    c_values = [int(c) for c in merged.get("c_values", sweep.c_values)]
    num_trials = int(merged.get("num_trials", sweep.default_trials))
    seed = int(merged.get("seed", sweep.default_seed))
    max_edges = merged.get("max_edges")
    methods = list(merged.get("methods", sweep.methods))
    rept_backend = merged.get("rept_backend")

    # Per-dataset anchoring: cells depend on their dataset's prep task when
    # a dataset-stats stage is upstream; every other upstream attaches to
    # the aggregate.
    dataset_dep_stages = [
        spec.stage(dep) for dep in stage.depends_on
        if spec.stage(dep).kind == "dataset-stats"
    ]
    other_terminals = [
        tid for dep in stage.depends_on
        if spec.stage(dep).kind != "dataset-stats"
        for tid in graph.terminals[dep]
    ]

    cell_ids: Dict[str, List[str]] = {}
    for dataset in datasets:
        per_dataset_deps: List[str] = []
        for dep_stage in dataset_dep_stages:
            dep_id = f"{dep_stage.name}/{dataset}"
            if dep_id not in graph.tasks:
                raise ExperimentError(
                    f"stage {stage.name!r} sweeps dataset {dataset!r} but upstream "
                    f"stage {dep_stage.name!r} does not prepare it"
                )
            per_dataset_deps.append(dep_id)
        ids: List[str] = []
        for c in c_values:
            task_id = f"{stage.name}/{dataset}/c{c}"
            graph.add(
                Task(
                    task_id=task_id,
                    stage=stage.name,
                    kind="accuracy-cell",
                    config={
                        "figure": figure,
                        "dataset": dataset,
                        "c": c,
                        "p": sweep.p,
                        "local": sweep.local,
                        "methods": methods,
                        "num_trials": num_trials,
                        "seed": seed,
                        "max_edges": max_edges,
                        "rept_backend": rept_backend,
                    },
                    deps=tuple(per_dataset_deps),
                )
            )
            ids.append(task_id)
        cell_ids[dataset] = ids

    aggregate_deps = [tid for ids in cell_ids.values() for tid in ids] + other_terminals
    graph.add(
        Task(
            task_id=stage.name,
            stage=stage.name,
            kind="accuracy-figure",
            config={
                "figure": figure,
                "datasets": datasets,
                "c_values": c_values,
                "num_trials": num_trials,
                "seed": seed,
                "max_edges": max_edges,
                "methods": methods,
                "rept_backend": rept_backend,
                "cells": cell_ids,
            },
            deps=tuple(aggregate_deps),
        )
    )
    graph.terminals[stage.name] = [stage.name]


def _plan_artefact(spec: CampaignSpec, stage: StageSpec, graph: TaskGraph) -> None:
    _check_keys(stage, ("artefact", "params"))
    merged = _merged_config(spec, stage)
    name = merged.get("artefact", stage.name)
    if name not in artefact_names():
        raise ExperimentError(
            f"stage {stage.name!r}: unknown artefact {name!r}; "
            f"known: {', '.join(artefact_names())}"
        )
    params = dict(merged.get("params", {}))
    graph.add(
        Task(
            task_id=stage.name,
            stage=stage.name,
            kind="artefact",
            config={"artefact": name, "params": params},
            deps=tuple(_dep_terminals(graph, stage)),
        )
    )
    graph.terminals[stage.name] = [stage.name]


def _plan_report(spec: CampaignSpec, stage: StageSpec, graph: TaskGraph) -> None:
    _check_keys(stage, ("title",))
    merged = _merged_config(spec, stage)
    sections = _dep_terminals(graph, stage)
    graph.add(
        Task(
            task_id=stage.name,
            stage=stage.name,
            kind="report",
            config={
                "title": merged.get("title", f"Campaign {spec.name}"),
                "sections": sections,
            },
            deps=tuple(sections),
        )
    )
    graph.terminals[stage.name] = [stage.name]


_STAGE_PLANNERS = {
    "dataset-stats": _plan_dataset_stats,
    "accuracy-figure": _plan_accuracy_figure,
    "artefact": _plan_artefact,
    "report": _plan_report,
}


def plan_campaign(spec: CampaignSpec) -> TaskGraph:
    """Expand ``spec`` into a :class:`TaskGraph`; raises on invalid specs."""
    graph = TaskGraph(campaign=spec.name)
    for stage in _topological_stages(spec):
        try:
            planner = _STAGE_PLANNERS[stage.kind]
        except KeyError as exc:
            raise ExperimentError(
                f"stage {stage.name!r} uses unknown kind {stage.kind!r}; "
                f"known: {sorted(_STAGE_PLANNERS)}"
            ) from exc
        planner(spec, stage, graph)
    return graph
