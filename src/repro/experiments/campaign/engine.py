"""The campaign engine: fingerprint, cache, execute, resume.

Execution model:

1. the planner expands the spec into a task graph;
2. every task's fingerprint is computed *up front* (fingerprints depend on
   configs and upstream fingerprints, never on payloads), so cache hits and
   misses are known before anything runs — ``--explain``/``--dry-run`` are
   free;
3. tasks whose fingerprint is already in the store are loaded, not re-run;
   everything else executes — serially or fanned across worker processes —
   and is written to the store atomically on completion.

Because completed tasks persist individually, a campaign killed at any
point resumes from exactly the last completed task: the next run sees
their fingerprints in the store and recomputes only what is missing.
Worker-pool execution is bit-identical to serial execution: every task's
randomness is derived from its config, never from scheduling order.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.durability.retry import RetryPolicy
from repro.exceptions import ExperimentError
from repro.experiments.campaign.fingerprint import CODE_TAG, task_fingerprint
from repro.experiments.campaign.kinds import get_task_kind
from repro.experiments.campaign.planner import Task, TaskGraph, plan_campaign
from repro.experiments.results import ResultStore, _atomic_write_json, encode_value
from repro.experiments.spec import CampaignSpec
from repro.testing.faults import maybe_fail
from repro.utils.tables import format_table

PathLike = Union[str, Path]

#: Task statuses reported by :class:`CampaignReport`.
STATUS_CACHED = "cached"
STATUS_COMPUTED = "computed"
STATUS_STALE = "stale"  # dry-run only: would be computed


@dataclass(frozen=True)
class TaskReport:
    """Outcome of one task in a campaign run."""

    task_id: str
    stage: str
    kind: str
    fingerprint: str
    status: str
    seconds: float = 0.0


@dataclass
class CampaignReport:
    """Summary of one campaign run (what ``--explain`` renders)."""

    campaign: str
    store_root: str
    tasks: List[TaskReport] = field(default_factory=list)
    dry_run: bool = False
    out_dir: Optional[str] = None

    @property
    def num_cached(self) -> int:
        return sum(1 for task in self.tasks if task.status == STATUS_CACHED)

    @property
    def num_computed(self) -> int:
        return sum(1 for task in self.tasks if task.status != STATUS_CACHED)

    def explain_text(self) -> str:
        """Per-task cache hit/miss table plus a one-line summary."""
        rows = [
            [
                task.task_id,
                task.kind,
                task.status,
                round(task.seconds, 3) if task.status == STATUS_COMPUTED else "",
                task.fingerprint[:12],
            ]
            for task in self.tasks
        ]
        verb = "would compute" if self.dry_run else "computed"
        title = (
            f"campaign {self.campaign}: {len(self.tasks)} tasks, "
            f"{self.num_cached} cached, {self.num_computed} {verb}"
        )
        return format_table(
            ["task", "kind", "status", "seconds", "fingerprint"], rows, title=title
        )

    def summary_line(self) -> str:
        verb = "would compute" if self.dry_run else "computed"
        return (
            f"campaign {self.campaign}: {len(self.tasks)} tasks "
            f"({self.num_cached} cached, {self.num_computed} {verb})"
        )


def _execute_task(kind_name: str, config: Mapping, inputs: Mapping):
    """Run one task (possibly inside a worker process)."""
    kind = get_task_kind(kind_name)
    start = time.perf_counter()
    payload = kind.fn(config, inputs)
    return payload, time.perf_counter() - start


def _supervised_execute(kind_name: str, config: Mapping, inputs: Mapping, task_id: str):
    """Fault-injection shim around :func:`_execute_task`.

    The ``campaign-task`` site (keyed by task id) lets the chaos suite make
    a specific task raise, hang, or kill its worker; the plan travels via
    environment variable, so it reaches pool workers too.
    """
    maybe_fail("campaign-task", task=task_id)
    return _execute_task(kind_name, config, inputs)


class _Run:
    """State of one campaign execution."""

    def __init__(
        self,
        graph: TaskGraph,
        store: ResultStore,
        use_cache: bool,
        task_retries: int = 0,
    ) -> None:
        self.graph = graph
        self.store = store
        self.order = graph.topological_ids()
        self.fingerprints: Dict[str, str] = {}
        for task_id in self.order:
            task = graph.tasks[task_id]
            kind = get_task_kind(task.kind)
            upstream = {dep: self.fingerprints[dep] for dep in task.deps}
            self.fingerprints[task_id] = task_fingerprint(
                task.kind, kind.version, task.config, upstream
            )
        # verify (not just has): a torn or bit-rotted record is quarantined
        # as *.corrupt here, so it counts as a miss and recomputes instead
        # of failing at load time deep into the run.
        self.cached = {
            task_id
            for task_id in self.order
            if use_cache and store.verify(self.fingerprints[task_id])
        }
        self.task_retries = task_retries
        self.payloads: Dict[str, object] = {}
        self.seconds: Dict[str, float] = {}

    def _retry_delays(self, task_id: str) -> List[float]:
        """Deterministic per-task backoff delays (empty = fail fast)."""
        if self.task_retries <= 0:
            return []
        policy = RetryPolicy(
            max_attempts=self.task_retries + 1,
            base_delay=0.05,
            seed=zlib.crc32(task_id.encode("utf-8")),
        )
        return policy.delays()

    def payload_of(self, task_id: str):
        """Payload of a completed task, loading cached records on demand."""
        if task_id not in self.payloads:
            self.payloads[task_id] = self.store.load(self.fingerprints[task_id])
        return self.payloads[task_id]

    def inputs_for(self, task: Task) -> Dict[str, object]:
        return {dep: self.payload_of(dep) for dep in task.deps}

    def complete(self, task: Task, payload, seconds: float) -> None:
        self.store.save(
            self.fingerprints[task.task_id], task.task_id, task.kind, payload
        )
        self.payloads[task.task_id] = payload
        self.seconds[task.task_id] = seconds

    def run_serial(self) -> None:
        for task_id in self.order:
            if task_id in self.cached:
                continue
            task = self.graph.tasks[task_id]
            delays = self._retry_delays(task_id)
            for attempt in range(len(delays) + 1):
                try:
                    payload, seconds = _supervised_execute(
                        task.kind, task.config, self.inputs_for(task), task_id
                    )
                    break
                except ExperimentError:
                    # Deterministic failure (bad config, broken spec):
                    # retrying replays the same error, so don't.
                    raise
                except Exception as exc:
                    if attempt < len(delays):
                        time.sleep(delays[attempt])
                        continue
                    raise ExperimentError(f"task {task_id!r} failed: {exc}") from exc
            self.complete(task, payload, seconds)

    def run_parallel(self, workers: int) -> None:
        pending = [tid for tid in self.order if tid not in self.cached]
        if not pending:
            return
        pending_set = set(pending)
        blockers = {
            tid: {dep for dep in self.graph.tasks[tid].deps if dep in pending_set}
            for tid in pending
        }
        dependents: Dict[str, List[str]] = {}
        for tid in pending:
            for dep in blockers[tid]:
                dependents.setdefault(dep, []).append(tid)
        ready = [tid for tid in pending if not blockers[tid]]
        attempts: Dict[str, int] = {}
        first_error: Optional[BaseException] = None
        failed_task: Optional[str] = None

        def record_failure(task_id: str, exc: BaseException) -> None:
            """Consume a retry attempt for ``task_id`` or record the error."""
            nonlocal first_error, failed_task
            delays = self._retry_delays(task_id)
            used = attempts.get(task_id, 0)
            if (
                first_error is None
                and used < len(delays)
                and not isinstance(exc, KeyboardInterrupt)
            ):
                attempts[task_id] = used + 1
                time.sleep(delays[used])
                ready.append(task_id)
                return
            if first_error is None:
                first_error, failed_task = exc, task_id

        def settle(future, task_id: str) -> bool:
            """Fold one finished future into the run; True if the pool died.

            Broken pools charge a retry attempt to every poisoned task (the
            culprit is unknowable) and signal the caller to rebuild the
            pool.  Other failures are retried or recorded — the caller
            keeps draining in-flight tasks either way, so completed results
            are persisted and the failed campaign stays resumable from the
            last *completed* task.
            """
            try:
                payload, seconds = future.result()
            except ExperimentError as exc:
                # Deterministic failure — never retried.
                nonlocal first_error, failed_task
                if first_error is None:
                    first_error, failed_task = exc, task_id
                return False
            except BrokenProcessPool as exc:
                record_failure(task_id, exc)
                return True
            except BaseException as exc:
                record_failure(task_id, exc)
                return False
            self.complete(self.graph.tasks[task_id], payload, seconds)
            for dependent in dependents.get(task_id, ()):
                blockers[dependent].discard(task_id)
                if not blockers[dependent]:
                    ready.append(dependent)
            return False

        while True:
            pool_broken = False
            in_flight: Dict[object, str] = {}
            with ProcessPoolExecutor(max_workers=workers) as pool:
                while (ready or in_flight) and not pool_broken:
                    while ready and first_error is None:
                        task_id = ready.pop(0)
                        task = self.graph.tasks[task_id]
                        try:
                            future = pool.submit(
                                _supervised_execute,
                                task.kind,
                                task.config,
                                self.inputs_for(task),
                                task_id,
                            )
                        except Exception:  # the pool itself died
                            ready.insert(0, task_id)
                            pool_broken = True
                            break
                        in_flight[future] = task_id
                    if not in_flight:
                        break
                    done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                    for future in done:
                        if settle(future, in_flight.pop(future)):
                            pool_broken = True
                if pool_broken and in_flight:
                    # A dead pool poisons every in-flight future; drain them
                    # all so each gets its retry accounting.
                    done, _ = wait(in_flight)
                    for future in done:
                        settle(future, in_flight.pop(future))
            if pool_broken and first_error is None and ready:
                continue  # rebuild the pool and resubmit the survivors
            break
        if first_error is not None:
            raise ExperimentError(
                f"task {failed_task!r} failed: {first_error}"
            ) from first_error


def run_campaign(
    spec: CampaignSpec,
    store: Union[ResultStore, PathLike],
    out_dir: Optional[PathLike] = None,
    resume: bool = True,
    force: bool = False,
    workers: Optional[int] = None,
    dry_run: bool = False,
) -> CampaignReport:
    """Execute (or, with ``dry_run``, just plan) one campaign.

    Parameters
    ----------
    spec:
        The validated campaign.
    store:
        A :class:`~repro.experiments.results.ResultStore` or its root path.
    out_dir:
        When given, terminal stage outputs are materialised there
        (``<stage>.json`` + ``<stage>.txt``) along with ``manifest.json``
        recording every task's fingerprint and status.
    resume:
        Reuse cached records (default).  ``resume=False`` ignores the cache
        entirely — every task recomputes and overwrites its record.
    force:
        Same effect as ``resume=False``; matches the CLI ``--force`` flag.
    workers:
        Worker processes for task fan-out; defaults to the spec's
        ``workers``.  Results are bit-identical to serial execution.
    dry_run:
        Plan and fingerprint only; report which tasks *would* run.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    graph = plan_campaign(spec)
    use_cache = resume and not force
    run = _Run(graph, store, use_cache, task_retries=spec.task_retries)

    if not dry_run:
        effective_workers = spec.workers if workers is None else workers
        if effective_workers < 1:
            raise ExperimentError("workers must be >= 1")
        if effective_workers == 1:
            run.run_serial()
        else:
            run.run_parallel(effective_workers)

    reports: List[TaskReport] = []
    for task_id in run.order:
        task = graph.tasks[task_id]
        if task_id in run.cached:
            status = STATUS_CACHED
        elif dry_run:
            status = STATUS_STALE
        else:
            status = STATUS_COMPUTED
        reports.append(
            TaskReport(
                task_id=task_id,
                stage=task.stage,
                kind=task.kind,
                fingerprint=run.fingerprints[task_id],
                status=status,
                seconds=run.seconds.get(task_id, 0.0),
            )
        )
    report = CampaignReport(
        campaign=spec.name,
        store_root=str(store.root),
        tasks=reports,
        dry_run=dry_run,
        out_dir=str(out_dir) if out_dir is not None else None,
    )

    if out_dir is not None and not dry_run:
        _materialise_outputs(spec, graph, run, report, Path(out_dir))
    return report


def _materialise_outputs(
    spec: CampaignSpec,
    graph: TaskGraph,
    run: _Run,
    report: CampaignReport,
    out_dir: Path,
) -> None:
    """Write terminal payloads and the run manifest under ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    for stage_name in spec.stage_names():
        for task_id in graph.terminals.get(stage_name, ()):
            payload = run.payload_of(task_id)
            base = task_id.replace("/", "__")
            _atomic_write_json(
                {
                    "campaign": spec.name,
                    "task_id": task_id,
                    "fingerprint": run.fingerprints[task_id],
                    "payload": encode_value(payload),
                },
                out_dir / f"{base}.json",
            )
            if isinstance(payload, Mapping) and payload.get("text"):
                text_path = out_dir / f"{base}.txt"
                text_path.write_text(str(payload["text"]) + "\n", encoding="utf-8")
    manifest = {
        "campaign": spec.name,
        "code_tag": CODE_TAG,
        "store_root": report.store_root,
        "tasks": [
            {
                "task_id": task.task_id,
                "stage": task.stage,
                "kind": task.kind,
                "fingerprint": task.fingerprint,
                "status": task.status,
                "seconds": task.seconds,
            }
            for task in report.tasks
        ],
    }
    _atomic_write_json(manifest, out_dir / "manifest.json")
