"""Deterministic task fingerprints for the campaign engine.

A task's fingerprint digests everything that can change its output:

* the task kind and the kind's implementation version;
* the fully resolved task configuration (canonical JSON, key order
  irrelevant, list order significant);
* the fingerprints of every upstream task it consumes — so invalidation
  propagates through exactly the downstream cone of a change;
* a code tag combining the library version with the campaign format
  version, so releases that may change numerics never reuse stale caches.

Fingerprints deliberately depend on *no* runtime state (hostname, time,
process ids): the same spec on the same code always maps to the same
fingerprints, which is what makes the content-addressed store shareable
between serial runs, worker pools and CI jobs.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

import repro
from repro.experiments.results import canonical_json

#: Bump the suffix when the campaign/task-graph semantics change in a way
#: that should invalidate every cached record.
CODE_TAG = f"repro-{repro.__version__}/campaign-v2"


def task_fingerprint(
    kind: str,
    kind_version: int,
    config: Mapping[str, object],
    upstream: Mapping[str, str],
) -> str:
    """Return the hex fingerprint of one task.

    ``upstream`` maps dependency task ids to *their* fingerprints; key
    order never matters (the document is key-sorted before hashing).
    """
    document = {
        "code": CODE_TAG,
        "kind": kind,
        "kind_version": kind_version,
        "config": dict(config),
        "upstream": dict(upstream),
    }
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()
