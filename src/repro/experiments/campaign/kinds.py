"""Task kinds: the pure functions a campaign DAG is built from.

A :class:`TaskKind` is ``(name, version, fn)`` where ``fn(config, inputs)``
maps a resolved configuration plus upstream payloads (keyed by dependency
task id) to a JSON-encodable payload.  Kinds must be *pure*: same config +
same inputs → same payload, with no hidden state — the content-addressed
cache depends on it.  Bump a kind's ``version`` whenever its implementation
changes in a way that can alter payloads; that invalidates exactly the
cached records of that kind (and their downstream cones).

Built-in kinds:

``dataset-stats``
    Prepare one dataset and record its exact statistics; the anchor task
    every sweep cell hangs off.
``accuracy-cell``
    One (figure, dataset, c) cell of an accuracy figure: method → NRMSE.
``accuracy-figure``
    Aggregate a figure's cells into the full
    :class:`~repro.experiments.spec.ExperimentResult` payload — identical
    to calling the figure function directly.
``artefact``
    Run any registered paper artefact (``table2``, ``figure7``,
    ``ablation-hash``, ...) with explicit parameters.
``report``
    Concatenate the text renderings of upstream stages into one campaign
    report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

from repro.exceptions import ExperimentError
from repro.experiments import stages
from repro.experiments.registry import get_artefact
from repro.experiments.results import encode_result


@dataclass(frozen=True)
class TaskKind:
    """One registered task kind.

    Attributes
    ----------
    name:
        Kind identifier used in specs and fingerprints.
    version:
        Implementation version; participates in every fingerprint of this
        kind, so bumping it invalidates the kind's cached records.
    fn:
        ``(config, inputs) -> payload``.  ``inputs`` maps dependency task
        ids to their payloads; the payload must be JSON-encodable.
    """

    name: str
    version: int
    fn: Callable[[Mapping[str, object], Mapping[str, object]], object]


_KINDS: Dict[str, TaskKind] = {}


def register_task_kind(name: str, version: int, fn) -> TaskKind:
    """Register a task kind; raises on duplicate names."""
    if name in _KINDS:
        raise ExperimentError(f"task kind {name!r} is already registered")
    kind = TaskKind(name=name, version=version, fn=fn)
    _KINDS[name] = kind
    return kind


def get_task_kind(name: str) -> TaskKind:
    """Resolve a kind name; raises :class:`ExperimentError` when unknown."""
    try:
        return _KINDS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown task kind {name!r}; known: {', '.join(sorted(_KINDS))}"
        ) from exc


def task_kind_names() -> List[str]:
    """Return every registered kind name, sorted."""
    return sorted(_KINDS)


# ---------------------------------------------------------------------------
# Built-in kinds
# ---------------------------------------------------------------------------

def _dataset_stats(config: Mapping[str, object], inputs: Mapping[str, object]):
    return stages.dataset_statistics(
        str(config["dataset"]), max_edges=config.get("max_edges")
    )


def _accuracy_cell(config: Mapping[str, object], inputs: Mapping[str, object]):
    return stages.accuracy_cell(
        experiment_id=str(config["figure"]),
        dataset=str(config["dataset"]),
        c=int(config["c"]),
        p=float(config["p"]),
        methods=list(config["methods"]),
        num_trials=int(config["num_trials"]),
        seed=int(config["seed"]),
        local=bool(config["local"]),
        max_edges=config.get("max_edges"),
        rept_backend=config.get("rept_backend"),
    )


def _accuracy_figure(config: Mapping[str, object], inputs: Mapping[str, object]):
    from repro.experiments.figures import ACCURACY_FIGURES

    figure = str(config["figure"])
    sweep = ACCURACY_FIGURES[figure]
    datasets = list(config["datasets"])
    c_values = [int(c) for c in config["c_values"]]
    cell_ids = config["cells"]
    cells: Dict[str, Dict[int, Dict[str, float]]] = {}
    for dataset in datasets:
        per_c: Dict[int, Dict[str, float]] = {}
        for c, task_id in zip(c_values, cell_ids[dataset]):
            try:
                per_c[c] = inputs[task_id]
            except KeyError as exc:
                raise ExperimentError(
                    f"{figure} aggregation is missing cell input {task_id!r}"
                ) from exc
        cells[dataset] = per_c
    result = stages.assemble_accuracy_result(
        sweep,
        datasets,
        c_values,
        cells,
        num_trials=int(config["num_trials"]),
        seed=int(config["seed"]),
        max_edges=config.get("max_edges"),
        methods=list(config["methods"]),
        rept_backend=config.get("rept_backend"),
    )
    return encode_result(result)


def _artefact(config: Mapping[str, object], inputs: Mapping[str, object]):
    name = str(config["artefact"])
    params = dict(config.get("params", {}))
    result = get_artefact(name)(**params)
    return encode_result(result)


def _report(config: Mapping[str, object], inputs: Mapping[str, object]):
    title = str(config.get("title", "Campaign report"))
    sections = list(config["sections"])
    blocks: List[str] = [f"# {title}"]
    for task_id in sections:
        payload = inputs.get(task_id)
        if isinstance(payload, Mapping) and payload.get("text"):
            blocks.append(f"## {task_id}\n\n{payload['text']}")
    return {"title": title, "text": "\n\n".join(blocks)}


register_task_kind("dataset-stats", 1, _dataset_stats)
register_task_kind("accuracy-cell", 1, _accuracy_cell)
register_task_kind("accuracy-figure", 1, _accuracy_figure)
register_task_kind("artefact", 1, _artefact)
register_task_kind("report", 1, _report)
