"""Declarative, resumable experiment campaigns.

A campaign spec (TOML/JSON) declares stages — dataset prep, trial sweeps,
aggregation, figure/table rendering — that the planner expands into a DAG
of pure tasks.  Each task is keyed by a deterministic fingerprint of
(kind, resolved config, upstream fingerprints, code version); a
content-addressed store caches every output, so re-running a campaign
recomputes only tasks whose fingerprints changed, and a killed campaign
resumes from the last completed task.

Typical use::

    from repro.experiments.campaign import load_campaign_spec, run_campaign

    spec = load_campaign_spec("campaigns/paper_full.toml")
    report = run_campaign(spec, store="campaign-out/paper-full/store",
                          out_dir="campaign-out/paper-full/artefacts")
    print(report.explain_text())

or from the shell: ``rept-experiment campaign --spec campaigns/paper_full.toml``.
"""

from repro.experiments.campaign.engine import (
    CampaignReport,
    TaskReport,
    run_campaign,
)
from repro.experiments.campaign.fingerprint import CODE_TAG, task_fingerprint
from repro.experiments.campaign.kinds import (
    TaskKind,
    get_task_kind,
    register_task_kind,
    task_kind_names,
)
from repro.experiments.campaign.loader import (
    campaign_spec_from_mapping,
    load_campaign_spec,
)
from repro.experiments.campaign.planner import Task, TaskGraph, plan_campaign

__all__ = [
    "CODE_TAG",
    "CampaignReport",
    "Task",
    "TaskGraph",
    "TaskKind",
    "TaskReport",
    "campaign_spec_from_mapping",
    "get_task_kind",
    "load_campaign_spec",
    "plan_campaign",
    "register_task_kind",
    "run_campaign",
    "task_fingerprint",
    "task_kind_names",
]
