"""Table-style artefacts of the paper (Table II)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.spec import ExperimentResult
from repro.experiments.stages import prepare_stream, resolve_datasets
from repro.generators.datasets import dataset_spec, paper_dataset_table
from repro.graph.statistics import compute_statistics
from repro.utils.tables import format_table


def table2(
    datasets: Optional[Sequence[str]] = None,
    max_edges: Optional[int] = None,
    include_paper_values: bool = True,
) -> ExperimentResult:
    """Reproduce Table II: per-dataset node, edge and triangle counts.

    For each registered synthetic analogue the table reports its exact
    statistics next to the original dataset sizes from the paper, making
    the scale substitution explicit.
    """
    names = resolve_datasets(datasets)
    headers = [
        "dataset",
        "nodes",
        "edges",
        "triangles",
        "eta",
        "paper dataset",
        "paper nodes",
        "paper edges",
        "paper triangles",
    ]
    rows: List[List] = []
    for name in names:
        spec = dataset_spec(name)
        stream = prepare_stream(name, max_edges)
        stats = compute_statistics(stream.edges(), name=name)
        rows.append(
            [
                name,
                stats.num_nodes,
                stats.num_edges,
                stats.num_triangles,
                stats.eta,
                spec.paper_name,
                spec.paper_nodes if include_paper_values else "-",
                spec.paper_edges if include_paper_values else "-",
                spec.paper_triangles if include_paper_values else "-",
            ]
        )
    text = format_table(headers, rows, title="Table II: dataset statistics (synthetic analogues)")
    return ExperimentResult(
        experiment_id="table2",
        description="Dataset statistics of the synthetic analogues vs the paper's originals",
        rows=rows,
        headers=headers,
        text=text,
        metadata={"datasets": names, "paper_table": paper_dataset_table()},
    )
