"""Shared stage primitives behind every figure, table and campaign task.

Before the campaign refactor each figure function carried its own copy of
the dataset-loading / sweep-driving scaffolding.  This module is the single
home of those primitives:

* :func:`prepare_stream` / :func:`resolve_datasets` — dataset prep;
* :class:`AccuracySweepDef` — the *declarative* description of an accuracy
  figure (Figures 3–6 are four instances of it, see
  :data:`repro.experiments.figures.ACCURACY_FIGURES`);
* :func:`accuracy_cell` — one (figure, dataset, c) cell: the unit of work
  the campaign engine caches and fans out across workers;
* :func:`accuracy_sweep` — a full sweep assembled from cells, returning the
  same :class:`~repro.experiments.spec.ExperimentResult` the pre-campaign
  figure functions produced (bit-identical text and series).

Determinism contract: a cell's randomness is fully determined by
``derive_seed(seed, experiment_id, dataset, c)``, so the same cell computed
serially, in a worker process, or in a different campaign always yields the
same numbers.  That is what makes content-addressed caching sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import (
    default_method_specs,
    run_global_trials,
    run_local_trials,
)
from repro.experiments.spec import ExperimentResult
from repro.generators.datasets import available_datasets, load_dataset
from repro.graph.statistics import compute_statistics
from repro.utils.rng import derive_seed
from repro.utils.tables import format_series


def prepare_stream(dataset: str, max_edges: Optional[int] = None):
    """Load a registered dataset, optionally truncated to ``max_edges``."""
    stream = load_dataset(dataset)
    if max_edges is not None and len(stream) > max_edges:
        stream = stream.prefix(max_edges)
    return stream


def resolve_datasets(datasets: Optional[Sequence[str]]) -> List[str]:
    """Default to every registered dataset, in Table II order."""
    return list(datasets) if datasets else available_datasets()


def dataset_statistics(dataset: str, max_edges: Optional[int] = None) -> Dict[str, float]:
    """Exact global statistics of one (possibly truncated) dataset.

    The campaign ``dataset-stats`` task kind wraps this: its payload is the
    identity card of the prepared stream, and its fingerprint is what ties
    every downstream sweep cell to the dataset configuration.
    """
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    return {
        "dataset": dataset,
        "num_nodes": int(stats.num_nodes),
        "num_edges": int(stats.num_edges),
        "num_triangles": int(stats.num_triangles),
        "eta": int(stats.eta),
    }


@dataclass(frozen=True)
class AccuracySweepDef:
    """Declarative description of one accuracy figure (NRMSE vs ``c``).

    Figures 3–6 of the paper differ only in these fields; everything that
    *runs* lives in :func:`accuracy_cell` / :func:`accuracy_sweep`.
    """

    experiment_id: str
    description: str
    p: float
    c_values: Sequence[int]
    methods: Sequence[str]
    local: bool
    default_seed: int
    default_trials: int = 5


def accuracy_cell(
    experiment_id: str,
    dataset: str,
    c: int,
    p: float,
    methods: Sequence[str],
    num_trials: int,
    seed: int,
    local: bool,
    max_edges: Optional[int] = None,
    rept_backend: Optional[str] = None,
) -> Dict[str, float]:
    """Run one (figure, dataset, c) cell and return method → NRMSE.

    The returned mapping preserves method order (the order of
    ``default_method_specs``), which downstream rendering relies on.
    ``rept_backend`` routes the REPT trials through one of the
    :mod:`repro.core.parallel` drivers (e.g. ``chunked-process``);
    estimates are bit-identical across backends, so the choice affects
    wall-clock only, never the cached numbers.
    """
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    specs = default_method_specs(
        p, c, len(edges), methods=methods, track_local=local, rept_backend=rept_backend
    )
    cell_seed = derive_seed(seed, experiment_id, dataset, c)
    if local:
        truth_local = {
            node: float(value) for node, value in stats.local_triangles.items()
        }
        summaries = run_local_trials(specs, edges, truth_local, num_trials, seed=cell_seed)
    else:
        summaries = run_global_trials(
            specs, edges, float(stats.num_triangles), num_trials, seed=cell_seed
        )
    return {name: summary.nrmse for name, summary in summaries.items()}


def assemble_accuracy_result(
    sweep: AccuracySweepDef,
    datasets: Sequence[str],
    c_values: Sequence[int],
    cells: Dict[str, Dict[int, Dict[str, float]]],
    num_trials: int,
    seed: int,
    max_edges: Optional[int],
    methods: Sequence[str],
    rept_backend: Optional[str] = None,
) -> ExperimentResult:
    """Assemble per-cell method → NRMSE maps into an :class:`ExperimentResult`.

    ``cells`` maps dataset → c → (method → NRMSE).  Shared by the direct
    figure functions and the campaign's ``accuracy-figure`` aggregation
    task, so both produce identical series, text and metadata.
    """
    series: Dict[str, Dict[str, List[float]]] = {}
    text_blocks: List[str] = []
    for name in datasets:
        per_method: Dict[str, List[float]] = {}
        for c in c_values:
            for method_name, nrmse in cells[name][c].items():
                per_method.setdefault(method_name, []).append(nrmse)
        series[name] = per_method
        text_blocks.append(
            format_series(
                "c",
                list(c_values),
                [(method, values) for method, values in per_method.items()],
                title=f"{sweep.experiment_id} — {name} (p={sweep.p}, trials={num_trials})",
            )
        )
    metadata: Dict[str, object] = {
        "p": sweep.p,
        "datasets": list(datasets),
        "methods": list(methods),
        "num_trials": num_trials,
        "seed": seed,
        "max_edges": max_edges,
        "local": sweep.local,
    }
    if rept_backend is not None:
        metadata["rept_backend"] = rept_backend
    return ExperimentResult(
        experiment_id=sweep.experiment_id,
        description=sweep.description,
        axis_name="c",
        axis_values=list(c_values),
        series=series,
        text="\n\n".join(text_blocks),
        metadata=metadata,
    )


def accuracy_sweep(
    sweep: AccuracySweepDef,
    datasets: Optional[Sequence[str]] = None,
    c_values: Optional[Sequence[int]] = None,
    num_trials: Optional[int] = None,
    seed: Optional[int] = None,
    max_edges: Optional[int] = None,
    methods: Optional[Sequence[str]] = None,
    rept_backend: Optional[str] = None,
) -> ExperimentResult:
    """Run a full accuracy sweep (all datasets × all c values) directly.

    This is the serial path behind :func:`repro.experiments.figures.figure3`
    and friends; the campaign engine runs the same cells as independent
    cached tasks and aggregates them with
    :func:`assemble_accuracy_result` — the outputs are identical.
    """
    names = resolve_datasets(datasets)
    c_values = list(c_values if c_values is not None else sweep.c_values)
    num_trials = sweep.default_trials if num_trials is None else num_trials
    seed = sweep.default_seed if seed is None else seed
    methods = list(methods if methods is not None else sweep.methods)
    cells: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in names:
        # One stream/statistics computation per dataset, shared by its cells.
        stream = prepare_stream(name, max_edges)
        edges = stream.edges()
        stats = compute_statistics(edges, name=name)
        truth_local = None
        if sweep.local:
            truth_local = {
                node: float(value) for node, value in stats.local_triangles.items()
            }
        per_c: Dict[int, Dict[str, float]] = {}
        for c in c_values:
            specs = default_method_specs(
                sweep.p, c, len(edges), methods=methods,
                track_local=sweep.local, rept_backend=rept_backend,
            )
            cell_seed = derive_seed(seed, sweep.experiment_id, name, c)
            if sweep.local:
                summaries = run_local_trials(
                    specs, edges, truth_local, num_trials, seed=cell_seed
                )
            else:
                summaries = run_global_trials(
                    specs, edges, float(stats.num_triangles), num_trials, seed=cell_seed
                )
            per_c[c] = {m: summary.nrmse for m, summary in summaries.items()}
        cells[name] = per_c
    return assemble_accuracy_result(
        sweep, names, c_values, cells, num_trials, seed, max_edges, methods,
        rept_backend=rept_backend,
    )
