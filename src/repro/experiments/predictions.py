"""Predicted-vs-measured NRMSE (the quantitative form of Section III-C).

The paper's accuracy comparison is analytical: it derives
``Var(parallel MASCOT) = (τ(m²−1) + 2η(m−1))/c`` and REPT's variance for the
three regimes of ``c``, and argues REPT wins because η dominates.  This
experiment closes the loop empirically: for one dataset it computes the
closed-form NRMSE predictions from the exact ``τ`` and ``η`` and overlays
the measured NRMSE of both methods, so the agreement (and hence the
correctness of both the implementation and the formulas) is visible in one
table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.variance import (
    parallel_mascot_variance,
    predicted_nrmse,
    rept_variance,
)
from repro.experiments.runner import default_method_specs, run_global_trials
from repro.experiments.spec import ExperimentResult
from repro.experiments.stages import prepare_stream
from repro.graph.statistics import compute_statistics
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def prediction_vs_measurement(
    dataset: str = "flickr-sim",
    m: int = 10,
    c_values: Sequence[int] = (2, 5, 10, 20, 30),
    num_trials: int = 10,
    seed: int = 21,
    max_edges: Optional[int] = None,
) -> ExperimentResult:
    """Compare measured NRMSE of REPT / parallel MASCOT with the closed forms.

    Parameters mirror the accuracy figures; ``m`` fixes the per-processor
    sampling probability at ``1/m`` while ``c`` sweeps the processor count
    across the three analytical regimes (``c < m``, ``c = m``, ``c > m``).
    """
    stream = prepare_stream(dataset, max_edges)
    edges = stream.edges()
    stats = compute_statistics(edges, name=dataset)
    truth = float(stats.num_triangles)

    headers = [
        "c",
        "REPT measured",
        "REPT predicted",
        "MASCOT measured",
        "MASCOT predicted",
    ]
    rows: List[List] = []
    series: Dict[str, Dict[str, List[float]]] = {
        dataset: {
            "REPT measured": [],
            "REPT predicted": [],
            "MASCOT measured": [],
            "MASCOT predicted": [],
        }
    }
    for c in c_values:
        specs = default_method_specs(1.0 / m, c, len(edges), methods=("rept", "mascot"))
        summaries = run_global_trials(
            specs, edges, truth, num_trials, seed=derive_seed(seed, "pred", dataset, c)
        )
        rept_pred = predicted_nrmse(rept_variance(truth, stats.eta, m, c), truth)
        mascot_pred = predicted_nrmse(
            parallel_mascot_variance(truth, stats.eta, m, c), truth
        )
        rows.append(
            [c, summaries["REPT"].nrmse, rept_pred, summaries["MASCOT"].nrmse, mascot_pred]
        )
        series[dataset]["REPT measured"].append(summaries["REPT"].nrmse)
        series[dataset]["REPT predicted"].append(rept_pred)
        series[dataset]["MASCOT measured"].append(summaries["MASCOT"].nrmse)
        series[dataset]["MASCOT predicted"].append(mascot_pred)

    text = format_table(
        headers,
        rows,
        title=(
            f"Predicted vs measured NRMSE — {dataset} "
            f"(m={m}, trials={num_trials}, tau={stats.num_triangles}, eta={stats.eta})"
        ),
    )
    return ExperimentResult(
        experiment_id="prediction_vs_measurement",
        description="Closed-form NRMSE predictions vs measured errors (Section III-C)",
        axis_name="c",
        axis_values=list(c_values),
        series=series,
        rows=rows,
        headers=headers,
        text=text,
        metadata={
            "dataset": dataset,
            "m": m,
            "num_trials": num_trials,
            "seed": seed,
            "max_edges": max_edges,
            "tau": stats.num_triangles,
            "eta": stats.eta,
        },
    )
