"""Trial runner: repeated independent runs of estimators over one stream.

A "cell" of every figure is (dataset, method, parameter value); the runner
executes ``num_trials`` independent runs of the method on the dataset's
stream and reduces them to the error summaries defined in
:mod:`repro.metrics`.  Trials differ only in their sampling randomness —
the stream and its arrival order are fixed, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.baselines.parallel import parallelize
from repro.baselines.single_threaded import (
    make_single_threaded_gps,
    make_single_threaded_mascot,
    make_single_threaded_triest,
)
from repro.core.config import ReptConfig
from repro.core.parallel import DriverBackedRept
from repro.core.rept import ReptEstimator
from repro.exceptions import ConfigurationError
from repro.experiments.spec import MethodSpec
from repro.metrics.errors import TrialSummary, summarize_trials
from repro.metrics.local_errors import LocalTrialSummary, summarize_local_trials
from repro.types import EdgeTuple, NodeId
from repro.utils.rng import SeedLike, spawn_rngs

#: Method names understood by :func:`default_method_specs`.
PARALLEL_METHODS = ("rept", "mascot", "triest", "gps")
SINGLE_THREADED_METHODS = ("mascot-s", "triest-s", "gps-s")


def default_method_specs(
    p: float,
    c: int,
    stream_length: int,
    methods: Sequence[str] = PARALLEL_METHODS,
    track_local: bool = False,
    rept_backend: Optional[str] = None,
) -> List[MethodSpec]:
    """Build the standard method line-up of the paper's figures.

    Parameters
    ----------
    p:
        Per-processor sampling probability (``1/m`` for REPT; the same ``p``
        for MASCOT; budget ``p·|E|`` for TRIÈST; ``p·|E|/2`` for GPS).
    c:
        Number of processors.
    stream_length:
        ``|E|``, used to size the fixed-budget samplers.
    methods:
        Which methods to include; any of ``rept``, ``mascot``, ``triest``,
        ``gps``, ``mascot-s``, ``triest-s``, ``gps-s``.
    track_local:
        Whether estimators should maintain local (per-node) counts.
    rept_backend:
        ``None`` (default) runs REPT through the in-process
        :class:`ReptEstimator`; any :data:`~repro.core.parallel.ParallelBackend`
        name runs it through the matching :func:`~repro.core.parallel.run_rept`
        driver instead (estimates are bit-identical either way).
    """
    m = int(round(1.0 / p))
    if m < 1 or abs(1.0 / m - p) > 1e-9:
        raise ConfigurationError(
            f"p={p} is not of the form 1/m for an integer m (closest m={m})"
        )
    specs: List[MethodSpec] = []
    for method in methods:
        if method == "rept":
            specs.append(
                MethodSpec(
                    name="REPT",
                    factory=lambda seed, _m=m, _c=c, _tl=track_local, _be=rept_backend: (
                        ReptEstimator(
                            ReptConfig(m=_m, c=_c, seed=_coerce_seed(seed), track_local=_tl)
                        )
                        if _be is None
                        else DriverBackedRept(
                            ReptConfig(m=_m, c=_c, seed=_coerce_seed(seed), track_local=_tl),
                            backend=_be,
                        )
                    ),
                )
            )
        elif method in ("mascot", "triest", "gps"):
            specs.append(
                MethodSpec(
                    name=method.upper() if method != "triest" else "TRIEST",
                    factory=lambda seed, _method=method, _c=c, _p=p, _len=stream_length, _tl=track_local: parallelize(
                        _method, _c, _p, _len, seed=seed, track_local=_tl
                    ),
                )
            )
        elif method == "mascot-s":
            specs.append(
                MethodSpec(
                    name="MASCOT-S",
                    factory=lambda seed, _p=p, _c=c, _tl=track_local: make_single_threaded_mascot(
                        _p, _c, seed=seed, track_local=_tl
                    ),
                )
            )
        elif method == "triest-s":
            specs.append(
                MethodSpec(
                    name="TRIEST-S",
                    factory=lambda seed, _p=p, _c=c, _len=stream_length, _tl=track_local: make_single_threaded_triest(
                        _p, _c, _len, seed=seed, track_local=_tl
                    ),
                )
            )
        elif method == "gps-s":
            specs.append(
                MethodSpec(
                    name="GPS-S",
                    factory=lambda seed, _p=p, _c=c, _len=stream_length, _tl=track_local: make_single_threaded_gps(
                        _p, _c, _len, seed=seed, track_local=_tl
                    ),
                )
            )
        else:
            raise ConfigurationError(f"unknown method {method!r}")
    return specs


def _coerce_seed(seed: SeedLike) -> Optional[int]:
    """REPT configs store a resolved integer seed; coerce RandomSource children."""
    if seed is None or isinstance(seed, int):
        return seed
    # RandomSource (or Generator): draw one integer deterministically.
    from repro.utils.rng import as_random_source

    return int(as_random_source(seed).random_uint64() % (2**63))


def run_trials(
    spec: MethodSpec,
    edges: Sequence[EdgeTuple],
    num_trials: int,
    seed: SeedLike = 0,
    batch_size: Optional[int] = None,
) -> List[TriangleEstimate]:
    """Run ``num_trials`` independent runs of one method over one stream.

    ``batch_size`` routes ingestion through the estimators' batched
    ``process_edges`` API in chunks of that many records; estimates are
    identical either way (the batch contract), but REPT trials ingest much
    faster.
    """
    if num_trials < 1:
        raise ConfigurationError("num_trials must be >= 1")
    estimates: List[TriangleEstimate] = []
    for child in spawn_rngs(seed, num_trials):
        estimator = spec.factory(child)
        estimates.append(estimator.run(edges, batch_size=batch_size))
    return estimates


def run_global_trials(
    specs: Iterable[MethodSpec],
    edges: Sequence[EdgeTuple],
    truth: float,
    num_trials: int,
    seed: SeedLike = 0,
    batch_size: Optional[int] = None,
) -> Dict[str, TrialSummary]:
    """Run every method and summarise the *global*-count errors.

    Returns a mapping method name -> :class:`TrialSummary`.
    """
    edge_list = list(edges)
    results: Dict[str, TrialSummary] = {}
    for index, spec in enumerate(specs):
        estimates = run_trials(
            spec, edge_list, num_trials, seed=_method_seed(seed, index),
            batch_size=batch_size,
        )
        results[spec.name] = summarize_trials(
            [estimate.global_count for estimate in estimates], truth
        )
    return results


def run_local_trials(
    specs: Iterable[MethodSpec],
    edges: Sequence[EdgeTuple],
    truth_local: Mapping[NodeId, float],
    num_trials: int,
    seed: SeedLike = 0,
    batch_size: Optional[int] = None,
) -> Dict[str, LocalTrialSummary]:
    """Run every method and summarise the *local*-count errors."""
    edge_list = list(edges)
    results: Dict[str, LocalTrialSummary] = {}
    for index, spec in enumerate(specs):
        estimates = run_trials(
            spec, edge_list, num_trials, seed=_method_seed(seed, index),
            batch_size=batch_size,
        )
        results[spec.name] = summarize_local_trials(
            [estimate.local_counts for estimate in estimates], truth_local
        )
    return results


def _method_seed(seed: SeedLike, method_index: int) -> int:
    """Derive a per-method seed so adding a method never shifts the others."""
    from repro.utils.rng import derive_seed

    return derive_seed(seed if isinstance(seed, int) else 0, "method", method_index)
