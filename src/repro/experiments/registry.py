"""Registry of paper artefacts: one name per figure/table/ablation.

The CLI (``rept-experiment <artefact>``) and the campaign engine's
``artefact`` task kind resolve artefact names through this module, so a
new experiment registers once and is immediately runnable directly, from
the shell, and as a cached campaign stage.

Callables are imported lazily so that importing the registry stays cheap
and free of circular imports.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult

#: artefact name -> "module:function" (resolved lazily).
_ARTEFACT_PATHS: Dict[str, str] = {
    "ingest": "repro.experiments.ingest:ingest_throughput",
    "monitor": "repro.experiments.monitoring:windowed_monitoring",
    "serve": "repro.service.artefacts:serve",
    "loadgen": "repro.service.artefacts:service_loadgen",
    "figure1": "repro.experiments.figures:figure1",
    "figure3": "repro.experiments.figures:figure3",
    "figure4": "repro.experiments.figures:figure4",
    "figure5": "repro.experiments.figures:figure5",
    "figure6": "repro.experiments.figures:figure6",
    "figure7": "repro.experiments.figures:figure7",
    "figure8": "repro.experiments.figures:figure8",
    "table2": "repro.experiments.tables:table2",
    "backends": "repro.experiments.backends:backend_comparison",
    "ablation-variance": "repro.experiments.ablations:ablation_variance",
    "ablation-combination": "repro.experiments.ablations:ablation_combination",
    "ablation-hash": "repro.experiments.ablations:ablation_hash_family",
    "predictions": "repro.experiments.predictions:prediction_vs_measurement",
}


def artefact_names() -> List[str]:
    """Return every registered artefact name, sorted."""
    return sorted(_ARTEFACT_PATHS)


def get_artefact(name: str) -> Callable[..., ExperimentResult]:
    """Resolve an artefact name to its callable.

    Raises :class:`ExperimentError` for unknown names.
    """
    try:
        path = _ARTEFACT_PATHS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown artefact {name!r}; known: {', '.join(artefact_names())}"
        ) from exc
    module_name, _, attribute = path.partition(":")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)
