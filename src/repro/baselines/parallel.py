"""Direct parallelisation of the baselines: independent trials, averaged.

The paper's parallel baselines run ``c`` completely independent estimator
instances (one per processor), feed the *same* stream to each and average
the final estimates.  The variance of the averaged global estimate is
``(τ(p⁻² − 1) + 2η(p⁻¹ − 1)) / c`` for MASCOT — the covariance term is only
divided by ``c``, never eliminated, which is the weakness REPT attacks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.baselines.base import (
    StreamingTriangleEstimator,
    TriangleEstimate,
    merge_local_counts,
)
from repro.exceptions import ConfigurationError
from repro.types import NodeId
from repro.utils.rng import SeedLike, as_random_source

EstimatorFactory = Callable[[SeedLike], StreamingTriangleEstimator]


class IndependentEnsemble(StreamingTriangleEstimator):
    """``c`` independent estimator instances whose estimates are averaged.

    Parameters
    ----------
    factory:
        Callable that builds one estimator instance from a seed; called
        ``num_processors`` times with independently spawned seeds.
    num_processors:
        Number of independent instances ``c``.
    seed:
        Master seed; children are derived with ``SeedSequence.spawn``.
    """

    name = "ensemble"

    def __init__(
        self,
        factory: EstimatorFactory,
        num_processors: int,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if num_processors < 1:
            raise ConfigurationError("num_processors must be >= 1")
        self.num_processors = int(num_processors)
        children = as_random_source(seed).spawn(self.num_processors)
        self.members: List[StreamingTriangleEstimator] = [
            factory(child) for child in children
        ]
        if self.members:
            self.name = f"parallel-{self.members[0].name}"

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        for member in self.members:
            member.process_edge(u, v)

    def estimate(self) -> TriangleEstimate:
        member_estimates = [member.estimate() for member in self.members]
        scale = 1.0 / self.num_processors
        global_count = sum(e.global_count for e in member_estimates) * scale
        local_counts: Dict[NodeId, float] = {}
        for member_estimate in member_estimates:
            merge_local_counts(local_counts, member_estimate.local_counts, scale)
        return TriangleEstimate(
            global_count=global_count,
            local_counts=local_counts,
            edges_processed=self.edges_processed,
            edges_stored=sum(e.edges_stored for e in member_estimates),
            metadata={"num_processors": float(self.num_processors)},
        )


def parallelize(
    method: str,
    num_processors: int,
    probability: float,
    stream_length: int,
    seed: SeedLike = None,
    track_local: bool = True,
) -> IndependentEnsemble:
    """Build the paper's parallel baseline for ``method``.

    Parameters
    ----------
    method:
        ``"mascot"``, ``"triest"`` or ``"gps"``.
    num_processors:
        Number of independent instances ``c``.
    probability:
        Per-processor sampling probability ``p``; TRIÈST and GPS convert it
        to an edge budget of ``p * stream_length`` (GPS gets half, matching
        the paper's memory accounting for its stored weights).
    stream_length:
        Length of the stream ``|E|`` used to size the budgets.
    seed:
        Master seed.
    track_local:
        Whether member estimators maintain local counts.
    """
    from repro.baselines.gps import GpsInStreamEstimator
    from repro.baselines.mascot import MascotEstimator
    from repro.baselines.triest import TriestImprEstimator

    if not 0 < probability <= 1:
        raise ConfigurationError(f"probability must be in (0, 1], got {probability}")
    budget = max(1, int(round(probability * stream_length)))
    factories: Dict[str, EstimatorFactory] = {
        "mascot": lambda s: MascotEstimator(probability, seed=s, track_local=track_local),
        "triest": lambda s: TriestImprEstimator(budget, seed=s, track_local=track_local),
        "gps": lambda s: GpsInStreamEstimator(
            max(1, budget // 2), seed=s, track_local=track_local
        ),
    }
    if method not in factories:
        raise ConfigurationError(
            f"unknown method {method!r}; expected one of {sorted(factories)}"
        )
    return IndependentEnsemble(factories[method], num_processors, seed=seed)
