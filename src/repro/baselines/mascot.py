"""MASCOT: memory-efficient local triangle counting with Bernoulli sampling.

This is the *improved* MASCOT variant the paper compares against: for every
arriving edge ``(u, v)`` the estimator first counts the semi-triangles the
edge closes in the current sampled graph (each contributing ``1/p²`` to the
unbiased estimate), and only then decides — with probability ``p`` — whether
to store the edge.  The global-count variance is
``τ(p⁻² − 1) + 2η(p⁻¹ − 1)`` (Lemma 6 of the MASCOT paper), which is the
formula Figure 1 of the REPT paper dissects.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.sampling.edge_sampling import BernoulliEdgeSampler
from repro.types import NodeId
from repro.utils.rng import SeedLike


class MascotEstimator(StreamingTriangleEstimator):
    """MASCOT (improved) with edge-sampling probability ``p``.

    Parameters
    ----------
    probability:
        Bernoulli sampling probability ``p``.
    seed:
        Seed-like value for the sampling coin flips.
    track_local:
        Whether to maintain per-node estimates.  Global-only runs are
        slightly faster and use less memory; the experiments for Figures 3–4
        do not need local counts.
    """

    name = "mascot"

    def __init__(
        self, probability: float, seed: SeedLike = None, track_local: bool = True
    ) -> None:
        super().__init__()
        self._sampler = BernoulliEdgeSampler(probability, seed=seed)
        self.probability = self._sampler.probability
        self._sampled = AdjacencyGraph()
        self._weight = 1.0 / (self.probability * self.probability)
        self._global = 0.0
        self._track_local = track_local
        self._local: Dict[NodeId, float] = {}

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v:
            return
        common = self._sampled.common_neighbors(u, v)
        closed = len(common)
        if closed:
            increment = closed * self._weight
            self._global += increment
            if self._track_local:
                self._local[u] = self._local.get(u, 0.0) + increment
                self._local[v] = self._local.get(v, 0.0) + increment
                for w in common:
                    self._local[w] = self._local.get(w, 0.0) + self._weight
        if self._sampler.offer():
            self._sampled.add_edge(u, v)

    def estimate(self) -> TriangleEstimate:
        return TriangleEstimate(
            global_count=self._global,
            local_counts=dict(self._local),
            edges_processed=self.edges_processed,
            edges_stored=self._sampled.num_edges,
            metadata={"probability": self.probability},
        )

    @property
    def edges_stored(self) -> int:
        """Number of edges currently retained in the sample."""
        return self._sampled.num_edges
