"""Baseline streaming triangle-count estimators.

The paper compares REPT against three state-of-the-art one-pass estimators
run either on a single thread or "parallelised in a direct manner" (``c``
independent trials whose estimates are averaged):

* **MASCOT** (Lim & Kang, KDD 2015) — Bernoulli edge sampling, improved
  variant that counts every arriving edge's semi-triangles before the
  sampling decision;
* **TRIÈST** (De Stefani et al., KDD 2016) — reservoir sampling with a fixed
  edge budget, improved (IMPR) variant with weighted increments and no
  decrements;
* **GPS** (Ahmed et al., VLDB 2017) — graph priority sampling, In-Stream
  variant.

An exact streaming counter is also provided to produce ground truth through
the same interface.
"""

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.mascot import MascotEstimator
from repro.baselines.triest import TriestImprEstimator
from repro.baselines.triest_base import TriestBaseEstimator
from repro.baselines.gps import GpsInStreamEstimator
from repro.baselines.doulion import DoulionEstimator
from repro.baselines.wedge_sampling import WedgeSamplingEstimator, WedgeSamplingResult
from repro.baselines.parallel import IndependentEnsemble, parallelize
from repro.baselines.single_threaded import (
    make_single_threaded_gps,
    make_single_threaded_mascot,
    make_single_threaded_triest,
)

__all__ = [
    "StreamingTriangleEstimator",
    "TriangleEstimate",
    "ExactStreamingCounter",
    "MascotEstimator",
    "TriestImprEstimator",
    "TriestBaseEstimator",
    "GpsInStreamEstimator",
    "DoulionEstimator",
    "WedgeSamplingEstimator",
    "WedgeSamplingResult",
    "IndependentEnsemble",
    "parallelize",
    "make_single_threaded_mascot",
    "make_single_threaded_triest",
    "make_single_threaded_gps",
]
