"""Exact streaming triangle counter (ground truth through the same API).

Stores every distinct edge and, for each arriving edge, adds the number of
common neighbors to the global and local counters.  Because all edges are
stored, the "semi-triangles" it counts are exactly the real triangles, each
counted once when its last stream edge arrives.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.types import NodeId


class ExactStreamingCounter(StreamingTriangleEstimator):
    """Exact one-pass global and local triangle counting.

    Memory is Θ(|E|); this is the reference implementation the error metrics
    compare against and doubles as a second opinion on the offline counters
    in :mod:`repro.graph.triangles`.
    """

    name = "exact"

    def __init__(self) -> None:
        super().__init__()
        self._graph = AdjacencyGraph()
        self._global = 0
        self._local: Dict[NodeId, int] = {}

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v or self._graph.has_edge(u, v):
            # Duplicate observations carry no new triangle; the aggregate
            # graph is simple.
            return
        common = self._graph.common_neighbors(u, v)
        closed = len(common)
        if closed:
            self._global += closed
            self._local[u] = self._local.get(u, 0) + closed
            self._local[v] = self._local.get(v, 0) + closed
            for w in common:
                self._local[w] = self._local.get(w, 0) + 1
        self._graph.add_edge(u, v)

    def estimate(self) -> TriangleEstimate:
        return TriangleEstimate(
            global_count=float(self._global),
            local_counts={node: float(count) for node, count in self._local.items()},
            edges_processed=self.edges_processed,
            edges_stored=self._graph.num_edges,
        )
