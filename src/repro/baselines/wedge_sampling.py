"""Wedge sampling for *static* in-memory graphs (Seshadhri et al., 2014).

Section III-D of the REPT paper scopes its contribution: when the whole
graph fits in memory, wedge sampling gives more accurate triangle estimates
than REPT for the same computation, so REPT should only be preferred for
genuine streams.  This module implements that static baseline so the
scope/limitations claim can be exercised.

A *wedge* is a path of length two (a node with two distinct neighbors); the
graph's transitivity is the fraction of wedges that are *closed* (their
endpoints are adjacent), and ``τ = transitivity × #wedges / 3``.  Uniform
wedge sampling estimates the transitivity by sampling wedges proportionally
to each node's wedge count and checking closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.triangles import count_wedges
from repro.utils.rng import SeedLike, as_random_source


@dataclass
class WedgeSamplingResult:
    """Outcome of one wedge-sampling estimation.

    Attributes
    ----------
    transitivity_estimate:
        Estimated fraction of closed wedges.
    triangle_estimate:
        ``transitivity × #wedges / 3``.
    num_wedges:
        Exact number of wedges in the graph (computed from degrees).
    samples:
        Number of wedges sampled.
    """

    transitivity_estimate: float
    triangle_estimate: float
    num_wedges: int
    samples: int


class WedgeSamplingEstimator:
    """Uniform wedge sampling on an in-memory graph.

    Parameters
    ----------
    num_samples:
        Number of wedges to sample; the standard error of the transitivity
        estimate is ``O(1/sqrt(num_samples))`` independent of graph size.
    seed:
        Seed-like value.
    """

    name = "wedge-sampling"

    def __init__(self, num_samples: int, seed: SeedLike = None) -> None:
        if num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")
        self.num_samples = int(num_samples)
        self._rng = as_random_source(seed)

    def estimate(self, graph: AdjacencyGraph) -> WedgeSamplingResult:
        """Estimate the triangle count of ``graph``."""
        nodes: List = [node for node in graph.nodes() if graph.degree(node) >= 2]
        total_wedges = count_wedges(graph)
        if not nodes or total_wedges == 0:
            return WedgeSamplingResult(0.0, 0.0, total_wedges, 0)

        wedge_counts = np.array(
            [graph.degree(node) * (graph.degree(node) - 1) / 2 for node in nodes], dtype=float
        )
        probabilities = wedge_counts / wedge_counts.sum()
        centers = self._rng.generator.choice(len(nodes), size=self.num_samples, p=probabilities)

        closed = 0
        for center_index in centers:
            center = nodes[int(center_index)]
            neighbors = list(graph.neighbors(center))
            first, second = self._rng.generator.choice(len(neighbors), size=2, replace=False)
            if graph.has_edge(neighbors[int(first)], neighbors[int(second)]):
                closed += 1
        transitivity = closed / self.num_samples
        return WedgeSamplingResult(
            transitivity_estimate=transitivity,
            triangle_estimate=transitivity * total_wedges / 3.0,
            num_wedges=total_wedges,
            samples=self.num_samples,
        )
