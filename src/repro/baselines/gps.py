"""GPS In-Stream: graph priority sampling for triangle estimation.

Graph Priority Sampling (Ahmed et al., VLDB 2017) keeps the ``k`` edges of
highest priority ``w(e)/u(e)``, where the weight ``w(e)`` is computed when
the edge arrives as ``1 + (#triangles e closes with currently sampled
edges)`` — edges that close many triangles are more valuable and get larger
weights.  The *In-Stream* variant updates the triangle estimate when the
**last** edge of a triangle arrives, dividing by the (estimated) inclusion
probabilities ``min(1, w/z*)`` of the two sampled edges, which is the
Horvitz–Thompson correction.

As in the REPT paper's experiments, GPS pays for its weights: under the
same memory budget it can only afford half as many sampled edges as the
other methods (each stored edge also stores its weight/priority), which is
why the harness halves its budget.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.sampling.priority import PrioritySampler
from repro.types import NodeId, canonical_edge
from repro.utils.rng import SeedLike


class GpsInStreamEstimator(StreamingTriangleEstimator):
    """GPS In-Stream with a budget of ``budget`` sampled edges.

    Parameters
    ----------
    budget:
        Number of edges retained by the priority sampler.
    seed:
        Seed-like value for the priority variates.
    track_local:
        Whether to maintain per-node estimates.
    """

    name = "gps"

    def __init__(self, budget: int, seed: SeedLike = None, track_local: bool = True) -> None:
        super().__init__()
        self._sampler = PrioritySampler(budget, seed=seed)
        self.budget = self._sampler.capacity
        self._sampled = AdjacencyGraph()
        self._global = 0.0
        self._track_local = track_local
        self._local: Dict[NodeId, float] = {}

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v:
            return
        common = self._sampled.common_neighbors(u, v)
        closed = len(common)
        if closed:
            # In-stream Horvitz-Thompson update for each triangle completed
            # by the arriving edge.
            for w in common:
                p_uw = self._sampler.inclusion_probability(canonical_edge(u, w))
                p_vw = self._sampler.inclusion_probability(canonical_edge(v, w))
                if p_uw <= 0 or p_vw <= 0:
                    continue
                increment = 1.0 / (p_uw * p_vw)
                self._global += increment
                if self._track_local:
                    self._local[u] = self._local.get(u, 0.0) + increment
                    self._local[v] = self._local.get(v, 0.0) + increment
                    self._local[w] = self._local.get(w, 0.0) + increment
        # Weight grows with the number of triangles the edge closes against
        # the sample, so structurally important edges are retained longer.
        weight = 1.0 + float(closed)
        evicted = self._sampler.offer(canonical_edge(u, v), weight)
        if evicted != canonical_edge(u, v):
            self._sampled.add_edge(u, v)
        if evicted is not None and evicted != canonical_edge(u, v):
            self._sampled.remove_edge(*evicted)

    def estimate(self) -> TriangleEstimate:
        return TriangleEstimate(
            global_count=self._global,
            local_counts=dict(self._local),
            edges_processed=self.edges_processed,
            edges_stored=self._sampled.num_edges,
            metadata={"budget": float(self.budget), "threshold": self._sampler.threshold},
        )

    @property
    def edges_stored(self) -> int:
        """Number of edges currently retained by the priority sampler."""
        return self._sampled.num_edges
