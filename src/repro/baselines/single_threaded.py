"""Single-threaded baselines with a *combined* memory budget.

Section IV-E of the paper compares REPT on ``c`` processors against
single-threaded MASCOT-S / TRIÈST-S / GPS-S given the *same total memory*:
the single-threaded sampling probability becomes ``c · p`` (capped at 1) and
the reservoir/priority budgets become ``c · p · |E|``.  These factories
encode exactly that memory accounting so Figure 8 is a one-liner in the
experiment harness.
"""

from __future__ import annotations

from repro.baselines.gps import GpsInStreamEstimator
from repro.baselines.mascot import MascotEstimator
from repro.baselines.triest import TriestImprEstimator
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike


def _combined_probability(probability: float, num_processors: int) -> float:
    if not 0 < probability <= 1:
        raise ConfigurationError(f"probability must be in (0, 1], got {probability}")
    if num_processors < 1:
        raise ConfigurationError("num_processors must be >= 1")
    return min(1.0, probability * num_processors)


def make_single_threaded_mascot(
    probability: float,
    num_processors: int,
    seed: SeedLike = None,
    track_local: bool = True,
) -> MascotEstimator:
    """MASCOT-S: one instance with sampling probability ``min(1, c·p)``."""
    estimator = MascotEstimator(
        _combined_probability(probability, num_processors), seed=seed, track_local=track_local
    )
    estimator.name = "mascot-s"
    return estimator


def make_single_threaded_triest(
    probability: float,
    num_processors: int,
    stream_length: int,
    seed: SeedLike = None,
    track_local: bool = True,
) -> TriestImprEstimator:
    """TRIÈST-S: one instance with budget ``min(|E|, c·p·|E|)`` edges."""
    combined = _combined_probability(probability, num_processors)
    budget = max(1, int(round(combined * stream_length)))
    estimator = TriestImprEstimator(budget, seed=seed, track_local=track_local)
    estimator.name = "triest-s"
    return estimator


def make_single_threaded_gps(
    probability: float,
    num_processors: int,
    stream_length: int,
    seed: SeedLike = None,
    track_local: bool = True,
) -> GpsInStreamEstimator:
    """GPS-S: one instance with half the combined budget (weights cost memory)."""
    combined = _combined_probability(probability, num_processors)
    budget = max(1, int(round(combined * stream_length)) // 2)
    estimator = GpsInStreamEstimator(budget, seed=seed, track_local=track_local)
    estimator.name = "gps-s"
    return estimator
