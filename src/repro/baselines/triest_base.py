"""TRIÈST-BASE: the unweighted reservoir variant.

The REPT paper evaluates the *improved* variant (TRIÈST-IMPR, implemented in
:mod:`repro.baselines.triest`) because it dominates the base version; the
base version is included here for completeness and as a contrast case in
tests and ablations.  Differences from IMPR:

* counters are updated only from edges that are actually **in** the
  reservoir (after the insertion decision), and are **decremented** when a
  resident edge's triangles are broken by an eviction;
* the raw counter is unbiased only after multiplying by
  ``ξ(t) = max(1, t(t−1)(t−2) / (M(M−1)(M−2)))`` — the inverse probability
  that the three edges of a triangle are all in the reservoir at time ``t``
  — applied at estimate time.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.sampling.reservoir import EdgeReservoir
from repro.types import NodeId
from repro.utils.rng import SeedLike


class TriestBaseEstimator(StreamingTriangleEstimator):
    """TRIÈST-BASE with reservoir capacity ``budget`` edges.

    Parameters
    ----------
    budget:
        Maximum number of edges stored.  Must be at least 3 for any
        triangle to ever fit in the reservoir.
    seed:
        Seed-like value for the reservoir coin flips.
    track_local:
        Whether to maintain per-node counters.
    """

    name = "triest-base"

    def __init__(self, budget: int, seed: SeedLike = None, track_local: bool = True) -> None:
        super().__init__()
        self._reservoir = EdgeReservoir(budget, seed=seed)
        self.budget = self._reservoir.capacity
        self._sampled = AdjacencyGraph()
        self._global = 0
        self._track_local = track_local
        self._local: Dict[NodeId, int] = {}

    def _update_counters(self, u: NodeId, v: NodeId, delta: int) -> None:
        """Add ``delta`` for every triangle closed by edge (u, v) in the sample."""
        common = self._sampled.common_neighbors(u, v)
        if not common:
            return
        change = delta * len(common)
        self._global += change
        if self._track_local:
            self._local[u] = self._local.get(u, 0) + change
            self._local[v] = self._local.get(v, 0) + change
            for w in common:
                self._local[w] = self._local.get(w, 0) + delta

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v:
            return
        result = self._reservoir.offer((u, v))
        if not result.inserted:
            return
        if result.evicted is not None:
            evicted_u, evicted_v = result.evicted
            self._sampled.remove_edge(evicted_u, evicted_v)
            self._update_counters(evicted_u, evicted_v, delta=-1)
        self._update_counters(u, v, delta=+1)
        self._sampled.add_edge(u, v)

    def _scaling(self) -> float:
        """Return ξ(t): the inverse sampling probability of a triangle.

        ``t`` is the reservoir's clock (offered, non-loop edges) so the
        scaling matches the acceptance probabilities actually used; see the
        counted-vs-skipped contract on :class:`StreamingTriangleEstimator`.
        """
        t = self._reservoir.num_offered
        k = self.budget
        if t <= k or k < 3:
            return 1.0
        return max(
            1.0,
            (t * (t - 1) * (t - 2)) / (k * (k - 1) * (k - 2)),
        )

    def estimate(self) -> TriangleEstimate:
        scale = self._scaling()
        return TriangleEstimate(
            global_count=self._global * scale,
            local_counts={node: value * scale for node, value in self._local.items()},
            edges_processed=self.edges_processed,
            edges_stored=self._sampled.num_edges,
            metadata={"budget": float(self.budget), "scaling": scale},
        )

    @property
    def edges_stored(self) -> int:
        """Number of edges currently retained in the reservoir."""
        return self._sampled.num_edges
