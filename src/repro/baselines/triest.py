"""TRIÈST-IMPR: reservoir-sampling triangle estimation with fixed memory.

TRIÈST (De Stefani et al., KDD 2016) keeps a uniform reservoir of at most
``k`` edges.  The improved (IMPR) variant:

* updates the counters *before* the reservoir decision ("UpdateCounters is
  called unconditionally for each element on the stream"),
* weights each counted semi-triangle by
  ``η_t = max(1, (t−1)(t−2) / (k(k−1)))`` — the inverse probability that
  both earlier edges of the triangle are in the reservoir at time ``t``,
* never decrements counters when edges are evicted.

At the end of a stream of length ``|E|`` with ``k = p|E|`` it has accuracy
comparable to MASCOT with probability ``p`` (as the REPT paper notes), while
guaranteeing the memory budget exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.sampling.reservoir import EdgeReservoir
from repro.types import NodeId
from repro.utils.rng import SeedLike


class TriestImprEstimator(StreamingTriangleEstimator):
    """TRIÈST-IMPR with reservoir capacity ``budget`` edges.

    Parameters
    ----------
    budget:
        Maximum number of edges stored (the paper sets ``p·|E|`` per
        processor when comparing against MASCOT at probability ``p``).
    seed:
        Seed-like value for the reservoir coin flips.
    track_local:
        Whether to maintain per-node estimates.
    """

    name = "triest"

    def __init__(self, budget: int, seed: SeedLike = None, track_local: bool = True) -> None:
        super().__init__()
        self._reservoir = EdgeReservoir(budget, seed=seed)
        self.budget = self._reservoir.capacity
        self._sampled = AdjacencyGraph()
        self._global = 0.0
        self._track_local = track_local
        self._local: Dict[NodeId, float] = {}

    def _increment_weight(self, t: int) -> float:
        """Return η_t = max(1, (t−1)(t−2) / (k(k−1))) for the t-th edge."""
        k = self.budget
        if k < 2:
            # With a single-edge reservoir no wedge ever fits; weight the
            # (impossible) counted triangles by the formula's limit of 1.
            return 1.0
        return max(1.0, (t - 1) * (t - 2) / (k * (k - 1)))

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v:
            return
        # Stream time for the weight must match the reservoir's clock, which
        # counts offered (non-loop) edges; edges_processed also includes
        # self-loops and would inflate the weight on dirty streams.
        t = self._reservoir.num_offered + 1
        weight = self._increment_weight(t)
        common = self._sampled.common_neighbors(u, v)
        if common:
            increment = len(common) * weight
            self._global += increment
            if self._track_local:
                self._local[u] = self._local.get(u, 0.0) + increment
                self._local[v] = self._local.get(v, 0.0) + increment
                for w in common:
                    self._local[w] = self._local.get(w, 0.0) + weight
        result = self._reservoir.offer((u, v))
        if result.inserted:
            if result.evicted is not None:
                self._sampled.remove_edge(*result.evicted)
            self._sampled.add_edge(u, v)

    def estimate(self) -> TriangleEstimate:
        return TriangleEstimate(
            global_count=self._global,
            local_counts=dict(self._local),
            edges_processed=self.edges_processed,
            edges_stored=self._sampled.num_edges,
            metadata={"budget": float(self.budget)},
        )

    @property
    def edges_stored(self) -> int:
        """Number of edges currently retained in the reservoir."""
        return self._sampled.num_edges
