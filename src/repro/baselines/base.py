"""Common interface for one-pass streaming triangle estimators.

Every estimator in this library — the baselines and REPT itself — consumes
the stream edge by edge through :meth:`StreamingTriangleEstimator.process_edge`
and reports a :class:`TriangleEstimate` at any point via
:meth:`StreamingTriangleEstimator.estimate`.  Keeping the interface uniform
lets the experiment harness sweep methods without special cases.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.types import EdgeTuple, NodeId


@dataclass
class TriangleEstimate:
    """A point-in-time estimate of global and local triangle counts.

    Attributes
    ----------
    global_count:
        The estimate ``τ̂`` of the global triangle count.
    local_counts:
        Mapping node -> ``τ̂_v``.  Nodes the estimator has never seen are
        simply absent and should be treated as estimate 0.
    edges_processed:
        How many stream edges had been processed when the estimate was taken.
    edges_stored:
        How many edges the estimator currently stores (its memory footprint
        in edges, summed over processors for parallel methods).
    metadata:
        Free-form method-specific extras (e.g. REPT's η̂ or the per-group
        sub-estimates), useful for diagnostics and ablations.
    """

    global_count: float
    local_counts: Dict[NodeId, float] = field(default_factory=dict)
    edges_processed: int = 0
    edges_stored: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    def local_count(self, node: NodeId) -> float:
        """Return ``τ̂_v`` for ``node`` (0.0 when the node was never seen)."""
        return self.local_counts.get(node, 0.0)


class StreamingTriangleEstimator(abc.ABC):
    """Abstract base class of all one-pass estimators.

    Subclasses implement :meth:`process_edge` and :meth:`estimate`;
    :meth:`process_stream` and :meth:`run` are shared conveniences.

    Counted-vs-skipped semantics
    ----------------------------
    Every implementation follows one uniform contract for degenerate stream
    records: **count first, then skip the update**.  Concretely,
    :meth:`process_edge` calls :meth:`_count_edge` for *every* record it is
    handed — including self-loops and duplicate observations — so
    ``edges_processed`` always equals the number of records consumed, and
    then returns early for self-loops without touching counters, samples or
    stored edges.  Duplicates are *not* skipped by sampling estimators (a
    re-observed edge closes semi-triangles); only structurally meaningless
    records (self-loops) are.

    One corollary for estimators with stream-position-dependent weights
    (the TRIÈST reservoir variants): the inverse-probability weights must be
    driven by the number of edges actually *offered* to the sample (i.e.
    excluding self-loops), not by ``edges_processed`` — otherwise the
    weights and the reservoir's acceptance probabilities disagree on
    streams containing loops.
    """

    #: Human-readable method name used in experiment reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.edges_processed = 0

    @abc.abstractmethod
    def process_edge(self, u: NodeId, v: NodeId) -> None:
        """Consume the next stream edge ``(u, v)``.

        Implementations must call :meth:`_count_edge` first, then skip the
        estimator update when ``u == v`` (see the class docstring).
        """

    @abc.abstractmethod
    def estimate(self) -> TriangleEstimate:
        """Return the current estimate of global and local triangle counts."""

    def process_edges(self, edges: Iterable[EdgeTuple]) -> None:
        """Consume a batch of stream edges, in order.

        The contract is strict equivalence: for every estimator,
        ``process_edges(batch)`` must leave the state bit-identical to
        calling :meth:`process_edge` per record (the batch-ingestion
        property tests assert this).  The base implementation *is* that
        per-edge loop; estimators with a vectorized ingestion pipeline
        (REPT) override it.
        """
        for u, v in edges:
            self.process_edge(u, v)

    def process_stream(
        self, edges: Iterable[EdgeTuple], batch_size: Optional[int] = None
    ) -> None:
        """Consume every edge of ``edges`` in order.

        ``batch_size`` routes the stream through :meth:`process_edges` in
        chunks of that many records — identical results, but estimators
        with a batched pipeline ingest far faster.  ``None`` (default)
        keeps the plain per-edge loop.
        """
        if batch_size is None:
            for u, v in edges:
                self.process_edge(u, v)
            return
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        iter_batches = getattr(edges, "iter_batches", None)
        if iter_batches is not None:
            for batch in iter_batches(batch_size):
                self.process_edges(batch)
            return
        batch = []
        append = batch.append
        for edge in edges:
            append(edge)
            if len(batch) >= batch_size:
                self.process_edges(batch)
                batch.clear()
        if batch:
            self.process_edges(batch)

    def run(
        self, edges: Iterable[EdgeTuple], batch_size: Optional[int] = None
    ) -> TriangleEstimate:
        """Consume the whole stream and return the final estimate."""
        self.process_stream(edges, batch_size=batch_size)
        return self.estimate()

    def _count_edge(self) -> None:
        """Bookkeeping helper: subclasses call this once per processed edge."""
        self.edges_processed += 1


def merge_local_counts(
    accumulator: Dict[NodeId, float], increment: Mapping[NodeId, float], scale: float = 1.0
) -> None:
    """Add ``scale * increment`` into ``accumulator`` in place."""
    for node, value in increment.items():
        accumulator[node] = accumulator.get(node, 0.0) + scale * value
