"""DOULION: triangle counting with a coin (Tsourakakis et al., KDD 2009).

DOULION is the earliest of the edge-sparsification estimators the paper
cites ([8]): keep each edge of the stream independently with probability
``p``, count the triangles of the *sparsified* graph exactly at the end, and
scale the count by ``1/p³`` (each triangle survives with probability ``p³``).

It is included as a historical baseline and as a useful contrast in the
analysis: unlike MASCOT-style semi-triangle counting, DOULION's estimate
depends only on the sparsified graph (not on the stream order), but it
wastes the information carried by unsampled closing edges, which is why the
semi-triangle estimators dominate it at equal memory.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.triangles import count_triangles_per_node
from repro.sampling.edge_sampling import BernoulliEdgeSampler
from repro.types import NodeId
from repro.utils.rng import SeedLike


class DoulionEstimator(StreamingTriangleEstimator):
    """DOULION with sparsification probability ``p``.

    Parameters
    ----------
    probability:
        Edge-keeping probability ``p``.
    seed:
        Seed-like value for the coin flips.
    track_local:
        Whether to compute per-node estimates (scaled by ``1/p³`` as well).
    """

    name = "doulion"

    def __init__(
        self, probability: float, seed: SeedLike = None, track_local: bool = True
    ) -> None:
        super().__init__()
        self._sampler = BernoulliEdgeSampler(probability, seed=seed)
        self.probability = self._sampler.probability
        self._sparsified = AdjacencyGraph()
        self._track_local = track_local

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v:
            return
        if self._sampler.offer():
            self._sparsified.add_edge(u, v)

    def estimate(self) -> TriangleEstimate:
        scale = 1.0 / (self.probability**3)
        # Exact count on the sparsified graph via the shared primitive.
        sparsified_triangles = 0
        for a, b in self._sparsified.edges():
            sparsified_triangles += len(self._sparsified.common_neighbors(a, b))
        sparsified_triangles //= 3
        local_counts: Dict[NodeId, float] = {}
        if self._track_local:
            local_counts = {
                node: value * scale
                for node, value in count_triangles_per_node(self._sparsified).items()
                if value > 0
            }
        return TriangleEstimate(
            global_count=sparsified_triangles * scale,
            local_counts=local_counts,
            edges_processed=self.edges_processed,
            edges_stored=self._sparsified.num_edges,
            metadata={"probability": self.probability},
        )

    @property
    def edges_stored(self) -> int:
        """Number of edges retained in the sparsified graph."""
        return self._sparsified.num_edges
