"""Per-tenant stream sessions: engines, ingest loop, backpressure, lifecycle.

A *session* is one tenant's long-lived estimator (or windowed monitor)
plus the machinery that keeps it healthy inside the service:

* an **engine** — the estimator state behind a uniform ingest/query
  facade (:class:`ReptEngine`, :class:`EstimatorEngine`,
  :class:`MonitorEngine`), built from a JSON-able *engine spec* so the
  wire protocol, checkpoints and recovery all describe engines the same
  way;
* a bounded ``asyncio.Queue`` of edge *frames* with an explicit
  backpressure policy — ``"block"`` (the ``ingest`` response waits for
  queue room, pushing back on the client) or ``"shed"`` (full queue drops
  the frame and counts it);
* a **single-writer ingest loop**: one task owns the engine and consumes
  frames in order, processing each frame synchronously (no awaits
  mid-frame).  Queries run on the same event loop and therefore interleave
  only at frame boundaries — every answer reflects a frame-aligned
  delivered prefix, never a torn mid-frame state, without any locking;
* supervised failure handling: an exception while delivering a frame
  (injectable via the ``service-ingest`` fault site, which fires *before*
  the engine is touched — a faulted frame is dropped whole, never half
  applied) increments the error counters and restarts the loop body until
  the restart budget is exhausted, after which the session degrades to
  ``"failed"`` and rejects further ingestion while still serving queries
  over the delivered prefix;
* durable checkpoints through a per-tenant
  :class:`~repro.durability.checkpoint.CheckpointManager` — periodic (every
  N delivered frames), on demand (the ``checkpoint`` op) and at drain; the
  ``service-checkpoint`` fault site makes checkpoint I/O failures
  injectable, and a failed checkpoint is counted and survived, never
  allowed to kill the ingest loop or tear engine state.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.triest import TriestImprEstimator
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import GroupStateSet
from repro.durability.checkpoint import CheckpointManager
from repro.exceptions import ServiceError
from repro.service.metrics import SessionMetrics
from repro.streaming.monitor import WindowedTriangleMonitor
from repro.streaming.writers import JsonlEdgeLogWriter
from repro.testing.faults import maybe_fail

#: Engine kinds accepted in engine specs.
ENGINE_KINDS = ("rept", "rept-elastic", "exact", "triest", "monitor")

#: Backpressure policies of the ingest queue.
BACKPRESSURE_POLICIES = ("block", "shed")


def validate_engine_spec(spec: object) -> Dict[str, object]:
    """Validate and normalise an engine spec dict; returns a plain copy.

    Specs are JSON-able dicts selected by ``kind``::

        {"kind": "rept", "m": 32, "c": 64, "seed": 7}
        {"kind": "rept-elastic", "m": 32, "c": 64, "seed": 7, "workers": 3}
        {"kind": "exact"}
        {"kind": "triest", "budget": 5000, "seed": 7}
        {"kind": "monitor", "window_seconds": 60.0, "slide_seconds": 60.0,
         "rept": {"m": 32, "c": 64, "seed": 7}}

    The same spec dict travels over the wire (``open``), into checkpoint
    meta, and back out of recovery — so it must stay JSON-round-trippable.
    """
    if not isinstance(spec, dict):
        raise ServiceError(f"engine spec must be an object, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in ENGINE_KINDS:
        raise ServiceError(
            f"unknown engine kind {kind!r}; known: {', '.join(ENGINE_KINDS)}"
        )
    normalised = dict(spec)
    if kind == "rept":
        _require_rept_params(normalised)
    elif kind == "rept-elastic":
        _require_rept_params(normalised)
        workers = normalised.setdefault("workers", 2)
        if not isinstance(workers, int) or workers < 0:
            raise ServiceError(
                "rept-elastic engine spec needs an integer 'workers' >= 0"
            )
    elif kind == "triest":
        if not isinstance(normalised.get("budget"), int) or normalised["budget"] < 1:
            raise ServiceError("triest engine spec needs an integer 'budget' >= 1")
        normalised.setdefault("seed", 0)
    elif kind == "monitor":
        if "window_seconds" not in normalised:
            raise ServiceError("monitor engine spec needs 'window_seconds'")
        rept = normalised.get("rept")
        if not isinstance(rept, dict):
            raise ServiceError("monitor engine spec needs a 'rept' config object")
        _require_rept_params(rept)
    return normalised


def _require_rept_params(params: Dict[str, object]) -> None:
    from repro.core.kernel import KERNEL_CHOICES

    for field in ("m", "c"):
        if not isinstance(params.get(field), int) or params[field] < 1:
            raise ServiceError(f"rept engine spec needs an integer {field!r} >= 1")
    # An unseeded config would resolve a fresh random seed per process,
    # breaking checkpoint/recovery bit-identity — force it explicit.
    if "seed" not in params:
        raise ServiceError("rept engine spec needs an explicit 'seed'")
    kernel = params.get("kernel", "auto")
    if kernel not in KERNEL_CHOICES:
        raise ServiceError(
            f"rept engine spec kernel must be one of {KERNEL_CHOICES}, got {kernel!r}"
        )


def _rept_config(params: Dict[str, object]) -> ReptConfig:
    return ReptConfig(
        m=params["m"],
        c=params["c"],
        seed=params["seed"],
        hash_kind=params.get("hash_kind", "splitmix"),
        track_local=bool(params.get("track_local", True)),
        track_eta=params.get("track_eta"),
        kernel=params.get("kernel", "auto"),
    )


def _frame_pairs(frame: Sequence) -> List[Tuple[object, object]]:
    """Extract ``(u, v)`` pairs from a frame of 2- or 3-element records."""
    pairs: List[Tuple[object, object]] = []
    for record in frame:
        if not isinstance(record, (list, tuple)) or not 2 <= len(record) <= 3:
            raise ServiceError(f"frame record is not [u, v(, t)]: {record!r}")
        pairs.append((record[0], record[1]))
    return pairs


def _frame_timestamped(frame: Sequence) -> List[Tuple[object, object, float]]:
    """Extract ``(u, v, t)`` records; monitor frames must carry timestamps."""
    records: List[Tuple[object, object, float]] = []
    for record in frame:
        if not isinstance(record, (list, tuple)) or len(record) != 3:
            raise ServiceError(
                f"monitor frame record is not [u, v, t]: {record!r}"
            )
        records.append((record[0], record[1], float(record[2])))
    return records


def build_engine(
    spec: Dict[str, object], interner: Optional[NodeInterner] = None
) -> "SessionEngine":
    """Build a fresh engine from a validated spec.

    ``interner`` is the service-wide shared interning arena: every REPT
    engine built with it interns into one dense-id table, so many tenants
    over overlapping node universes share the encoding work and memory.
    """
    kind = spec["kind"]
    if kind == "rept":
        return ReptEngine(spec, interner=interner)
    if kind == "rept-elastic":
        # Shard workers are separate processes with their own interning
        # tables; the shared arena does not apply.
        return ElasticReptEngine(spec)
    if kind == "exact":
        return EstimatorEngine(spec, ExactStreamingCounter())
    if kind == "triest":
        return EstimatorEngine(
            spec,
            TriestImprEstimator(
                budget=spec["budget"],
                seed=spec.get("seed", 0),
                track_local=bool(spec.get("track_local", True)),
            ),
        )
    if kind == "monitor":
        return MonitorEngine(spec)
    raise ServiceError(f"unknown engine kind {kind!r}")


class SessionEngine:
    """Uniform facade every session engine implements.

    ``delivered`` counts the stream records fully applied to the engine —
    the session's *delivered prefix*, which is also the ``stream_offset``
    persisted with every checkpoint.
    """

    kind: str = "abstract"

    def __init__(self, spec: Dict[str, object]) -> None:
        self.spec = dict(spec)
        self.delivered = 0

    # -- ingest / queries ----------------------------------------------------

    def ingest_frame(self, frame: Sequence) -> int:
        raise NotImplementedError

    def query_global(self) -> Dict[str, object]:
        raise NotImplementedError

    def query_local(self, nodes: Sequence) -> Dict[str, object]:
        raise NotImplementedError

    def query_windows(self, since: int) -> List[Dict[str, object]]:
        raise ServiceError(f"engine kind {self.kind!r} has no windowed results")

    def advance_watermark(self, time: float) -> Dict[str, object]:
        raise ServiceError(f"engine kind {self.kind!r} has no watermark")

    @property
    def max_event_time(self) -> Optional[float]:
        """Largest event timestamp delivered (None for untimestamped engines)."""
        return None

    # -- durability ----------------------------------------------------------

    def state_payload(self) -> object:
        raise NotImplementedError

    def restore(self, payload: object, stream_offset: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release engine-held resources (worker processes, files)."""


class ReptEngine(SessionEngine):
    """REPT estimator engine over a (possibly shared) interning arena.

    Checkpoints persist the interner-independent
    :meth:`~repro.core.state.GroupStateSet.portable_state`, so a recovered
    process — with a different shared arena and interning order — restores
    bit-identically.
    """

    kind = "rept"

    def __init__(
        self, spec: Dict[str, object], interner: Optional[NodeInterner] = None
    ) -> None:
        super().__init__(spec)
        self.config = _rept_config(spec)
        self.state = GroupStateSet(self.config, interner=interner)

    def ingest_frame(self, frame: Sequence) -> int:
        n = self.state.process_edges(_frame_pairs(frame))
        self.delivered += n
        return n

    def query_global(self) -> Dict[str, object]:
        estimate = self.state.estimate(self.delivered)
        return {
            "global_count": estimate.global_count,
            "edges_processed": estimate.edges_processed,
            "edges_stored": estimate.edges_stored,
        }

    def query_local(self, nodes: Sequence) -> Dict[str, object]:
        estimate = self.state.estimate(self.delivered)
        return {
            "counts": [[node, estimate.local_count(node)] for node in nodes],
            "edges_processed": estimate.edges_processed,
        }

    def state_payload(self) -> object:
        return {"portable": self.state.portable_state()}

    def restore(self, payload: object, stream_offset: int) -> None:
        fresh = GroupStateSet(self.config, interner=self.state.interner)
        fresh.restore_portable(payload["portable"])
        self.state = fresh
        self.delivered = stream_offset


class ElasticReptEngine(SessionEngine):
    """REPT engine hosted on the elastic shard coordinator.

    Functionally the same estimator as :class:`ReptEngine`, but the
    processor groups live as shards on a pool of worker processes managed
    by :class:`repro.cluster.ElasticCoordinator` — so the session keeps
    answering bit-identical estimates through worker failures and
    membership changes.  Checkpoints use the coordinator's portable state,
    which is format-compatible with :class:`ReptEngine` checkpoints: a
    session can be recovered onto either engine kind.
    """

    kind = "rept-elastic"

    def __init__(self, spec: Dict[str, object]) -> None:
        super().__init__(spec)
        # Imported lazily so the service layer does not pay the cluster
        # import (multiprocessing machinery) unless an elastic engine is
        # actually built.
        from repro.cluster import ElasticCoordinator

        self.config = _rept_config(spec)
        self.coordinator = ElasticCoordinator(
            self.config, num_workers=int(spec.get("workers", 2))
        )

    def ingest_frame(self, frame: Sequence) -> int:
        pairs = _frame_pairs(frame)
        self.coordinator.submit(pairs)
        self.delivered += len(pairs)
        return len(pairs)

    def query_global(self) -> Dict[str, object]:
        estimate = self.coordinator.estimate()
        return {
            "global_count": estimate.global_count,
            "edges_processed": estimate.edges_processed,
            "edges_stored": estimate.edges_stored,
            "workers": int(estimate.metadata.get("workers", 0)),
            "worker_deaths": int(estimate.metadata.get("worker_deaths", 0)),
            "shard_migrations": int(
                estimate.metadata.get("shard_migrations", 0)
            ),
        }

    def query_local(self, nodes: Sequence) -> Dict[str, object]:
        estimate = self.coordinator.estimate()
        return {
            "counts": [[node, estimate.local_count(node)] for node in nodes],
            "edges_processed": estimate.edges_processed,
        }

    def state_payload(self) -> object:
        return {"portable": self.coordinator.portable_state()}

    def restore(self, payload: object, stream_offset: int) -> None:
        self.coordinator.restore_portable(
            payload["portable"], edges_processed=stream_offset
        )
        self.delivered = stream_offset

    def close(self) -> None:
        self.coordinator.close()


class EstimatorEngine(SessionEngine):
    """Baseline estimator engine (exact counter, TRIÈST-IMPR).

    The estimator object is self-contained and picklable, so the
    checkpoint payload is simply the estimator itself — reservoir, RNG
    state and counters all travel with it, which is what makes the
    kill-and-recover drill bit-identical for the sampled baselines too.
    """

    def __init__(self, spec: Dict[str, object], estimator) -> None:
        super().__init__(spec)
        self.kind = spec["kind"]
        self.estimator = estimator

    def ingest_frame(self, frame: Sequence) -> int:
        pairs = _frame_pairs(frame)
        self.estimator.process_edges(pairs)
        self.delivered = self.estimator.edges_processed
        return len(pairs)

    def query_global(self) -> Dict[str, object]:
        estimate = self.estimator.estimate()
        return {
            "global_count": estimate.global_count,
            "edges_processed": estimate.edges_processed,
            "edges_stored": estimate.edges_stored,
        }

    def query_local(self, nodes: Sequence) -> Dict[str, object]:
        estimate = self.estimator.estimate()
        return {
            "counts": [[node, estimate.local_count(node)] for node in nodes],
            "edges_processed": estimate.edges_processed,
        }

    def state_payload(self) -> object:
        return {"estimator": self.estimator}

    def restore(self, payload: object, stream_offset: int) -> None:
        self.estimator = payload["estimator"]
        self.delivered = stream_offset


class MonitorEngine(SessionEngine):
    """Sliding-window monitor engine (merge-based REPT chains).

    Frames must carry timestamps.  The service's watermark timer ticks
    :meth:`advance_watermark` with the largest event time seen — possibly
    repeatedly with the same value, which is exactly the re-entrant service
    pattern the monitor's seal path is idempotent against.
    """

    kind = "monitor"

    def __init__(self, spec: Dict[str, object]) -> None:
        super().__init__(spec)
        self.monitor = WindowedTriangleMonitor(
            window_seconds=float(spec["window_seconds"]),
            slide_seconds=(
                float(spec["slide_seconds"]) if "slide_seconds" in spec else None
            ),
            pane_seconds=(
                float(spec["pane_seconds"]) if "pane_seconds" in spec else None
            ),
            config=_rept_config(spec["rept"]),
            allowed_lateness=float(spec.get("allowed_lateness", 0.0)),
            late_policy=spec.get("late_policy", "drop"),
        )
        self._max_time: Optional[float] = None

    def ingest_frame(self, frame: Sequence) -> int:
        records = _frame_timestamped(frame)
        if records:
            newest = max(record[2] for record in records)
            if self._max_time is None or newest > self._max_time:
                self._max_time = newest
        self.monitor.ingest(records)
        self.delivered += len(records)
        return len(records)

    def query_global(self) -> Dict[str, object]:
        latest = self.monitor.results[-1] if self.monitor.results else None
        return {
            "windows_closed": len(self.monitor.results),
            "late_records": self.monitor.late_records,
            "latest": None if latest is None else _window_json(latest),
        }

    def query_local(self, nodes: Sequence) -> Dict[str, object]:
        latest = self.monitor.results[-1] if self.monitor.results else None
        if latest is None:
            return {"counts": [[node, 0.0] for node in nodes], "window": None}
        estimate = latest.estimate
        return {
            "counts": [[node, estimate.local_count(node)] for node in nodes],
            "window": latest.index,
        }

    def query_windows(self, since: int) -> List[Dict[str, object]]:
        return [
            _window_json(result)
            for result in self.monitor.results
            if result.index >= since
        ]

    def advance_watermark(self, time: float) -> Dict[str, object]:
        closed = self.monitor.advance_watermark(time)
        return {
            "closed": len(closed),
            "windows_closed": len(self.monitor.results),
        }

    @property
    def max_event_time(self) -> Optional[float]:
        return self._max_time

    def state_payload(self) -> object:
        return {"monitor": self.monitor, "max_time": self._max_time}

    def restore(self, payload: object, stream_offset: int) -> None:
        self.monitor = payload["monitor"]
        self._max_time = payload.get("max_time")
        self.delivered = stream_offset


def _window_json(result) -> Dict[str, object]:
    return {
        "index": result.index,
        "start": result.start,
        "end": result.end,
        "records": result.records,
        "complete": result.complete,
        "global_count": result.estimate.global_count,
    }


class StreamSession:
    """One tenant's engine plus queue, ingest loop, metrics and durability.

    The session must be :meth:`start`-ed inside a running event loop; all
    methods are then called from that loop only (the service is
    single-threaded by design — concurrency comes from task interleaving
    at await points, which for the engine means frame boundaries).
    """

    def __init__(
        self,
        tenant: str,
        spec: Dict[str, object],
        engine: SessionEngine,
        queue_frames: int = 64,
        backpressure: str = "block",
        checkpoint_dir=None,
        checkpoint_every_frames: int = 0,
        checkpoint_keep: int = 3,
        restart_limit: int = 3,
        audit_log_path=None,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        if queue_frames < 1:
            raise ServiceError(f"queue_frames must be >= 1, got {queue_frames}")
        self.tenant = tenant
        self.spec = dict(spec)
        self.engine = engine
        self.backpressure = backpressure
        self.restart_limit = restart_limit
        self.checkpoint_every_frames = checkpoint_every_frames
        self.metrics = SessionMetrics()
        self.state = "running"
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_frames)
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, keep=checkpoint_keep)
            if checkpoint_dir is not None
            else None
        )
        self.audit_log = (
            JsonlEdgeLogWriter(audit_log_path) if audit_log_path is not None else None
        )
        self._task: Optional[asyncio.Task] = None
        self._frames_since_checkpoint = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the single-writer ingest loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._ingest_loop(), name=f"ingest:{self.tenant}"
            )

    def recover(self, strict: bool = False) -> int:
        """Restore the engine from the newest valid checkpoint, if any.

        Returns the recovered stream offset (0 = fresh start).  Must run
        before :meth:`start` delivers any frame.
        """
        if self.checkpoints is None:
            return 0
        report = self.checkpoints.recover(strict=strict)
        if report.checkpoint is None:
            return 0
        checkpoint = report.checkpoint
        meta_spec = checkpoint.meta.get("engine")
        if meta_spec is not None and meta_spec != self.spec:
            raise ServiceError(
                f"checkpoint for tenant {self.tenant!r} was written by engine "
                f"{meta_spec!r}, session opened with {self.spec!r}"
            )
        self.engine.restore(checkpoint.payload, checkpoint.stream_offset)
        return checkpoint.stream_offset

    async def drain(self) -> None:
        """Stop admitting frames, deliver everything queued, checkpoint, close."""
        if self.state == "running":
            self.state = "draining"
        await self.queue.join()
        try:
            self.checkpoint()
        except ServiceError:
            pass  # already counted; drain must still complete
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self.audit_log is not None:
            self.audit_log.close()
        self.engine.close()
        self.state = "closed"

    # -- ingestion -----------------------------------------------------------

    async def offer(self, frame: Sequence) -> Dict[str, object]:
        """Enqueue one frame under the session's backpressure policy."""
        if self.state != "running":
            raise ServiceError(
                f"session {self.tenant!r} is {self.state}; not accepting frames"
            )
        if self.backpressure == "block":
            await self.queue.put(frame)
        else:
            try:
                self.queue.put_nowait(frame)
            except asyncio.QueueFull:
                self.metrics.record_shed(len(frame))
                return {
                    "accepted": False,
                    "shed": True,
                    "queued": self.queue.qsize(),
                }
        return {"accepted": True, "shed": False, "queued": self.queue.qsize()}

    async def _ingest_loop(self) -> None:
        while True:
            frame = await self.queue.get()
            try:
                if self.state != "failed":
                    self._deliver(frame)
                else:
                    # Exhausted sessions keep draining (and discarding) so
                    # queue.join() at shutdown can still complete.
                    self.metrics.dropped_frames += 1
            except Exception:
                self.metrics.ingest_errors += 1
                self.metrics.dropped_frames += 1
                if self.metrics.restarts < self.restart_limit:
                    # Supervised restart: the faulted frame was dropped
                    # before any engine mutation, the loop carries on.
                    self.metrics.restarts += 1
                else:
                    self.state = "failed"
            finally:
                self.queue.task_done()

    def _deliver(self, frame: Sequence) -> None:
        maybe_fail("service-ingest", tenant=self.tenant)
        n = self.engine.ingest_frame(frame)
        self.metrics.record_frame(n)
        if self.audit_log is not None:
            self.audit_log.append_batch(frame)
        self._frames_since_checkpoint += 1
        if (
            self.checkpoint_every_frames
            and self._frames_since_checkpoint >= self.checkpoint_every_frames
        ):
            try:
                self.checkpoint()
            except ServiceError:
                pass  # counted in metrics; periodic checkpointing retries later

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Write one durable checkpoint of the engine's delivered prefix.

        Runs synchronously on the event loop: the engine cannot be mutated
        mid-serialisation because the single writer only runs at await
        points.  Failures (including injected ``service-checkpoint``
        faults) are counted and re-raised as :class:`ServiceError`; earlier
        generations are never damaged by a failed write.
        """
        if self.checkpoints is None:
            return {"enabled": False}
        self._frames_since_checkpoint = 0
        try:
            maybe_fail("service-checkpoint", tenant=self.tenant)
            if self.audit_log is not None:
                self.audit_log.flush(sync=True)
            checkpoint = self.checkpoints.save(
                self.engine.state_payload(),
                stream_offset=self.engine.delivered,
                meta={"tenant": self.tenant, "engine": self.spec},
            )
        except Exception as exc:
            self.metrics.checkpoint_failures += 1
            raise ServiceError(
                f"checkpoint failed for tenant {self.tenant!r}: {exc}"
            ) from exc
        self.metrics.checkpoints_written += 1
        return {
            "enabled": True,
            "generation": checkpoint.generation,
            "stream_offset": checkpoint.stream_offset,
        }

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        payload = self.metrics.to_json(queue_depth=self.queue.qsize())
        payload.update(
            {
                "tenant": self.tenant,
                "state": self.state,
                "engine": self.engine.kind,
                "delivered": self.engine.delivered,
            }
        )
        return payload
