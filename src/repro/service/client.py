"""Service clients: in-process (tests) and TCP (load generator, tools).

Both clients expose the same surface — an async :meth:`call` taking an
operation name plus fields and returning the response dict, with
``ok: false`` responses raised as :class:`~repro.exceptions.ServiceError`
(carrying the response's error ``code`` as ``exc.code``) — so tests
written against the in-process client exercise exactly the semantics the
TCP path serves.

The TCP client pipelines: requests carry incrementing ids, a background
reader task resolves the matching futures, so many coroutines can share
one connection (each loadgen tenant typically still opens its own, which
also gives per-tenant TCP backpressure under the ``block`` policy).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.durability.retry import RetryPolicy
from repro.exceptions import ProtocolError, ServiceError
from repro.service.protocol import PROTOCOL_VERSION, decode_line, encode_line

#: Operations safe to re-send transparently after a reconnect: pure reads.
#: ``ingest`` is deliberately absent — re-sending a frame the server may
#: already have applied would double-count edges, so ingest failures
#: surface to the caller (who owns the delivery ledger) even though the
#: client reconnects underneath.
IDEMPOTENT_OPS = frozenset(
    {"query_global", "query_local", "query_windows", "stats"}
)


def _raise_on_error(response: Dict[str, object]) -> Dict[str, object]:
    if not response.get("ok"):
        error = ServiceError(str(response.get("error", "request failed")))
        error.code = response.get("code", "internal")
        raise error
    return response


class _BaseClient:
    """Shared convenience wrappers over :meth:`call`."""

    async def call(self, op: str, **fields: object) -> Dict[str, object]:
        raise NotImplementedError

    async def open(self, tenant: str, engine: Optional[dict] = None, **fields):
        payload = dict(fields)
        if engine is not None:
            payload["engine"] = engine
        return await self.call("open", tenant=tenant, **payload)

    async def ingest(self, tenant: str, frame, timestamped: bool = False):
        key = "records" if timestamped else "edges"
        return await self.call("ingest", tenant=tenant, **{key: frame})

    async def query_global(self, tenant: str):
        return await self.call("query_global", tenant=tenant)

    async def query_local(self, tenant: str, nodes):
        return await self.call("query_local", tenant=tenant, nodes=list(nodes))

    async def query_windows(self, tenant: str, since: int = 0):
        return await self.call("query_windows", tenant=tenant, since=since)

    async def advance_watermark(self, tenant: str, time: float):
        return await self.call("advance_watermark", tenant=tenant, time=time)

    async def stats(self, tenant: Optional[str] = None):
        if tenant is None:
            return await self.call("stats")
        return await self.call("stats", tenant=tenant)

    async def checkpoint(self, tenant: Optional[str] = None):
        if tenant is None:
            return await self.call("checkpoint")
        return await self.call("checkpoint", tenant=tenant)

    async def shutdown(self):
        return await self.call("shutdown")


class InProcessClient(_BaseClient):
    """Client bound directly to an :class:`EstimationService` instance.

    Skips serialisation but not validation: requests go through the same
    :meth:`handle_request` dispatch (including protocol validation) as the
    wire transports.
    """

    def __init__(self, service) -> None:
        self.service = service

    async def call(self, op: str, **fields: object) -> Dict[str, object]:
        request = {"v": PROTOCOL_VERSION, "op": op}
        request.update(fields)
        return _raise_on_error(await self.service.handle_request(request))


class TcpServiceClient(_BaseClient):
    """Pipelined NDJSON client over one TCP connection, with reconnect.

    A dropped connection is repaired transparently: the client redials
    ``host:port`` under its :class:`~repro.durability.retry.RetryPolicy`
    (exponential backoff, deterministic jitter).  Requests in flight when
    the drop happened are completed according to idempotency — pure reads
    (:data:`IDEMPOTENT_OPS`) are re-sent on the fresh connection and
    answered as if nothing happened; mutating operations (``ingest``,
    ``open``) raise a ``connection-dropped`` :class:`ServiceError`,
    because the server may or may not have applied them and only the
    caller can decide how to reconcile — but the client reconnects
    underneath so the *next* call finds a healthy connection.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._retry = retry if retry is not None else RetryPolicy()
        self._dial_lock = asyncio.Lock()
        self._closed = False
        self.reconnects = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, retry: Optional[RetryPolicy] = None
    ) -> "TcpServiceClient":
        client = cls(retry=retry)
        client._host, client._port = host, port
        await client._dial()
        return client

    async def _dial(self) -> None:
        assert self._host is not None and self._port is not None
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"service-client:{self._host}:{self._port}"
        )

    async def _drop_connection(self, broken: Optional[asyncio.StreamWriter]) -> None:
        """Tear down the broken transport, failing whatever was pending.

        ``broken`` is the writer the failed request used: when a concurrent
        caller has already repaired the transport, the current one is left
        alone.
        """
        if self._writer is not broken:
            return
        writer, self._writer = self._writer, None
        reader_task, self._reader_task = self._reader_task, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if reader_task is not None:
            await reader_task

    async def _reconnect(self) -> None:
        """Redial under the retry policy; raises after the last attempt.

        Serialised by a lock so pipelined callers that observe the same
        drop repair the transport once, not once each.
        """
        async with self._dial_lock:
            if self._writer is not None:
                return  # a concurrent caller already reconnected
            delays = self._retry.delays()
            for attempt in range(self._retry.max_attempts):
                try:
                    await self._dial()
                except (ConnectionError, OSError) as exc:
                    if attempt >= len(delays):
                        error = ServiceError(
                            f"reconnect to {self._host}:{self._port} failed "
                            f"after {self._retry.max_attempts} attempts: {exc}"
                        )
                        error.code = "connection-dropped"
                        raise error from exc
                    await asyncio.sleep(delays[attempt])
                else:
                    self.reconnects += 1
                    return

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_line(line)
                except ProtocolError:
                    continue  # unparseable server line; matching call times out
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            broken = ServiceError("connection closed by server")
            broken.code = "session-closed"
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(broken)
            self._pending.clear()

    async def _send_once(self, op: str, fields: Dict[str, object]):
        request_id = next(self._ids)
        request = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
        request.update(fields)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            assert self._writer is not None
            self._writer.write(encode_line(request))
            await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    @staticmethod
    def _is_drop(exc: BaseException) -> bool:
        if isinstance(exc, (ConnectionError, OSError)):
            return True
        return (
            isinstance(exc, ServiceError)
            and getattr(exc, "code", None) == "session-closed"
        )

    async def call(self, op: str, **fields: object) -> Dict[str, object]:
        if self._closed or self._host is None:
            raise ServiceError("client is not connected")
        for resend in (False, True):
            if self._writer is None:
                await self._reconnect()
            writer = self._writer
            try:
                response = await self._send_once(op, fields)
            except BaseException as exc:
                if not self._is_drop(exc):
                    raise
                await self._drop_connection(writer)
                if not resend and op in IDEMPOTENT_OPS:
                    continue
                # Mutating op (or a second drop): repair the transport
                # best-effort for the next caller, then surface the drop.
                try:
                    await self._reconnect()
                except ServiceError:
                    pass
                error = ServiceError(
                    f"connection dropped during {op!r}; not re-sent "
                    f"({'already re-sent once' if resend else 'not idempotent'})"
                )
                error.code = "connection-dropped"
                raise error from exc
            else:
                return _raise_on_error(response)
        raise AssertionError("unreachable")  # pragma: no cover

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
        if self._reader_task is not None:
            await self._reader_task
            self._reader_task = None
