"""Service clients: in-process (tests) and TCP (load generator, tools).

Both clients expose the same surface — an async :meth:`call` taking an
operation name plus fields and returning the response dict, with
``ok: false`` responses raised as :class:`~repro.exceptions.ServiceError`
(carrying the response's error ``code`` as ``exc.code``) — so tests
written against the in-process client exercise exactly the semantics the
TCP path serves.

The TCP client pipelines: requests carry incrementing ids, a background
reader task resolves the matching futures, so many coroutines can share
one connection (each loadgen tenant typically still opens its own, which
also gives per-tenant TCP backpressure under the ``block`` policy).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.exceptions import ProtocolError, ServiceError
from repro.service.protocol import PROTOCOL_VERSION, decode_line, encode_line


def _raise_on_error(response: Dict[str, object]) -> Dict[str, object]:
    if not response.get("ok"):
        error = ServiceError(str(response.get("error", "request failed")))
        error.code = response.get("code", "internal")
        raise error
    return response


class _BaseClient:
    """Shared convenience wrappers over :meth:`call`."""

    async def call(self, op: str, **fields: object) -> Dict[str, object]:
        raise NotImplementedError

    async def open(self, tenant: str, engine: Optional[dict] = None, **fields):
        payload = dict(fields)
        if engine is not None:
            payload["engine"] = engine
        return await self.call("open", tenant=tenant, **payload)

    async def ingest(self, tenant: str, frame, timestamped: bool = False):
        key = "records" if timestamped else "edges"
        return await self.call("ingest", tenant=tenant, **{key: frame})

    async def query_global(self, tenant: str):
        return await self.call("query_global", tenant=tenant)

    async def query_local(self, tenant: str, nodes):
        return await self.call("query_local", tenant=tenant, nodes=list(nodes))

    async def query_windows(self, tenant: str, since: int = 0):
        return await self.call("query_windows", tenant=tenant, since=since)

    async def advance_watermark(self, tenant: str, time: float):
        return await self.call("advance_watermark", tenant=tenant, time=time)

    async def stats(self, tenant: Optional[str] = None):
        if tenant is None:
            return await self.call("stats")
        return await self.call("stats", tenant=tenant)

    async def checkpoint(self, tenant: Optional[str] = None):
        if tenant is None:
            return await self.call("checkpoint")
        return await self.call("checkpoint", tenant=tenant)

    async def shutdown(self):
        return await self.call("shutdown")


class InProcessClient(_BaseClient):
    """Client bound directly to an :class:`EstimationService` instance.

    Skips serialisation but not validation: requests go through the same
    :meth:`handle_request` dispatch (including protocol validation) as the
    wire transports.
    """

    def __init__(self, service) -> None:
        self.service = service

    async def call(self, op: str, **fields: object) -> Dict[str, object]:
        request = {"v": PROTOCOL_VERSION, "op": op}
        request.update(fields)
        return _raise_on_error(await self.service.handle_request(request))


class TcpServiceClient(_BaseClient):
    """Pipelined NDJSON client over one TCP connection."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "TcpServiceClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop(), name=f"service-client:{host}:{port}"
        )
        return client

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_line(line)
                except ProtocolError:
                    continue  # unparseable server line; matching call times out
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            broken = ServiceError("connection closed by server")
            broken.code = "session-closed"
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(broken)
            self._pending.clear()

    async def call(self, op: str, **fields: object) -> Dict[str, object]:
        if self._writer is None:
            raise ServiceError("client is not connected")
        request_id = next(self._ids)
        request = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
        request.update(fields)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_line(request))
        await self._writer.drain()
        return _raise_on_error(await future)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
        if self._reader_task is not None:
            await self._reader_task
            self._reader_task = None
