"""The estimation service: session registry, request dispatch, transports.

:class:`EstimationService` hosts many :class:`~repro.service.session.StreamSession`
objects — one per tenant — on a single asyncio event loop.  All REPT
engines share one :class:`~repro.core.interning.NodeInterner` arena, so
tenants observing overlapping node universes share the dense-id table.

The service is transport-agnostic: :meth:`EstimationService.handle_request`
takes a request dict and returns a response dict (the in-process client
calls it directly); :meth:`serve_tcp` frames the same dispatch over
newline-delimited JSON on a TCP socket, and :meth:`serve_stdio` over
stdin/stdout for subprocess embedding.

Two background timers run while the service is live:

* the **checkpoint timer** periodically checkpoints every running session
  (failures are counted per session and survived);
* the **watermark timer** ticks every monitor engine's watermark with the
  largest event time it has delivered — deliberately re-issuing the same
  value when no new data arrived, which is safe because the monitor's seal
  path is idempotent (see the monitor's service-timer regression tests).
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.interning import NodeInterner
from repro.exceptions import ProtocolError, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.session import (
    StreamSession,
    build_engine,
    validate_engine_spec,
)

SERVICE_NAME = "rept-estimation-service"


def _fail(code: str, message: str) -> ServiceError:
    error = ServiceError(message)
    error.code = code  # consumed by the dispatcher's error mapping
    return error


class EstimationService:
    """Multi-tenant estimator/monitor host with a dict-in/dict-out API.

    Parameters
    ----------
    checkpoint_root:
        Directory holding one checkpoint subdirectory per tenant.  When
        given, sessions checkpoint durably and :meth:`recover_sessions`
        reopens every tenant found under it on start; None disables
        durability entirely.
    queue_frames / backpressure / checkpoint_every_frames / restart_limit:
        Session defaults; ``open`` may override queue and backpressure per
        tenant.
    checkpoint_interval_seconds / watermark_interval_seconds:
        Periods of the two background timers (None disables a timer).
    """

    def __init__(
        self,
        checkpoint_root=None,
        queue_frames: int = 64,
        backpressure: str = "block",
        checkpoint_every_frames: int = 0,
        checkpoint_interval_seconds: Optional[float] = None,
        watermark_interval_seconds: Optional[float] = None,
        restart_limit: int = 3,
        audit_logs: bool = False,
    ) -> None:
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.queue_frames = queue_frames
        self.backpressure = backpressure
        self.checkpoint_every_frames = checkpoint_every_frames
        self.checkpoint_interval_seconds = checkpoint_interval_seconds
        self.watermark_interval_seconds = watermark_interval_seconds
        self.restart_limit = restart_limit
        self.audit_logs = audit_logs
        self.interner = NodeInterner()
        self.sessions: Dict[str, StreamSession] = {}
        self.shutdown_complete = asyncio.Event()
        self._accepting = True
        self._timers: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------

    def recover_sessions(self) -> List[Tuple[str, int]]:
        """Reopen every tenant with a checkpoint under ``checkpoint_root``.

        Returns ``(tenant, recovered_offset)`` pairs.  Tenants whose
        directory holds no valid checkpoint are skipped (nothing to
        recover); engine specs come from checkpoint meta, so no external
        registry is needed.
        """
        recovered: List[Tuple[str, int]] = []
        if self.checkpoint_root is None or not self.checkpoint_root.is_dir():
            return recovered
        for entry in sorted(self.checkpoint_root.iterdir()):
            if not entry.is_dir() or entry.name in self.sessions:
                continue
            from repro.durability.checkpoint import CheckpointManager

            report = CheckpointManager(entry).recover()
            if report.checkpoint is None:
                continue
            spec = report.checkpoint.meta.get("engine")
            if spec is None:
                continue
            session, offset = self._open_session(entry.name, spec)
            recovered.append((session.tenant, offset))
        return recovered

    def start_timers(self) -> None:
        """Start the periodic checkpoint and watermark-tick timers."""
        loop = asyncio.get_running_loop()
        if self.checkpoint_interval_seconds is not None:
            self._timers.append(
                loop.create_task(
                    self._timer(self.checkpoint_interval_seconds, self._checkpoint_tick),
                    name="service-checkpoint-timer",
                )
            )
        if self.watermark_interval_seconds is not None:
            self._timers.append(
                loop.create_task(
                    self._timer(self.watermark_interval_seconds, self._watermark_tick),
                    name="service-watermark-timer",
                )
            )

    async def _timer(self, interval: float, tick) -> None:
        while True:
            await asyncio.sleep(interval)
            tick()

    def _checkpoint_tick(self) -> None:
        for session in self.sessions.values():
            if session.state == "running":
                try:
                    session.checkpoint()
                except ServiceError:
                    pass  # counted in the session's metrics

    def _watermark_tick(self) -> None:
        for session in self.sessions.values():
            engine = session.engine
            newest = engine.max_event_time
            if newest is not None and session.state in ("running", "draining"):
                try:
                    engine.advance_watermark(newest)
                except ServiceError:
                    pass  # non-monitor engines with timestamps: no watermark

    async def shutdown(self) -> List[str]:
        """Graceful drain: reject new frames, drain every session, stop."""
        self._accepting = False
        drained = []
        for tenant, session in list(self.sessions.items()):
            await session.drain()
            drained.append(tenant)
        for timer in self._timers:
            timer.cancel()
        for timer in self._timers:
            try:
                await timer
            except asyncio.CancelledError:
                pass
        self._timers = []
        self.shutdown_complete.set()
        return drained

    # -- request dispatch ----------------------------------------------------

    async def handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one request dict; always returns a response dict."""
        try:
            op = validate_request(request)
        except ProtocolError as exc:
            return error_response(request if isinstance(request, dict) else None,
                                  "bad-request", str(exc))
        try:
            handler = getattr(self, f"_op_{op}")
            return await handler(request)
        except ProtocolError as exc:
            return error_response(request, "bad-request", str(exc))
        except ServiceError as exc:
            return error_response(request, getattr(exc, "code", "internal"), str(exc))
        except Exception as exc:  # the service must answer, not crash
            return error_response(request, "internal", f"{type(exc).__name__}: {exc}")

    def _session(self, request: Dict[str, object]) -> StreamSession:
        tenant = request.get("tenant")
        if not isinstance(tenant, str):
            raise ProtocolError("request needs a string 'tenant' field")
        session = self.sessions.get(tenant)
        if session is None:
            raise _fail("unknown-tenant", f"no open session for tenant {tenant!r}")
        return session

    def _open_session(
        self,
        tenant: str,
        spec: Dict[str, object],
        queue_frames: Optional[int] = None,
        backpressure: Optional[str] = None,
    ) -> Tuple[StreamSession, int]:
        spec = validate_engine_spec(spec)
        checkpoint_dir = (
            self.checkpoint_root / tenant if self.checkpoint_root is not None else None
        )
        audit_path = (
            checkpoint_dir / "audit.jsonl"
            if self.audit_logs and checkpoint_dir is not None
            else None
        )
        session = StreamSession(
            tenant=tenant,
            spec=spec,
            engine=build_engine(spec, interner=self.interner),
            queue_frames=queue_frames or self.queue_frames,
            backpressure=backpressure or self.backpressure,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_frames=self.checkpoint_every_frames,
            restart_limit=self.restart_limit,
            audit_log_path=audit_path,
        )
        offset = session.recover()
        session.start()
        self.sessions[tenant] = session
        return session, offset

    # -- operations ----------------------------------------------------------

    async def _op_hello(self, request):
        return ok_response(
            request,
            server=SERVICE_NAME,
            protocol=PROTOCOL_VERSION,
            sessions=len(self.sessions),
        )

    async def _op_open(self, request):
        if not self._accepting:
            raise _fail("session-closed", "service is shutting down")
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("open needs a non-empty string 'tenant'")
        if any(sep in tenant for sep in ("/", "\\", "..")):
            raise ProtocolError("tenant names cannot contain path separators")
        existing = self.sessions.get(tenant)
        spec = request.get("engine")
        if existing is not None:
            if spec is not None and validate_engine_spec(spec) != existing.spec:
                raise _fail(
                    "engine-mismatch",
                    f"tenant {tenant!r} is open with engine "
                    f"{existing.spec!r}; reopen must match or omit 'engine'",
                )
            return ok_response(
                request,
                tenant=tenant,
                created=False,
                delivered=existing.engine.delivered,
            )
        if spec is None:
            raise ProtocolError("open of a new tenant needs an 'engine' spec")
        session, offset = self._open_session(
            tenant,
            spec,
            queue_frames=request.get("queue_frames"),
            backpressure=request.get("backpressure"),
        )
        return ok_response(
            request,
            tenant=tenant,
            created=True,
            recovered=offset > 0,
            delivered=session.engine.delivered,
        )

    async def _op_ingest(self, request):
        if not self._accepting:
            raise _fail("session-closed", "service is shutting down")
        session = self._session(request)
        frame = request.get("records", request.get("edges"))
        if not isinstance(frame, list):
            raise ProtocolError("ingest needs a list 'edges' or 'records' frame")
        outcome = await session.offer(frame)
        return ok_response(request, **outcome)

    async def _op_query_global(self, request):
        session = self._session(request)
        started = time.perf_counter()
        result = session.engine.query_global()
        session.metrics.record_query(time.perf_counter() - started)
        return ok_response(request, **result)

    async def _op_query_local(self, request):
        session = self._session(request)
        nodes = request.get("nodes")
        if not isinstance(nodes, list):
            raise ProtocolError("query_local needs a list 'nodes'")
        started = time.perf_counter()
        result = session.engine.query_local(nodes)
        session.metrics.record_query(time.perf_counter() - started)
        return ok_response(request, **result)

    async def _op_query_windows(self, request):
        session = self._session(request)
        since = request.get("since", 0)
        if not isinstance(since, int):
            raise ProtocolError("query_windows 'since' must be an int")
        started = time.perf_counter()
        windows = session.engine.query_windows(since)
        session.metrics.record_query(time.perf_counter() - started)
        return ok_response(request, windows=windows)

    async def _op_advance_watermark(self, request):
        session = self._session(request)
        value = request.get("time")
        if not isinstance(value, (int, float)):
            raise ProtocolError("advance_watermark needs a numeric 'time'")
        result = session.engine.advance_watermark(float(value))
        return ok_response(request, **result)

    async def _op_stats(self, request):
        tenant = request.get("tenant")
        if tenant is not None:
            session = self._session(request)
            return ok_response(request, stats=session.stats())
        per_tenant = {
            name: session.stats() for name, session in self.sessions.items()
        }
        aggregate = {
            "sessions": len(per_tenant),
            "ingested_records": sum(s["ingested_records"] for s in per_tenant.values()),
            "ingest_eps": sum(s["ingest_eps"] for s in per_tenant.values()),
            "shed_frames": sum(s["shed_frames"] for s in per_tenant.values()),
            "ingest_errors": sum(s["ingest_errors"] for s in per_tenant.values()),
            "checkpoint_failures": sum(
                s["checkpoint_failures"] for s in per_tenant.values()
            ),
        }
        return ok_response(request, sessions=per_tenant, aggregate=aggregate)

    async def _op_checkpoint(self, request):
        tenant = request.get("tenant")
        sessions = (
            [self._session(request)]
            if tenant is not None
            else list(self.sessions.values())
        )
        results = {}
        failures = 0
        for session in sessions:
            try:
                results[session.tenant] = session.checkpoint()
            except ServiceError as exc:
                failures += 1
                results[session.tenant] = {"enabled": True, "error": str(exc)}
        if failures and tenant is not None:
            raise _fail("checkpoint-failed", str(results[tenant].get("error")))
        return ok_response(request, checkpoints=results, failures=failures)

    async def _op_shutdown(self, request):
        drained = await self.shutdown()
        return ok_response(request, drained=drained)

    # -- transports ----------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the TCP listener; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        return self._server.sockets[0].getsockname()[:2]

    async def wait_closed(self) -> None:
        """Block until shutdown completes, then close the listener."""
        await self.shutdown_complete.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ProtocolError as exc:
                    writer.write(
                        encode_line(error_response(None, "bad-request", str(exc)))
                    )
                    await writer.drain()
                    continue
                response = await self.handle_request(request)
                writer.write(encode_line(response))
                await writer.drain()
                if request.get("op") == "shutdown" and response.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-conversation; nothing to clean up
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def serve_stdio(self) -> None:
        """Serve requests line-by-line over stdin/stdout until EOF/shutdown.

        Intended for subprocess embedding: the parent writes request lines
        to our stdin and reads response lines from our stdout.  stdin is
        consumed through an executor thread so the event loop (and the
        ingest loops) stay free while waiting for input.
        """
        loop = asyncio.get_running_loop()
        stdout = sys.stdout
        while True:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                await self.shutdown()
                return
            if not line.strip():
                continue
            request = None
            try:
                request = decode_line(line.encode("utf-8"))
            except ProtocolError as exc:
                response = error_response(None, "bad-request", str(exc))
            else:
                response = await self.handle_request(request)
            stdout.write(encode_line(response).decode("utf-8"))
            stdout.flush()
            if isinstance(request, dict) and request.get("op") == "shutdown":
                return
