"""CLI artefacts wrapping the service: ``serve`` and ``loadgen``.

``rept-experiment serve`` hosts the estimation service on a TCP port until
a client sends ``shutdown`` (or ``--duration`` elapses), recovering every
tenant found under ``--checkpoint-dir`` on start.  Under ``--chaos`` the
armed fault plan reaches the ``service-ingest`` and ``service-checkpoint``
sites, exercising supervised restarts and checkpoint-failure handling in a
live server.

``rept-experiment loadgen`` drives a multi-tenant load — against an
external server (``--host``/``--port``) or, by default, a self-hosted
in-process TCP loopback server — and reports delivered throughput plus
query latency; ``--bench-out`` writes the ``BENCH_service.json`` payload
the regression gate checks.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from typing import Optional

from repro.experiments.spec import ExperimentResult
from repro.service.client import TcpServiceClient
from repro.service.loadgen import (
    DEFAULT_ENGINE,
    measure_calibration_eps,
    run_loadgen,
)
from repro.service.server import EstimationService

#: Readiness line printed by ``serve`` once the socket is bound —
#: supervisors (the smoke script, tests) parse the port from it.
READY_PREFIX = "SERVICE-READY"


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    checkpoint_dir: Optional[str] = None,
    duration_seconds: Optional[float] = None,
    checkpoint_interval_seconds: float = 1.0,
    watermark_interval_seconds: float = 0.5,
    queue_frames: int = 64,
    backpressure: str = "block",
    announce: bool = True,
) -> ExperimentResult:
    """Host the estimation service over TCP until shutdown (or timeout).

    Prints ``SERVICE-READY <host> <port>`` once the listener is bound so a
    parent process can connect; returns an :class:`ExperimentResult`
    summarising the sessions served after shutdown.
    """

    async def _serve():
        service = EstimationService(
            checkpoint_root=checkpoint_dir,
            queue_frames=queue_frames,
            backpressure=backpressure,
            checkpoint_interval_seconds=checkpoint_interval_seconds,
            watermark_interval_seconds=watermark_interval_seconds,
        )
        recovered = service.recover_sessions()
        bound_host, bound_port = await service.serve_tcp(host, port)
        service.start_timers()
        if announce:
            print(f"{READY_PREFIX} {bound_host} {bound_port}", flush=True)
        if duration_seconds is not None:
            try:
                await asyncio.wait_for(
                    service.shutdown_complete.wait(), timeout=duration_seconds
                )
            except asyncio.TimeoutError:
                await service.shutdown()
        else:
            await service.shutdown_complete.wait()
        await service.wait_closed()
        stats = {
            tenant: session.stats() for tenant, session in service.sessions.items()
        }
        return recovered, (bound_host, bound_port), stats

    recovered, bound, stats = asyncio.run(_serve())
    rows = [
        [
            tenant,
            s["engine"],
            s["delivered"],
            s["ingest_errors"],
            s["restarts"],
            s["checkpoints_written"],
            s["checkpoint_failures"],
        ]
        for tenant, s in sorted(stats.items())
    ]
    headers = [
        "tenant",
        "engine",
        "delivered",
        "ingest_errors",
        "restarts",
        "checkpoints",
        "ckpt_failures",
    ]
    lines = [
        f"estimation service on {bound[0]}:{bound[1]} — "
        f"{len(stats)} session(s), {len(recovered)} recovered on start",
        "  ".join(headers),
    ]
    for row in rows:
        lines.append("  ".join(str(cell) for cell in row))
    return ExperimentResult(
        experiment_id="serve",
        description="always-on estimation service (TCP, drained)",
        rows=rows,
        headers=headers,
        text="\n".join(lines),
        metadata={
            "host": bound[0],
            "port": bound[1],
            "checkpoint_dir": checkpoint_dir,
            "recovered": recovered,
            "backpressure": backpressure,
        },
    )


def service_loadgen(
    host: Optional[str] = None,
    port: Optional[int] = None,
    tenants: int = 3,
    duration_seconds: float = 3.0,
    rate_eps: float = 50_000.0,
    frame_records: int = 2000,
    queue_frames: int = 64,
    backpressure: str = "block",
    seed: int = 7,
    bench_out: Optional[str] = None,
    calibration_records: int = 100_000,
) -> ExperimentResult:
    """Drive the multi-tenant load generator; optionally write the bench file.

    With no ``host``/``port`` a loopback server is hosted in-process (the
    self-contained bench mode); otherwise the load targets the external
    server — which must already be running.
    """

    async def _run():
        service = None
        if host is None or port is None:
            service = EstimationService(
                queue_frames=queue_frames, backpressure=backpressure
            )
            bound_host, bound_port = await service.serve_tcp()
        else:
            bound_host, bound_port = host, port

        async def factory():
            return await TcpServiceClient.connect(bound_host, bound_port)

        report = await run_loadgen(
            factory,
            tenants=tenants,
            duration_seconds=duration_seconds,
            rate_eps=rate_eps,
            frame_records=frame_records,
            seed=seed,
        )
        if service is not None:
            control = await factory()
            await control.shutdown()
            await control.close()
            await service.wait_closed()
        report["self_hosted"] = service is not None
        return report

    report = asyncio.run(_run())
    report["benchmark"] = "service-loadgen"
    report["calibration_eps"] = measure_calibration_eps(
        num_records=calibration_records, engine=report["engine"], seed=seed
    )
    report["service_to_raw_ratio"] = report["aggregate_eps"] / max(
        report["calibration_eps"], 1e-9
    )
    if bench_out:
        Path(bench_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {bench_out}", file=sys.stderr)

    headers = ["metric", "value"]
    rows = [
        ["tenants", tenants],
        ["duration_s", round(report["elapsed_seconds"], 3)],
        ["submitted_records", report["submitted_records"]],
        ["delivered_records", report["delivered_records"]],
        ["aggregate_eps", round(report["aggregate_eps"], 1)],
        ["calibration_eps", round(report["calibration_eps"], 1)],
        ["service_to_raw_ratio", round(report["service_to_raw_ratio"], 4)],
        ["shed_frames", report["shed_frames"]],
        ["query_p50_ms", report["query"]["p50_ms"]],
        ["query_p95_ms", report["query"]["p95_ms"]],
    ]
    lines = [
        f"service loadgen: {tenants} tenant(s) × {rate_eps:.0f} eps target, "
        f"{report['aggregate_eps']:.0f} eps delivered aggregate",
        "  ".join(headers),
    ]
    for row in rows:
        lines.append(f"{row[0]}  {row[1]}")
    return ExperimentResult(
        experiment_id="loadgen",
        description="multi-tenant service load generation",
        rows=rows,
        headers=headers,
        text="\n".join(lines),
        metadata=report,
    )
