"""Always-on estimation service: async ingest/query runtime.

The batch experiment harness answers "what was the triangle count of this
stream"; this package answers the *deployment* form of the paper's
traffic-monitoring motivation — estimators and sliding-window monitors
that stay resident, ingest edge frames from many tenants concurrently,
and serve estimates while the stream is still arriving.

Layers (bottom up):

* :mod:`repro.service.protocol` — versioned NDJSON request/response
  schema, transport-agnostic;
* :mod:`repro.service.metrics` — per-session counters, rates and query
  latency percentiles;
* :mod:`repro.service.session` — engine facades over the estimators and
  the monitor, plus the single-writer per-tenant ingest loop with bounded
  queues, explicit backpressure, supervised restarts and durable
  checkpoints;
* :mod:`repro.service.server` — the session registry, request dispatch,
  background timers and TCP/stdio transports;
* :mod:`repro.service.client` — in-process and pipelined TCP clients;
* :mod:`repro.service.loadgen` — the multi-tenant load generator behind
  ``BENCH_service.json`` and the CI smoke job.
"""

from repro.service.client import InProcessClient, TcpServiceClient
from repro.service.metrics import LatencyReservoir, RateMeter, SessionMetrics
from repro.service.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.server import EstimationService
from repro.service.session import (
    BACKPRESSURE_POLICIES,
    ENGINE_KINDS,
    StreamSession,
    build_engine,
    validate_engine_spec,
)

__all__ = [
    "EstimationService",
    "StreamSession",
    "InProcessClient",
    "TcpServiceClient",
    "SessionMetrics",
    "LatencyReservoir",
    "RateMeter",
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "ENGINE_KINDS",
    "BACKPRESSURE_POLICIES",
    "build_engine",
    "validate_engine_spec",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
    "validate_request",
]
