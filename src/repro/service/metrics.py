"""Per-session service metrics: counters, rates and latency percentiles.

Everything here is cheap enough to update on the hot ingest path: counters
are plain ints, the rate meter keeps a short deque of (time, count) events,
and the latency reservoir keeps the most recent N observations (percentiles
over a bounded recent window, not the full history — a service cares about
*current* latency).  ``to_json`` renders the lot as the ``stats`` response
payload.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class LatencyReservoir:
    """Bounded window of recent latency observations, in seconds.

    Keeps the newest ``capacity`` samples; percentiles are computed over a
    sorted copy on demand (the window is small, queries are rare relative
    to observations).
    """

    def __init__(self, capacity: int = 512) -> None:
        self._samples: Deque[float] = deque(maxlen=capacity)
        self.count = 0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def percentile(self, q: float) -> Optional[float]:
        """Return the ``q``-quantile (0..1) of the window, None when empty.

        Nearest-rank on the sorted window — exact for the small windows
        used here, and monotone in ``q``.
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "p50_ms": _to_ms(self.percentile(0.50)),
            "p95_ms": _to_ms(self.percentile(0.95)),
            "p99_ms": _to_ms(self.percentile(0.99)),
        }


def _to_ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else seconds * 1000.0


class RateMeter:
    """Sliding-window events-per-second meter.

    ``tick(n)`` records ``n`` events now; :meth:`rate` averages over the
    last ``window_seconds`` (and over the elapsed lifetime when shorter).
    """

    def __init__(self, window_seconds: float = 5.0) -> None:
        self.window_seconds = float(window_seconds)
        self._events: Deque[Tuple[float, int]] = deque()
        self._started = time.monotonic()
        self.total = 0

    def tick(self, n: int = 1) -> None:
        now = time.monotonic()
        self._events.append((now, n))
        self.total += n
        horizon = now - self.window_seconds
        events = self._events
        while events and events[0][0] < horizon:
            events.popleft()

    def rate(self) -> float:
        now = time.monotonic()
        horizon = now - self.window_seconds
        in_window = sum(n for t, n in self._events if t >= horizon)
        span = min(self.window_seconds, max(now - self._started, 1e-9))
        return in_window / span

    def lifetime_rate(self) -> float:
        elapsed = max(time.monotonic() - self._started, 1e-9)
        return self.total / elapsed


class SessionMetrics:
    """The full per-session metric set surfaced by the ``stats`` op."""

    def __init__(self) -> None:
        self.ingested_records = 0
        self.ingested_frames = 0
        self.shed_frames = 0
        self.shed_records = 0
        self.dropped_frames = 0  # frames lost to ingest-loop faults
        self.ingest_errors = 0
        self.restarts = 0
        self.queries = 0
        self.checkpoints_written = 0
        self.checkpoint_failures = 0
        self.ingest_rate = RateMeter()
        self.query_latency = LatencyReservoir()

    def record_frame(self, records: int) -> None:
        self.ingested_frames += 1
        self.ingested_records += records
        self.ingest_rate.tick(records)

    def record_shed(self, records: int) -> None:
        self.shed_frames += 1
        self.shed_records += records

    def record_query(self, seconds: float) -> None:
        self.queries += 1
        self.query_latency.observe(seconds)

    def to_json(self, queue_depth: int) -> Dict[str, object]:
        return {
            "ingested_records": self.ingested_records,
            "ingested_frames": self.ingested_frames,
            "shed_frames": self.shed_frames,
            "shed_records": self.shed_records,
            "dropped_frames": self.dropped_frames,
            "ingest_errors": self.ingest_errors,
            "restarts": self.restarts,
            "queries": self.queries,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_failures": self.checkpoint_failures,
            "queue_depth": queue_depth,
            "ingest_eps": self.ingest_rate.rate(),
            "ingest_eps_lifetime": self.ingest_rate.lifetime_rate(),
            "query_latency": self.query_latency.summary(),
        }
