"""Wire protocol of the estimation service: versioned newline-delimited JSON.

One request or response per line.  Requests are JSON objects::

    {"v": 1, "id": 7, "op": "ingest", "tenant": "t0", "edges": [[1, 2], ...]}

and every response echoes the request id::

    {"v": 1, "id": 7, "ok": true, ...}
    {"v": 1, "id": 7, "ok": false, "error": "...", "code": "unknown-tenant"}

The protocol is deliberately transport-agnostic: the TCP and stdio
transports frame lines, the in-process client skips serialisation entirely
and hands the dict straight to
:meth:`~repro.service.server.EstimationService.handle_request` — both paths
go through the same validation, so tests against the in-process client
cover the wire semantics.

Operations
----------
``hello``
    Server identification: name, protocol version, open session count.
``open``
    Create (or re-attach to) the session of ``tenant``; ``engine`` is the
    engine spec (see :mod:`repro.service.session`).  Reopening an existing
    tenant with a *different* engine spec is an error; reopening with the
    same spec (or none) is idempotent and reports the session's delivered
    offset — which is non-zero when the server recovered the session from
    a checkpoint.
``ingest``
    Append one frame of ``edges`` ``[[u, v], ...]`` or timestamped
    ``records`` ``[[u, v, t], ...]`` to the tenant's queue.  The response
    reports the backpressure outcome: ``{"accepted": true, "queued": n}``
    or — shed policy, full queue — ``{"accepted": false, "shed": true}``.
    Under the ``block`` policy the response is simply delayed until the
    queue has room, which propagates backpressure to the client.
``query_global`` / ``query_local``
    Current global estimate / per-node estimates for ``nodes`` of the
    delivered prefix.  Served between frames of the single-writer ingest
    loop, so every answer reflects a frame-aligned delivered prefix —
    never a torn mid-frame state.
``query_windows``
    Sealed window results of a monitor session (``since`` filters by
    window index).
``advance_watermark``
    Explicit event-time tick of a monitor session.
``stats``
    Per-session metrics (ingest rate, queue depth, shed/error counters,
    query latency percentiles) or the all-sessions rollup.
``checkpoint``
    Force a durable checkpoint of one tenant (or every session).
``shutdown``
    Graceful drain: stop admitting frames, drain every queue, write final
    checkpoints, then stop the server.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.exceptions import ProtocolError

#: Protocol version spoken by this module (bumped on breaking changes).
PROTOCOL_VERSION = 1

#: Every operation the dispatcher accepts.
OPERATIONS = (
    "hello",
    "open",
    "ingest",
    "query_global",
    "query_local",
    "query_windows",
    "advance_watermark",
    "stats",
    "checkpoint",
    "shutdown",
)

#: Machine-readable error codes carried in failed responses.
ERROR_CODES = (
    "bad-request",
    "bad-version",
    "unknown-op",
    "unknown-tenant",
    "engine-mismatch",
    "session-closed",
    "overloaded",
    "checkpoint-failed",
    "internal",
)


def encode_line(message: Dict[str, object]) -> bytes:
    """Serialise one protocol message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one wire line into a message dict.

    Raises :class:`~repro.exceptions.ProtocolError` for anything that is
    not a JSON object — the caller decides whether to answer with an error
    response (server) or propagate (client).
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def validate_request(request: Dict[str, object]) -> str:
    """Validate version and operation; returns the operation name.

    Raises :class:`~repro.exceptions.ProtocolError` on violation.  The
    ``id`` field is optional (the in-process client never sets one) but
    must be int or string when present.
    """
    version = request.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: server speaks {PROTOCOL_VERSION}, "
            f"request carries {version!r}"
        )
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing the 'op' field")
    if op not in OPERATIONS:
        raise ProtocolError(f"unknown op {op!r}; known: {', '.join(OPERATIONS)}")
    request_id = request.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("request 'id' must be an int or string")
    return op


def ok_response(request: Dict[str, object], **fields: object) -> Dict[str, object]:
    """Build a success response echoing the request's id."""
    response: Dict[str, object] = {"v": PROTOCOL_VERSION, "ok": True}
    if request.get("id") is not None:
        response["id"] = request["id"]
    response.update(fields)
    return response


def error_response(
    request: Optional[Dict[str, object]], code: str, message: str
) -> Dict[str, object]:
    """Build a failure response (``request=None`` for undecodable frames)."""
    if code not in ERROR_CODES:
        code = "internal"
    response: Dict[str, object] = {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "code": code,
        "error": message,
    }
    if request is not None and request.get("id") is not None:
        response["id"] = request["id"]
    return response
