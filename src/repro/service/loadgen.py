"""Multi-tenant load generator for the estimation service.

Drives N tenants concurrently at a target per-tenant edge rate using the
paper's packet-flow workload, with concurrent query tasks measuring
end-to-end query latency while ingestion is running.  The result dict is
what ``BENCH_service.json`` commits and what the CI smoke job asserts a
throughput floor against.

Pacing: each tenant pre-generates its stream (generation cost must not
pollute the ingest measurement), slices it into frames of
``frame_records`` edges, and submits frames no faster than the target
rate; when the service is the bottleneck the ``block`` backpressure policy
makes submission lag the schedule and the *delivered* rate (from session
metrics) is the honest number reported.

Calibration: raw single-thread ``GroupStateSet`` ingest throughput is
measured in the same process (:func:`measure_calibration_eps`) and stored
alongside, so the regression gate compares service-throughput *ratios*
across machines instead of absolute rates — the same trick the batch
ingest-throughput gate uses.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional

from repro.core.config import ReptConfig
from repro.core.state import GroupStateSet
from repro.generators.traffic import packet_flow_records

#: Engine spec used by loadgen tenants (and the committed bench).
DEFAULT_ENGINE = {"kind": "rept", "m": 32, "c": 64, "seed": 7}


def tenant_frames(
    tenant_index: int,
    num_records: int,
    frame_records: int,
    duration_seconds: float,
    seed: int,
) -> List[List[List[object]]]:
    """Pre-generate one tenant's stream as wire-ready frames.

    Frames are lists of ``[u, v, t]`` records (JSON-shaped, valid for both
    estimator and monitor engines); each tenant derives an independent
    stream from ``seed`` and its index.
    """
    records = packet_flow_records(
        num_records=num_records,
        duration_seconds=duration_seconds,
        seed=seed + 1000 * tenant_index,
    )
    rows = [[r.u, r.v, r.time] for r in records]
    return [
        rows[start : start + frame_records]
        for start in range(0, len(rows), frame_records)
    ]


async def drive_tenant(
    client,
    tenant: str,
    frames: List[List[List[object]]],
    rate_eps: float,
    deadline: float,
) -> Dict[str, object]:
    """Submit one tenant's frames at ``rate_eps`` until frames or time run out."""
    submitted_records = 0
    shed_frames = 0
    started = time.monotonic()
    for frame in frames:
        now = time.monotonic()
        if now >= deadline:
            break
        # Uniform pacing: the next frame is due when the records submitted
        # so far would take this long at the target rate.
        due = started + submitted_records / rate_eps if rate_eps > 0 else now
        if due > now:
            await asyncio.sleep(min(due - now, deadline - now))
        response = await client.ingest(tenant, frame, timestamped=True)
        if response.get("shed"):
            shed_frames += 1
        submitted_records += len(frame)
    return {
        "tenant": tenant,
        "submitted_records": submitted_records,
        "shed_frames": shed_frames,
        "elapsed_seconds": time.monotonic() - started,
    }


async def query_probe(
    client,
    tenants: List[str],
    stop: asyncio.Event,
    interval_seconds: float = 0.05,
) -> Dict[str, object]:
    """Issue round-robin global/local queries until ``stop`` is set.

    Latencies are measured client-side (request to response), so under the
    TCP transport they include serialisation and the wire — the number an
    operator would actually observe.
    """
    latencies: List[float] = []
    queries = 0
    index = 0
    while not stop.is_set():
        tenant = tenants[index % len(tenants)]
        index += 1
        started = time.perf_counter()
        if index % 2:
            await client.query_global(tenant)
        else:
            await client.query_local(tenant, [0, 1, 2])
        latencies.append(time.perf_counter() - started)
        queries += 1
        try:
            await asyncio.wait_for(stop.wait(), timeout=interval_seconds)
        except asyncio.TimeoutError:
            pass
    latencies.sort()

    def _pct(q: float) -> Optional[float]:
        if not latencies:
            return None
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))] * 1000.0

    return {
        "queries": queries,
        "p50_ms": _pct(0.50),
        "p95_ms": _pct(0.95),
        "p99_ms": _pct(0.99),
    }


async def run_loadgen(
    client_factory: Callable,
    tenants: int = 3,
    duration_seconds: float = 3.0,
    rate_eps: float = 50_000.0,
    frame_records: int = 2000,
    records_per_tenant: Optional[int] = None,
    engine: Optional[dict] = None,
    seed: int = 7,
) -> Dict[str, object]:
    """Run the full load: open tenants, drive them, probe queries, report.

    ``client_factory`` is an async callable returning a fresh client per
    task — one client per tenant plus one for queries and one for control,
    so under TCP each tenant gets its own connection (and its own
    backpressure).  ``rate_eps`` is the *per-tenant* target rate.

    The report's ``aggregate_eps`` is delivered records (from service
    stats) over the wall-clock driving span — the number the bench gate
    checks, honest under both backpressure policies.
    """
    engine = dict(engine or DEFAULT_ENGINE)
    if records_per_tenant is None:
        records_per_tenant = max(int(rate_eps * duration_seconds), frame_records)
    control = await client_factory()
    names = [f"tenant-{i}" for i in range(tenants)]
    for index, name in enumerate(names):
        spec = dict(engine)
        if "seed" in spec:
            spec["seed"] = spec["seed"] + index  # independent sampling per tenant
        await control.open(name, engine=spec)

    all_frames = [
        tenant_frames(i, records_per_tenant, frame_records, duration_seconds, seed)
        for i in range(tenants)
    ]
    stop = asyncio.Event()
    deadline = time.monotonic() + duration_seconds
    started = time.monotonic()

    async def _tenant_task(index: int):
        client = await client_factory()
        try:
            return await drive_tenant(
                client, names[index], all_frames[index], rate_eps, deadline
            )
        finally:
            closer = getattr(client, "close", None)
            if closer is not None:
                await closer()

    query_client = await client_factory()
    probe = asyncio.ensure_future(query_probe(query_client, names, stop))
    tenant_reports = await asyncio.gather(
        *(_tenant_task(i) for i in range(tenants))
    )
    stop.set()
    query_report = await probe
    elapsed = time.monotonic() - started

    stats = await control.stats()
    sessions = stats["sessions"]
    delivered = sum(s["delivered"] for s in sessions.values())
    # Frames still queued at deadline get delivered during shutdown; the
    # rate is measured over the driving span against what is delivered now.
    submitted = sum(r["submitted_records"] for r in tenant_reports)
    report = {
        "tenants": tenants,
        "duration_seconds": duration_seconds,
        "rate_eps_target_per_tenant": rate_eps,
        "frame_records": frame_records,
        "engine": engine,
        "submitted_records": submitted,
        "delivered_records": delivered,
        "aggregate_eps": delivered / max(elapsed, 1e-9),
        "elapsed_seconds": elapsed,
        "shed_frames": sum(s["shed_frames"] for s in sessions.values()),
        "query": query_report,
        "per_tenant": tenant_reports,
        "service_query_latency": {
            name: sessions[name]["query_latency"] for name in names
        },
    }
    for client in (control, query_client):
        closer = getattr(client, "close", None)
        if closer is not None:
            await closer()
    return report


def measure_calibration_eps(
    num_records: int = 100_000, engine: Optional[dict] = None, seed: int = 7
) -> float:
    """Raw single-thread ingest throughput of the bench engine config.

    Measures ``GroupStateSet.process_edges`` over the same packet-flow
    workload, outside the service entirely — the machine-speed yardstick
    ``BENCH_service.json`` stores as ``calibration_eps`` so the regression
    gate can compare service overhead ratios across hardware.
    """
    engine = dict(engine or DEFAULT_ENGINE)
    records = packet_flow_records(num_records=num_records, seed=seed)
    edges = [(r.u, r.v) for r in records]
    config = ReptConfig(
        m=engine["m"], c=engine["c"], seed=engine["seed"],
        hash_kind=engine.get("hash_kind", "splitmix"),
    )
    state = GroupStateSet(config)
    started = time.perf_counter()
    n = 0
    batch = 8192
    for start in range(0, len(edges), batch):
        n += state.process_edges(edges[start : start + batch])
    elapsed = time.perf_counter() - started
    return n / max(elapsed, 1e-9)
