"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series that the paper's tables
and figures report.  We deliberately avoid plotting dependencies; a compact
monospace table is enough to compare shapes and orderings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)``
        entries.  Floats are formatted compactly, everything else via
        ``str``.
    title:
        Optional title line printed above the table.

    Returns
    -------
    str
        The rendered table, ready to ``print``.
    """
    string_rows: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in string_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Sequence[tuple],
    title: Optional[str] = None,
) -> str:
    """Render one or more named series against a shared x axis.

    ``series`` is a sequence of ``(name, values)`` pairs where ``values``
    aligns with ``x_values``.  This mirrors how the paper's figures plot one
    curve per method against the processor count or ``1/p``.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for _, values in series])
    return format_table(headers, rows, title=title)
