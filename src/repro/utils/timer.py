"""Lightweight wall-clock timing utilities used by the runtime experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Timer:
    """A context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@dataclass
class TimingLog:
    """Accumulates named timing samples, e.g. per-method runtimes."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Record one timing sample for ``name``."""
        self.samples.setdefault(name, []).append(seconds)

    def mean(self, name: str) -> float:
        """Mean of the samples recorded for ``name``."""
        values = self.samples[name]
        return sum(values) / len(values)

    def total(self, name: str) -> float:
        """Sum of the samples recorded for ``name``."""
        return sum(self.samples[name])

    def names(self) -> List[str]:
        """Names with at least one sample, in insertion order."""
        return list(self.samples)
