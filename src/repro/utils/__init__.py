"""Small shared utilities: RNG helpers, timers, text tables, logging."""

from repro.utils.rng import RandomSource, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.tables import format_table

__all__ = ["RandomSource", "spawn_rngs", "Timer", "format_table"]
