"""Logging helpers.

The library never configures the root logger; applications opt in by
calling :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging

PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the package namespace."""
    if name.startswith(PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the package logger (idempotent)."""
    logger = logging.getLogger(PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
