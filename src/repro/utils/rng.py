"""Deterministic random-number helpers.

Every stochastic component of the library (hash functions, samplers,
generators, experiment trials) receives its randomness from an explicit
seed.  This module centralises the conventions:

* a *seed* is either ``None`` (non-deterministic), an ``int``, or an
  already-constructed :class:`numpy.random.Generator`;
* independent sub-streams are derived with :func:`spawn_rngs`, which uses
  ``numpy.random.SeedSequence.spawn`` so children never collide.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


class RandomSource:
    """A thin wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that library code can accept "anything seed-like"
    and so that child sources can be spawned deterministically.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, an existing ``Generator``
        (used as-is) or a ``SeedSequence``.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            self._seed_seq: Optional[np.random.SeedSequence] = None
            self.generator = seed
        elif isinstance(seed, np.random.SeedSequence):
            self._seed_seq = seed
            self.generator = np.random.default_rng(seed)
        else:
            self._seed_seq = np.random.SeedSequence(seed)
            self.generator = np.random.default_rng(self._seed_seq)

    def spawn(self, count: int) -> List["RandomSource"]:
        """Derive ``count`` independent child sources.

        When this source was built from a raw ``Generator`` (no seed
        sequence available) children are seeded from integers drawn from
        that generator, which is still reproducible given the parent state.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._seed_seq is not None:
            return [RandomSource(child) for child in self._seed_seq.spawn(count)]
        seeds = self.generator.integers(0, 2**63 - 1, size=count)
        return [RandomSource(int(s)) for s in seeds]

    def integers(self, low: int, high: int, size=None):
        """Proxy for ``Generator.integers`` (half-open interval)."""
        return self.generator.integers(low, high, size=size)

    def random(self, size=None):
        """Proxy for ``Generator.random``: uniform floats in ``[0, 1)``."""
        return self.generator.random(size)

    def choice(self, seq, size=None, replace=True):
        """Proxy for ``Generator.choice``."""
        return self.generator.choice(seq, size=size, replace=replace)

    def shuffle(self, seq) -> None:
        """Proxy for ``Generator.shuffle`` (in place)."""
        self.generator.shuffle(seq)

    def random_uint64(self) -> int:
        """Return a uniformly random unsigned 64-bit integer."""
        return int(self.generator.integers(0, 2**64, dtype=np.uint64))


def as_random_source(seed: SeedLike) -> RandomSource:
    """Coerce a seed-like value into a :class:`RandomSource`."""
    if isinstance(seed, RandomSource):
        return seed
    return RandomSource(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[RandomSource]:
    """Return ``count`` independent :class:`RandomSource` objects.

    Convenience wrapper used by experiment runners to hand each trial its
    own deterministic stream of randomness.
    """
    return as_random_source(seed).spawn(count)


def derive_seed(seed: SeedLike, *tokens) -> int:
    """Derive a stable 63-bit integer seed from a base seed and tokens.

    Used where a plain integer is required (for example the tabulation hash
    tables) but the caller only has a structured identity such as
    ``("figure3", dataset, trial)``.  The derivation is independent of
    Python's per-process hash randomisation: tokens are serialised with
    ``repr`` and digested with SHA-256.
    """
    import hashlib

    if seed is None:
        base = int(RandomSource(None).random_uint64())
    elif isinstance(seed, int):
        base = seed
    else:
        base = int(as_random_source(seed).random_uint64())
    payload = repr((base, tokens)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)
