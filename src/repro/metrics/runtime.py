"""Runtime measurement: wall-clock timing and a per-edge operation model.

The paper's Figures 7 and 8(a)/(b) report wall-clock seconds of a C++
implementation on a Xeon; a pure-Python reproduction cannot match absolute
numbers and, because of the GIL, thread-level parallel speedups are muted.
We therefore report two complementary quantities (see DESIGN.md):

* the actual wall-clock time of the Python estimators
  (:func:`measure_runtime`), which preserves *relative* orderings on a
  single machine; and
* an **operation count** — the number of adjacency-set probes, insertions,
  removals and priority updates each method performs per stream
  (:class:`OperationCountingGraph` plus the per-method constants in
  :class:`OperationCosts`) — which is the machine-independent quantity the
  paper's cost argument is actually about ("the time to process each edge
  is dominated by the computation of the shared neighbors").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.graph.adjacency import AdjacencyGraph
from repro.types import EdgeTuple, NodeId
from repro.utils.timer import Timer


@dataclass
class RuntimeMeasurement:
    """Wall-clock runtime of one estimator over one stream."""

    method: str
    seconds: float
    edges_processed: int
    estimate: TriangleEstimate

    @property
    def edges_per_second(self) -> float:
        """Throughput (0 when the run was instantaneous)."""
        if self.seconds <= 0:
            return 0.0
        return self.edges_processed / self.seconds


def measure_runtime(
    estimator: StreamingTriangleEstimator, edges: Iterable[EdgeTuple]
) -> RuntimeMeasurement:
    """Run ``estimator`` over ``edges`` and time the streaming phase only.

    The final :meth:`estimate` call is not timed: the paper's runtime is the
    stream-processing time, and the estimate assembly is a negligible
    one-off.
    """
    edge_list = list(edges)
    with Timer() as timer:
        estimator.process_stream(edge_list)
    estimate = estimator.estimate()
    return RuntimeMeasurement(
        method=estimator.name,
        seconds=timer.elapsed,
        edges_processed=len(edge_list),
        estimate=estimate,
    )


class OperationCountingGraph(AdjacencyGraph):
    """An :class:`AdjacencyGraph` that counts its primitive operations.

    Estimators built on top of this class (by monkey-patching their
    ``_sampled`` graph or via the cost-model helpers in the experiments
    package) report machine-independent work measures: the number of
    neighbor-set intersections, the total size of the sets intersected, and
    the number of edge insertions/removals.
    """

    def __init__(self, edges=()) -> None:
        self.counters: Dict[str, int] = {
            "common_neighbor_calls": 0,
            "set_elements_scanned": 0,
            "edges_inserted": 0,
            "edges_removed": 0,
        }
        super().__init__(edges)

    def common_neighbors(self, u: NodeId, v: NodeId):
        self.counters["common_neighbor_calls"] += 1
        self.counters["set_elements_scanned"] += min(
            len(self.neighbors(u)), len(self.neighbors(v))
        )
        return super().common_neighbors(u, v)

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        added = super().add_edge(u, v)
        if added:
            self.counters["edges_inserted"] += 1
        return added

    def remove_edge(self, u: NodeId, v: NodeId) -> bool:
        removed = super().remove_edge(u, v)
        if removed:
            self.counters["edges_removed"] += 1
        return removed


@dataclass
class OperationCosts:
    """Relative per-operation costs of the different sampling disciplines.

    The defaults encode the qualitative cost model of the paper's runtime
    discussion: every method pays for the shared-neighbor computation; the
    reservoir methods additionally pay for insertions *and* deletions; the
    priority-sampling method pays for weight computation and heap updates.
    """

    scan_cost: float = 1.0
    insert_cost: float = 1.0
    remove_cost: float = 1.0
    weight_update_cost: float = 3.0

    def total(self, counters: Dict[str, int], weight_updates: int = 0) -> float:
        """Aggregate a counter dictionary into a single scalar cost."""
        return (
            self.scan_cost * counters.get("set_elements_scanned", 0)
            + self.scan_cost * counters.get("common_neighbor_calls", 0)
            + self.insert_cost * counters.get("edges_inserted", 0)
            + self.remove_cost * counters.get("edges_removed", 0)
            + self.weight_update_cost * weight_updates
        )


def time_callable(fn: Callable[[], object]) -> float:
    """Return the wall-clock seconds taken by calling ``fn`` once."""
    with Timer() as timer:
        fn()
    return timer.elapsed
