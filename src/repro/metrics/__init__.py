"""Error and cost metrics used by the evaluation harness.

* :mod:`repro.metrics.errors` — NRMSE / MSE / bias-variance decomposition
  for the global count, computed across repeated independent trials;
* :mod:`repro.metrics.local_errors` — the aggregation of per-node errors
  reported by Figures 5–6;
* :mod:`repro.metrics.runtime` — wall-clock timing and the per-edge
  operation-count cost model used to reproduce the runtime figures in
  shape (see DESIGN.md for why absolute seconds are out of scope).
"""

from repro.metrics.errors import (
    TrialSummary,
    bias,
    mean_squared_error,
    normalized_rmse,
    summarize_trials,
)
from repro.metrics.local_errors import local_nrmse, summarize_local_trials
from repro.metrics.runtime import OperationCountingGraph, OperationCosts, measure_runtime

__all__ = [
    "TrialSummary",
    "bias",
    "mean_squared_error",
    "normalized_rmse",
    "summarize_trials",
    "local_nrmse",
    "summarize_local_trials",
    "OperationCountingGraph",
    "OperationCosts",
    "measure_runtime",
]
