"""Global-count error metrics.

The paper's figures report the normalized root mean square error

``NRMSE(μ̂) = sqrt(MSE(μ̂)) / μ`` with ``MSE(μ̂) = Var(μ̂) + (E(μ̂) − μ)²``

estimated over repeated independent runs of each estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean_squared_error(estimates: Sequence[float], truth: float) -> float:
    """Empirical MSE of ``estimates`` against the true value ``truth``."""
    if not estimates:
        raise ValueError("at least one estimate is required")
    return sum((value - truth) ** 2 for value in estimates) / len(estimates)


def bias(estimates: Sequence[float], truth: float) -> float:
    """Empirical bias (mean estimate minus truth)."""
    if not estimates:
        raise ValueError("at least one estimate is required")
    return sum(estimates) / len(estimates) - truth


def empirical_variance(estimates: Sequence[float]) -> float:
    """Population variance of the estimates (0 for a single trial)."""
    n = len(estimates)
    if n == 0:
        raise ValueError("at least one estimate is required")
    mean = sum(estimates) / n
    return sum((value - mean) ** 2 for value in estimates) / n

def normalized_rmse(estimates: Sequence[float], truth: float) -> float:
    """NRMSE of the estimates with respect to the true value.

    Raises :class:`ValueError` when ``truth`` is zero — the metric is
    undefined there; the experiment harness filters such datasets out
    (every registered dataset has a positive triangle count).
    """
    if truth == 0:
        raise ValueError("NRMSE is undefined for a zero true value")
    return math.sqrt(mean_squared_error(estimates, truth)) / abs(truth)


@dataclass
class TrialSummary:
    """Summary of repeated independent trials of one estimator configuration.

    Attributes
    ----------
    truth:
        The exact value being estimated.
    num_trials:
        Number of independent runs aggregated.
    mean_estimate, bias, variance, mse, nrmse:
        The usual empirical moments; ``nrmse`` is what the figures plot.
    """

    truth: float
    num_trials: int
    mean_estimate: float
    bias: float
    variance: float
    mse: float
    nrmse: float


def summarize_trials(estimates: Sequence[float], truth: float) -> TrialSummary:
    """Build a :class:`TrialSummary` from per-trial global estimates."""
    return TrialSummary(
        truth=truth,
        num_trials=len(estimates),
        mean_estimate=sum(estimates) / len(estimates),
        bias=bias(estimates, truth),
        variance=empirical_variance(estimates),
        mse=mean_squared_error(estimates, truth),
        nrmse=normalized_rmse(estimates, truth),
    )
