"""Local-count error aggregation (Figures 5–6).

The paper reports a single NRMSE number per (dataset, method, c) for the
*local* estimates but does not spell out the aggregation over nodes.  We
follow the convention of the MASCOT / FURL line of work:

``local NRMSE = (1/|V'|) Σ_{v ∈ V'} sqrt(MSE(τ̂_v)) / (τ_v + 1)``

where ``V'`` is the set of nodes of the aggregate graph and the ``+ 1``
keeps nodes with few or zero triangles from dividing by zero while still
penalising errors on them.  This produces values in the 0–10 range the
paper's local-error figures show and, most importantly, preserves the
*ordering* of methods, which is what the reproduction checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.types import NodeId


@dataclass
class LocalTrialSummary:
    """Aggregated local-count error over trials and nodes.

    Attributes
    ----------
    nrmse:
        The aggregate defined in the module docstring (what the figures plot).
    num_nodes:
        Number of nodes aggregated over.
    num_trials:
        Number of independent runs.
    mean_abs_error:
        Mean absolute error per node (diagnostic).
    """

    nrmse: float
    num_nodes: int
    num_trials: int
    mean_abs_error: float


def local_nrmse(
    trial_estimates: Sequence[Mapping[NodeId, float]],
    truth: Mapping[NodeId, float],
) -> float:
    """Compute the aggregated local NRMSE (see module docstring)."""
    return summarize_local_trials(trial_estimates, truth).nrmse


def summarize_local_trials(
    trial_estimates: Sequence[Mapping[NodeId, float]],
    truth: Mapping[NodeId, float],
) -> LocalTrialSummary:
    """Aggregate per-node errors across trials into a :class:`LocalTrialSummary`.

    Parameters
    ----------
    trial_estimates:
        One mapping node -> ``τ̂_v`` per trial.  Nodes missing from a trial's
        mapping are treated as estimated 0 (the estimator never saw them).
    truth:
        Mapping node -> exact ``τ_v`` for every node of the aggregate graph.
    """
    if not trial_estimates:
        raise ValueError("at least one trial is required")
    if not truth:
        raise ValueError("the truth mapping must not be empty")
    num_trials = len(trial_estimates)
    total_nrmse = 0.0
    total_abs = 0.0
    for node, true_value in truth.items():
        squared = 0.0
        abs_err = 0.0
        for estimates in trial_estimates:
            error = estimates.get(node, 0.0) - true_value
            squared += error * error
            abs_err += abs(error)
        mse_v = squared / num_trials
        total_nrmse += math.sqrt(mse_v) / (true_value + 1.0)
        total_abs += abs_err / num_trials
    num_nodes = len(truth)
    return LocalTrialSummary(
        nrmse=total_nrmse / num_nodes,
        num_nodes=num_nodes,
        num_trials=num_trials,
        mean_abs_error=total_abs / num_nodes,
    )
