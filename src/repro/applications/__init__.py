"""Application layer: the analyses the paper's introduction motivates.

The introduction lists the downstream uses of (approximate) global and local
triangle counts — spam/sybil screening, community and role analysis, and
time-interval network monitoring.  This subpackage packages those uses as
small, tested components on top of the estimator API:

* :mod:`repro.applications.anomaly` — per-interval triangle-count monitoring
  of a timestamped interaction stream with robust thresholding;
* :mod:`repro.applications.clustering` — global / local clustering
  coefficient estimation from triangle estimates;
* :mod:`repro.applications.ranking` — top-k nodes by estimated local count
  and low-clustering suspect screening.
"""

from repro.applications.anomaly import IntervalReport, TriangleAnomalyDetector
from repro.applications.clustering import (
    estimate_global_clustering,
    estimate_local_clustering,
)
from repro.applications.ranking import rank_by_local_count, suspicious_low_clustering_nodes

__all__ = [
    "TriangleAnomalyDetector",
    "IntervalReport",
    "estimate_global_clustering",
    "estimate_local_clustering",
    "rank_by_local_count",
    "suspicious_low_clustering_nodes",
]
