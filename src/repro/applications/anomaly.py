"""Interval-based triangle-count anomaly detection.

The paper's motivating deployment: a router (or social platform) observes a
stream of interactions; for every time interval we estimate the global
triangle count with a streaming estimator and flag intervals whose count
deviates sharply from the recent baseline.  Triangle count is the right
statistic because coordinated behaviour (botnet bursts, sybil rings,
retweet farms) creates dense local structure that raw edge counts miss.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.baselines.base import StreamingTriangleEstimator
from repro.core.config import ReptConfig
from repro.core.rept import ReptEstimator
from repro.streaming.edge_stream import EdgeStream
from repro.streaming.windows import TimeWindowedStream
from repro.utils.rng import derive_seed

EstimatorFactory = Callable[[int], StreamingTriangleEstimator]


@dataclass
class IntervalReport:
    """Verdict for one time interval.

    Attributes
    ----------
    index:
        Interval index (0-based).
    start, end:
        Interval bounds in the input's time unit.
    edge_count:
        Number of interactions observed in the interval.
    triangle_estimate:
        Estimated global triangle count of the interval's graph.
    score:
        Robust z-score of the estimate against the other intervals
        (``(x - median) / MAD``).
    is_anomalous:
        Whether the score exceeded the detector's sensitivity.
    """

    index: int
    start: float
    end: float
    edge_count: int
    triangle_estimate: float
    score: float
    is_anomalous: bool


class TriangleAnomalyDetector:
    """Flag time intervals with abnormal triangle counts.

    Parameters
    ----------
    window_seconds:
        Width of each interval.
    sensitivity:
        Number of MADs above the median an interval must score to be
        flagged (default 6, conservative).
    estimator_factory:
        Callable ``(seed) -> estimator`` building a fresh streaming
        estimator per interval.  Defaults to REPT with ``m = c = 4``.
    seed:
        Master seed; each interval derives its own child seed.
    """

    def __init__(
        self,
        window_seconds: float,
        sensitivity: float = 6.0,
        estimator_factory: Optional[EstimatorFactory] = None,
        seed: int = 0,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self.window_seconds = float(window_seconds)
        self.sensitivity = float(sensitivity)
        self.seed = seed
        self._factory: EstimatorFactory = estimator_factory or (
            lambda child_seed: ReptEstimator(
                ReptConfig(m=4, c=4, seed=child_seed, track_local=False)
            )
        )

    def _estimate_window(self, index: int, stream: EdgeStream) -> float:
        estimator = self._factory(derive_seed(self.seed, "anomaly-window", index))
        return estimator.run(stream).global_count

    def analyze(self, records: Iterable) -> List[IntervalReport]:
        """Analyse a timestamped record sequence and score every interval.

        ``records`` accepts anything :class:`TimeWindowedStream` accepts
        ((u, v, time) tuples or :class:`TimestampedRecord` objects).
        """
        windowed = TimeWindowedStream(records, self.window_seconds)
        windows = list(windowed.windows())
        if not windows:
            return []
        estimates = [
            self._estimate_window(index, stream)
            for index, (_, _, stream) in enumerate(windows)
        ]
        median = statistics.median(estimates)
        mad = statistics.median([abs(value - median) for value in estimates]) or 1.0
        reports: List[IntervalReport] = []
        for index, ((start, end, stream), estimate) in enumerate(zip(windows, estimates)):
            score = (estimate - median) / mad
            reports.append(
                IntervalReport(
                    index=index,
                    start=start,
                    end=end,
                    edge_count=len(stream),
                    triangle_estimate=estimate,
                    score=score,
                    is_anomalous=score > self.sensitivity,
                )
            )
        return reports

    def anomalous_intervals(self, records: Iterable) -> List[int]:
        """Return just the indices of the flagged intervals."""
        return [report.index for report in self.analyze(records) if report.is_anomalous]
