"""Node rankings built on estimated local triangle counts.

Two rankings the literature uses local triangle counts for:

* **top-k by local count** — the most embedded nodes (community cores,
  influential accounts);
* **low-clustering suspects** — high-degree nodes whose neighbourhoods close
  almost no triangles, the classic spam / sybil signature.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.baselines.base import TriangleEstimate
from repro.applications.clustering import estimate_local_clustering
from repro.types import NodeId


def rank_by_local_count(estimate: TriangleEstimate, k: int = 10) -> List[Tuple[NodeId, float]]:
    """Return the ``k`` nodes with the largest estimated local counts.

    Ties are broken by the string form of the node id so the ranking is
    deterministic for a given estimate.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    ordered = sorted(
        estimate.local_counts.items(), key=lambda item: (-item[1], str(item[0]))
    )
    return ordered[:k]


def suspicious_low_clustering_nodes(
    estimate: TriangleEstimate,
    degrees: Mapping[NodeId, int],
    minimum_degree: int = 20,
    max_results: int = 20,
) -> List[Tuple[NodeId, float]]:
    """Return high-degree nodes ranked by *ascending* estimated clustering.

    Parameters
    ----------
    estimate:
        Triangle estimate with local counts.
    degrees:
        Exact degrees of the aggregate graph.
    minimum_degree:
        Only nodes with at least this degree are considered — a low
        clustering coefficient is only suspicious for well-connected nodes.
    max_results:
        Length of the returned suspect list.

    Returns
    -------
    list of (node, estimated clustering coefficient), most suspicious first.
    """
    if max_results < 1:
        raise ValueError("max_results must be >= 1")
    coefficients: Dict[NodeId, float] = estimate_local_clustering(
        estimate, degrees, minimum_degree=minimum_degree
    )
    ordered = sorted(coefficients.items(), key=lambda item: (item[1], str(item[0])))
    return ordered[:max_results]
