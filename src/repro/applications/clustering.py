"""Clustering-coefficient estimation from triangle estimates.

Global clustering (transitivity) and local clustering coefficients are the
most common consumers of triangle counts; both are simple ratios of a
triangle count to a wedge count, and the wedge counts are exact (they only
need degrees, which a streaming system tracks cheaply).  These helpers
combine a :class:`TriangleEstimate` with degree information into the derived
coefficients.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.baselines.base import TriangleEstimate
from repro.types import NodeId


def estimate_global_clustering(estimate: TriangleEstimate, num_wedges: int) -> float:
    """Estimate the transitivity ``3·τ̂ / #wedges``.

    Parameters
    ----------
    estimate:
        A triangle estimate from any estimator in this library.
    num_wedges:
        The exact wedge count of the graph (``Σ_v C(d_v, 2)``), obtainable
        from :func:`repro.graph.triangles.count_wedges` or from streamed
        degree counters.

    Returns
    -------
    float
        The estimated transitivity, clamped to ``[0, 1]`` (sampling noise
        can push the raw ratio slightly outside).
    """
    if num_wedges <= 0:
        return 0.0
    raw = 3.0 * estimate.global_count / num_wedges
    return min(1.0, max(0.0, raw))


def estimate_local_clustering(
    estimate: TriangleEstimate,
    degrees: Mapping[NodeId, int],
    minimum_degree: int = 2,
) -> Dict[NodeId, float]:
    """Estimate every node's local clustering coefficient ``τ̂_v / C(d_v, 2)``.

    Parameters
    ----------
    estimate:
        A triangle estimate with local counts (``track_local=True``).
    degrees:
        Exact node degrees of the aggregate graph.
    minimum_degree:
        Nodes below this degree are skipped (their coefficient is undefined
        or trivially zero).

    Returns
    -------
    dict
        Node -> estimated coefficient, clamped to ``[0, 1]``.
    """
    if minimum_degree < 2:
        minimum_degree = 2
    coefficients: Dict[NodeId, float] = {}
    for node, degree in degrees.items():
        if degree < minimum_degree:
            continue
        pairs = degree * (degree - 1) / 2.0
        raw = estimate.local_count(node) / pairs
        coefficients[node] = min(1.0, max(0.0, raw))
    return coefficients
