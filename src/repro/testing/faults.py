"""Seeded, deterministic fault injection for the durability layer.

The harness answers one question reproducibly: *what happens when this
exact operation fails?*  Production code embeds :func:`maybe_fail` hooks at
its failure-prone sites (worker task entry, checkpoint write, campaign task
execution).  When no plan is armed the hook is a single dictionary probe —
the zero-overhead-when-off guarantee the CI bench gate asserts.  When a
test (or the ``--chaos`` CLI flag) arms a :class:`FaultPlan`, matching
sites perform the planned action:

* ``"raise"`` — raise :class:`InjectedFault` (a recoverable worker error);
* ``"io-error"`` — raise :class:`OSError` (a failed write);
* ``"exit"`` — ``os._exit(73)``: genuine process death, indistinguishable
  from ``kill -9`` to the parent (no cleanup, no exception propagation);
* ``"hang"`` — sleep ``delay_seconds`` (exercises worker timeouts).

Plans are armed through an environment variable naming a plan directory,
so they survive ``fork``/``spawn`` into pool workers and subprocesses.
Single-firing across *processes* is enforced with atomically-created token
files in the plan directory: the first process to claim a token fires, all
others pass — which is what makes "crash the worker once, then let the
retry succeed" deterministic under a process pool.

Faults select their call two ways, combinable:

* ``match`` — exact keys the call site must present (e.g.
  ``{"site-kind": "counting", "chunk": 2}``): deterministic regardless of
  scheduling order, the right tool under parallelism;
* ``skip`` — fire on the (skip+1)-th *matching* call, counted across all
  processes via claimed ordinal tokens: the right tool in serial code.

Instrumented sites (the ``site`` a spec targets):

* ``storing-worker`` / ``counting-worker`` — pooled chunk tasks in the
  chunked-process drivers (keys: ``group``, ``chunk``);
* ``rept-segment`` / ``estimator-segment`` / ``monitor-segment`` —
  durable-driver segment boundaries (key: ``offset``);
* ``checkpoint-write`` — :meth:`CheckpointManager.save` staging (key:
  ``generation``);
* ``campaign-task`` — campaign engine task execution (key: ``task``);
* ``service-ingest`` / ``service-checkpoint`` — session frame apply and
  periodic checkpoint (key: ``tenant``);
* ``cluster-worker-batch`` — shard-worker batch application (keys:
  ``worker``, ``seq``): ``exit`` kills the worker mid-batch, ``hang``
  trips the coordinator's ``worker_timeout``;
* ``cluster-worker-snapshot`` — shard-worker snapshot command (key:
  ``worker``);
* ``cluster-route`` — the coordinator's batch send, inside its retry
  loop (keys: ``worker``, ``seq``);
* ``cluster-migrate`` — the coordinator's shard placement on a migration
  target, inside its retry loop (key: ``worker``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: Environment variable naming the armed plan directory.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: File inside the plan directory holding the serialized plan.
PLAN_FILE = "plan.json"

_ACTIONS = ("raise", "io-error", "exit", "hang")

#: Exit status of the ``"exit"`` action — distinctive in waitpid output.
EXIT_STATUS = 73


class InjectedFault(RuntimeError):
    """The error raised by the ``"raise"`` action.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults model infrastructure failures (a crashed worker, a flaky disk),
    which the supervision and retry layers must handle exactly like any
    foreign exception.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    site:
        Name of the :func:`maybe_fail` call site to target.
    action:
        One of ``"raise"``, ``"io-error"``, ``"exit"``, ``"hang"``.
    match:
        Keys the call site must present with equal values; missing or
        different keys mean the call is not a match.  Empty matches every
        call at the site.
    skip:
        Number of matching calls to let through before firing.
    times:
        How many matching calls fire (after ``skip``); further matches pass.
    delay_seconds:
        Sleep duration of the ``"hang"`` action.
    """

    site: str
    action: str = "raise"
    match: Mapping[str, object] = field(default_factory=dict)
    skip: int = 0
    times: int = 1
    delay_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; use {_ACTIONS}")
        if self.skip < 0 or self.times < 1:
            raise ValueError("skip must be >= 0 and times >= 1")

    def to_json(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "action": self.action,
            "match": dict(self.match),
            "skip": self.skip,
            "times": self.times,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultSpec":
        return cls(
            site=str(data["site"]),
            action=str(data.get("action", "raise")),
            match=dict(data.get("match", {})),
            skip=int(data.get("skip", 0)),
            times=int(data.get("times", 1)),
            delay_seconds=float(data.get("delay_seconds", 30.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A set of :class:`FaultSpec` entries plus the seed they were built from."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def to_json(self) -> Dict[str, object]:
        return {"seed": self.seed, "faults": [f.to_json() for f in self.faults]}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultPlan":
        return cls(
            faults=tuple(FaultSpec.from_json(f) for f in data.get("faults", ())),
            seed=int(data.get("seed", 0)),
        )

    def write(self, directory: PathLike) -> Path:
        """Serialise the plan into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / PLAN_FILE
        path.write_text(json.dumps(self.to_json(), indent=2), encoding="utf-8")
        return path


@contextmanager
def arm(
    plan: FaultPlan, directory: Optional[PathLike] = None
) -> Iterator[Path]:
    """Arm ``plan`` for the duration of the ``with`` block.

    Writes the plan (and its firing tokens) under ``directory`` — a fresh
    temporary directory when omitted — and exports :data:`PLAN_ENV` so the
    plan reaches pool workers and subprocesses.  Yields the plan directory;
    on exit the previous environment is restored (tokens are left behind
    for post-mortem inspection when an explicit directory was given).
    """
    created: Optional[tempfile.TemporaryDirectory] = None
    if directory is None:
        created = tempfile.TemporaryDirectory(prefix="repro-faults-")
        directory = created.name
    directory = Path(directory)
    plan.write(directory)
    previous = os.environ.get(PLAN_ENV)
    os.environ[PLAN_ENV] = str(directory)
    try:
        yield directory
    finally:
        if previous is None:
            os.environ.pop(PLAN_ENV, None)
        else:
            os.environ[PLAN_ENV] = previous
        if created is not None:
            created.cleanup()


#: Per-process plan cache keyed by the plan directory path.
_PLAN_CACHE: Dict[str, FaultPlan] = {}


def _load_plan(directory: str) -> Optional[FaultPlan]:
    plan = _PLAN_CACHE.get(directory)
    if plan is None:
        path = Path(directory) / PLAN_FILE
        try:
            plan = FaultPlan.from_json(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, KeyError):
            return None
        _PLAN_CACHE[directory] = plan
    return plan


def _claim(directory: Path, token: str) -> bool:
    """Atomically claim ``token``; True for exactly one claimant ever."""
    try:
        fd = os.open(directory / token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _claim_ordinal(directory: Path, prefix: str) -> int:
    """Claim the next call ordinal for ``prefix`` across all processes."""
    ordinal = 0
    while not _claim(directory, f"{prefix}-call-{ordinal}"):
        ordinal += 1
    return ordinal


def maybe_fail(site: str, **key: object) -> None:
    """Fire any armed fault matching ``site`` and ``key``.

    The un-armed fast path is one ``os.environ`` probe — safe to leave in
    hot-ish paths (task entry, file write), though never inside per-edge
    loops.
    """
    directory = os.environ.get(PLAN_ENV)
    if directory is None:
        return
    plan = _load_plan(directory)
    if plan is None:
        return
    plan_dir = Path(directory)
    for index, spec in enumerate(plan.faults):
        if spec.site != site:
            continue
        if any(key.get(k) != v for k, v in spec.match.items()):
            continue
        ordinal = _claim_ordinal(plan_dir, f"fault-{index}")
        if not spec.skip <= ordinal < spec.skip + spec.times:
            continue
        if spec.action == "raise":
            raise InjectedFault(f"injected fault at {site} ({key or 'any'})")
        if spec.action == "io-error":
            raise OSError(f"injected I/O failure at {site} ({key or 'any'})")
        if spec.action == "hang":
            time.sleep(spec.delay_seconds)
            continue
        # "exit": genuine process death — no cleanup, no exception.
        os._exit(EXIT_STATUS)


# -- post-hoc corruption helpers ---------------------------------------------


def truncate_file(path: PathLike, keep_bytes: int) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (a torn write)."""
    with open(path, "r+b") as handle:
        handle.truncate(max(0, keep_bytes))


def corrupt_file(path: PathLike, seed: int = 0, num_bytes: int = 8) -> None:
    """Deterministically flip ``num_bytes`` byte positions of ``path``.

    Positions and XOR masks derive from ``seed`` via a private RNG, so a
    corruption test observes the same damage on every run.  Empty files are
    left untouched.
    """
    import random

    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    rng = random.Random(seed)
    for _ in range(num_bytes):
        position = rng.randrange(len(data))
        data[position] ^= rng.randrange(1, 256)
    path.write_bytes(bytes(data))
