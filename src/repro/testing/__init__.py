"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the durability test-suite and the ``--chaos`` CLI flag.  It lives
in the package (not under ``tests/``) because production call sites embed
its :func:`~repro.testing.faults.maybe_fail` hooks, and the CLI artefacts
arm plans at runtime.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm,
    corrupt_file,
    maybe_fail,
    truncate_file,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "arm",
    "corrupt_file",
    "maybe_fail",
    "truncate_file",
]
