"""Synthetic workload generators and the dataset registry.

The paper evaluates on eight public graphs (Twitter, com-Orkut, LiveJournal,
Pokec, Flickr, Wiki-Talk, Web-Google, YouTube) with up to a billion edges.
Those files are not available offline and would not fit a laptop-scale
Python reproduction, so this subpackage provides:

* random-graph stream generators with heavy-tailed degree distributions and
  abundant triangles (Chung–Lu, Barabási–Albert with triad closure,
  Erdős–Rényi, planted cliques);
* a **dataset registry** mapping the paper's dataset names to deterministic
  synthetic analogues at 10³–10⁵ edges, preserving the property the paper's
  argument hinges on (η larger than τ by orders of magnitude);
* a synthetic packet-trace generator for the traffic-monitoring example.
"""

from repro.generators.random_graphs import (
    barabasi_albert_stream,
    chung_lu_stream,
    erdos_renyi_stream,
    powerlaw_cluster_stream,
)
from repro.generators.planted import planted_clique_stream, planted_triangles_stream
from repro.generators.datasets import (
    DatasetSpec,
    available_datasets,
    load_dataset,
    paper_dataset_table,
)
from repro.generators.traffic import (
    packet_flow_records,
    packet_flow_stream,
    synthetic_packet_trace,
)

__all__ = [
    "barabasi_albert_stream",
    "chung_lu_stream",
    "erdos_renyi_stream",
    "powerlaw_cluster_stream",
    "planted_clique_stream",
    "planted_triangles_stream",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
    "paper_dataset_table",
    "packet_flow_records",
    "packet_flow_stream",
    "synthetic_packet_trace",
]
