"""Random-graph stream generators.

All generators return an :class:`EdgeStream` whose arrival order is the
generation order (and can be reshuffled with
:func:`repro.streaming.transforms.shuffle_stream`).  Every generator is
deterministic given its seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.streaming.edge_stream import EdgeStream
from repro.types import EdgeTuple, canonical_edge
from repro.utils.rng import SeedLike, as_random_source


def erdos_renyi_stream(
    num_nodes: int, num_edges: int, seed: SeedLike = None, name: Optional[str] = None
) -> EdgeStream:
    """Generate a G(n, M)-style random stream with ``num_edges`` distinct edges.

    Edges are sampled uniformly at random without replacement (rejection
    sampling, which is efficient while ``num_edges`` is well below the
    maximum possible).
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"num_edges={num_edges} exceeds the maximum {max_edges}")
    rng = as_random_source(seed)
    chosen = set()
    edges: List[EdgeTuple] = []
    while len(edges) < num_edges:
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u == v:
            continue
        key = canonical_edge(u, v)
        if key in chosen:
            continue
        chosen.add(key)
        edges.append(key)
    stream = EdgeStream(edges, name=name or f"er-{num_nodes}-{num_edges}", validate=False)
    # Loop-free by construction (u == v rejected above).
    stream.validated = True
    return stream


def barabasi_albert_stream(
    num_nodes: int,
    edges_per_node: int,
    triad_closure: float = 0.0,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> EdgeStream:
    """Generate a preferential-attachment stream (Barabási–Albert).

    Parameters
    ----------
    num_nodes:
        Total nodes; must exceed ``edges_per_node``.
    edges_per_node:
        Number of edges each newcomer adds.
    triad_closure:
        Probability that, after attaching to a node ``w``, the next edge of
        the newcomer closes a triangle by attaching to a random neighbor of
        ``w`` (Holme–Kim style).  Higher values produce more triangles,
        which is what the triangle-counting experiments need.
    """
    if edges_per_node < 1:
        raise ValueError("edges_per_node must be >= 1")
    if num_nodes <= edges_per_node:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = as_random_source(seed)
    edges: List[EdgeTuple] = []
    # repeated_nodes holds one entry per edge endpoint -> preferential attachment.
    repeated_nodes: List[int] = []
    adjacency = {node: set() for node in range(num_nodes)}

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        edges.append(canonical_edge(u, v))
        repeated_nodes.extend((u, v))
        return True

    # Seed clique over the first edges_per_node + 1 nodes.
    core = edges_per_node + 1
    for u in range(core):
        for v in range(u + 1, core):
            add_edge(u, v)

    for new_node in range(core, num_nodes):
        targets_added = 0
        last_target: Optional[int] = None
        guard = 0
        while targets_added < edges_per_node and guard < 100 * edges_per_node:
            guard += 1
            close_triad = (
                last_target is not None
                and triad_closure > 0
                and adjacency[last_target]
                and rng.random() < triad_closure
            )
            if close_triad:
                neighbors = list(adjacency[last_target])
                target = int(neighbors[int(rng.integers(0, len(neighbors)))])
            else:
                target = int(repeated_nodes[int(rng.integers(0, len(repeated_nodes)))])
            if add_edge(new_node, target):
                targets_added += 1
                last_target = target
    stream = EdgeStream(
        edges, name=name or f"ba-{num_nodes}-{edges_per_node}", validate=False
    )
    # Loop-free by construction (add_edge rejects u == v).
    stream.validated = True
    return stream


def chung_lu_stream(
    degree_weights,
    num_edges: int,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> EdgeStream:
    """Generate a Chung–Lu style stream from target degree weights.

    Endpoints of each edge are drawn independently proportionally to the
    weights; duplicate edges and self-loops are rejected.  A power-law
    weight vector yields the heavy-tailed degree distribution of the paper's
    social-network datasets.

    Parameters
    ----------
    degree_weights:
        Sequence of non-negative weights, one per node.
    num_edges:
        Number of distinct edges to emit.
    """
    weights = np.asarray(list(degree_weights), dtype=float)
    if weights.ndim != 1 or len(weights) < 2:
        raise ValueError("degree_weights must be a 1-D sequence of length >= 2")
    if (weights < 0).any():
        raise ValueError("degree_weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("degree_weights must not be all zero")
    probabilities = weights / total
    rng = as_random_source(seed)
    num_nodes = len(weights)
    chosen = set()
    edges: List[EdgeTuple] = []
    max_batches = 200
    batches = 0
    batch_size = max(1024, 2 * num_edges)
    while len(edges) < num_edges and batches < max_batches:
        batches += 1
        endpoints = rng.generator.choice(
            num_nodes, size=(batch_size, 2), p=probabilities
        )
        for u, v in endpoints:
            u, v = int(u), int(v)
            if u == v:
                continue
            key = canonical_edge(u, v)
            if key in chosen:
                continue
            chosen.add(key)
            edges.append(key)
            if len(edges) == num_edges:
                break
    if len(edges) < num_edges:
        raise RuntimeError(
            "chung_lu_stream could not place the requested number of distinct "
            f"edges ({len(edges)}/{num_edges}); increase the node count"
        )
    stream = EdgeStream(edges, name=name or f"cl-{num_nodes}-{num_edges}", validate=False)
    # Loop-free by construction (u == v rejected above).
    stream.validated = True
    return stream


def powerlaw_weights(num_nodes: int, exponent: float = 2.5, minimum: float = 1.0) -> np.ndarray:
    """Return deterministic power-law weights ``w_i ∝ (i + 1)^(-1/(exponent-1))``.

    Using rank-based weights (rather than sampling them) keeps the weight
    vector deterministic regardless of the seed, which simplifies testing.
    """
    if exponent <= 1:
        raise ValueError("exponent must exceed 1")
    ranks = np.arange(1, num_nodes + 1, dtype=float)
    return minimum * ranks ** (-1.0 / (exponent - 1.0))


def powerlaw_cluster_stream(
    num_nodes: int,
    num_edges: int,
    exponent: float = 2.3,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> EdgeStream:
    """Generate a heavy-tailed stream with many triangles.

    A Chung–Lu core (power-law weights) provides hubs, which by themselves
    already create a large number of triangles and — crucially for this
    paper — an ``η`` that exceeds ``τ`` by orders of magnitude because many
    triangles share hub edges.
    """
    weights = powerlaw_weights(num_nodes, exponent=exponent)
    return chung_lu_stream(weights, num_edges, seed=seed, name=name or f"plc-{num_nodes}")
