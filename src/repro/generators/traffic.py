"""Synthetic packet-trace generator for the traffic-monitoring example.

The paper motivates per-interval triangle counting on "a network packet
stream collected on a router in a time interval (e.g., one hour in a day)".
We cannot ship a real router trace, so this module synthesises one: a
background of benign host-to-host flows plus, in selected intervals, a
coordinated burst among a small set of hosts (a botnet-like clique) that
sharply raises the triangle count of those intervals.  The anomaly-detection
example flags intervals whose estimated triangle count deviates from the
running baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.streaming.edge_stream import EdgeStream
from repro.streaming.windows import TimestampedRecord
from repro.types import EdgeTuple
from repro.utils.rng import SeedLike, as_random_source


@dataclass(frozen=True)
class TrafficTraceSpec:
    """Parameters of a synthetic packet trace.

    Attributes
    ----------
    num_hosts:
        Size of the host population.
    duration_seconds:
        Total trace duration.
    background_rate:
        Expected number of benign flows per second.
    anomaly_intervals:
        Indices of the windows (given ``window_seconds``) that contain the
        coordinated burst.
    anomaly_clique_size:
        Number of hosts participating in the burst.
    window_seconds:
        Window width the detector will use; needed to position anomalies.
    """

    num_hosts: int = 500
    duration_seconds: float = 3600.0
    background_rate: float = 20.0
    anomaly_intervals: Sequence[int] = (4, 9)
    anomaly_clique_size: int = 12
    window_seconds: float = 300.0


def synthetic_packet_trace(
    spec: TrafficTraceSpec = TrafficTraceSpec(), seed: SeedLike = None
) -> List[TimestampedRecord]:
    """Generate a synthetic packet trace according to ``spec``.

    Returns a list of :class:`TimestampedRecord` sorted by timestamp.  The
    benign background is a sparse random communication pattern (few
    triangles); anomalous windows add a dense clique among
    ``anomaly_clique_size`` hosts, which boosts the triangle count of those
    windows by orders of magnitude.
    """
    rng = as_random_source(seed)
    records: List[TimestampedRecord] = []

    expected_background = int(spec.background_rate * spec.duration_seconds)
    for _ in range(expected_background):
        time = float(rng.random() * spec.duration_seconds)
        u = int(rng.integers(0, spec.num_hosts))
        v = int(rng.integers(0, spec.num_hosts))
        if u == v:
            continue
        records.append(TimestampedRecord(u, v, time))

    clique_hosts = list(range(spec.anomaly_clique_size))
    for window_index in spec.anomaly_intervals:
        start = window_index * spec.window_seconds
        end = min(start + spec.window_seconds, spec.duration_seconds)
        if start >= spec.duration_seconds:
            continue
        for i, u in enumerate(clique_hosts):
            for v in clique_hosts[i + 1 :]:
                time = float(start + rng.random() * (end - start))
                records.append(TimestampedRecord(u, v, time))

    records.sort(key=lambda r: r.time)
    return records


#: Discrete heavy-tail packet-count distribution: (cumulative probability,
#: packets per flow).  Roughly half the flows are single-packet, a few are
#: elephants — the shape of real per-flow packet counts.
_PACKETS_PER_FLOW = ((0.50, 1), (0.75, 2), (0.92, 4), (1.0, 11))


def packet_flow_stream(
    num_records: int,
    num_hosts: Optional[int] = None,
    edges_per_node: int = 3,
    triad_closure: float = 0.1,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> EdgeStream:
    """Generate a packet-level edge stream over a scale-free host topology.

    The paper's motivating workload is a router packet stream: the same
    host pair ("flow") re-appears once per packet, so the stream is a
    duplicate-heavy multigraph sequence over a comparatively sparse
    topology.  This generator builds a Barabási–Albert host graph and emits
    each flow a heavy-tailed number of times, shuffled into arrival order —
    the workload the throughput benchmarks measure ingestion on.

    Parameters
    ----------
    num_records:
        Exact stream length (records, counting repeats).
    num_hosts:
        Host population; default scales as ``num_records // 8`` (≥ 1000) so
        the distinct-flow fraction stays realistic as the stream grows.
    """
    if num_records < 1:
        raise ValueError("num_records must be >= 1")
    rng = as_random_source(seed)
    if num_hosts is None:
        num_hosts = max(1000, num_records // 8)
    from repro.generators.random_graphs import barabasi_albert_stream

    topology = barabasi_albert_stream(
        num_hosts, edges_per_node, triad_closure=triad_closure, seed=rng.spawn(1)[0]
    ).edges()
    records: List[EdgeTuple] = []
    while len(records) < num_records:
        draws = rng.random(len(topology))
        for flow, draw in zip(topology, draws):
            for cumulative, packets in _PACKETS_PER_FLOW:
                if draw <= cumulative:
                    records.extend([flow] * packets)
                    break
        if not records:  # pragma: no cover - defensive, topology is never empty
            break
    rng.shuffle(records)
    del records[num_records:]
    stream = EdgeStream(records, name=name or "packet-flows", validate=False)
    stream.validated = True  # the topology generator never emits self-loops
    return stream


def packet_flow_records(
    num_records: int,
    duration_seconds: float = 3600.0,
    num_hosts: Optional[int] = None,
    edges_per_node: int = 3,
    triad_closure: float = 0.1,
    out_of_order_fraction: float = 0.0,
    max_delay_seconds: float = 30.0,
    seed: SeedLike = None,
) -> List[TimestampedRecord]:
    """Timestamp emission for :func:`packet_flow_stream`.

    Wraps the packet-flow workload in arrival timestamps so it can drive
    the interval-based monitoring pipeline
    (:class:`~repro.streaming.monitor.WindowedTriangleMonitor`,
    :class:`~repro.streaming.windows.TimeWindowedStream`).  Arrival times
    are uniform order statistics over ``[0, duration_seconds)`` — the
    arrival process of a homogeneous Poisson stream conditioned on its
    count.

    The returned list is in **delivery order**: with
    ``out_of_order_fraction > 0``, that fraction of records is delivered up
    to ``max_delay_seconds`` after its timestamp (timestamps are
    unchanged), producing the bounded out-of-order arrivals a watermark
    with ``allowed_lateness ≥ max_delay_seconds`` admits losslessly.
    """
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if not 0.0 <= out_of_order_fraction <= 1.0:
        raise ValueError("out_of_order_fraction must be in [0, 1]")
    if max_delay_seconds < 0:
        raise ValueError("max_delay_seconds must be >= 0")
    rng = as_random_source(seed)
    stream = packet_flow_stream(
        num_records,
        num_hosts=num_hosts,
        edges_per_node=edges_per_node,
        triad_closure=triad_closure,
        seed=rng.spawn(1)[0],
    )
    times = sorted(float(rng.random() * duration_seconds) for _ in range(num_records))
    records = [
        TimestampedRecord(u, v, time) for (u, v), time in zip(stream.edges(), times)
    ]
    if out_of_order_fraction and max_delay_seconds:
        delivery = []
        for record in records:
            delay = 0.0
            if float(rng.random()) < out_of_order_fraction:
                delay = float(rng.random()) * max_delay_seconds
            delivery.append(record.time + delay)
        order = sorted(range(len(records)), key=lambda i: (delivery[i], i))
        records = [records[i] for i in order]
    return records
