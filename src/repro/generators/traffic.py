"""Synthetic packet-trace generator for the traffic-monitoring example.

The paper motivates per-interval triangle counting on "a network packet
stream collected on a router in a time interval (e.g., one hour in a day)".
We cannot ship a real router trace, so this module synthesises one: a
background of benign host-to-host flows plus, in selected intervals, a
coordinated burst among a small set of hosts (a botnet-like clique) that
sharply raises the triangle count of those intervals.  The anomaly-detection
example flags intervals whose estimated triangle count deviates from the
running baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.streaming.windows import TimestampedRecord
from repro.utils.rng import SeedLike, as_random_source


@dataclass(frozen=True)
class TrafficTraceSpec:
    """Parameters of a synthetic packet trace.

    Attributes
    ----------
    num_hosts:
        Size of the host population.
    duration_seconds:
        Total trace duration.
    background_rate:
        Expected number of benign flows per second.
    anomaly_intervals:
        Indices of the windows (given ``window_seconds``) that contain the
        coordinated burst.
    anomaly_clique_size:
        Number of hosts participating in the burst.
    window_seconds:
        Window width the detector will use; needed to position anomalies.
    """

    num_hosts: int = 500
    duration_seconds: float = 3600.0
    background_rate: float = 20.0
    anomaly_intervals: Sequence[int] = (4, 9)
    anomaly_clique_size: int = 12
    window_seconds: float = 300.0


def synthetic_packet_trace(
    spec: TrafficTraceSpec = TrafficTraceSpec(), seed: SeedLike = None
) -> List[TimestampedRecord]:
    """Generate a synthetic packet trace according to ``spec``.

    Returns a list of :class:`TimestampedRecord` sorted by timestamp.  The
    benign background is a sparse random communication pattern (few
    triangles); anomalous windows add a dense clique among
    ``anomaly_clique_size`` hosts, which boosts the triangle count of those
    windows by orders of magnitude.
    """
    rng = as_random_source(seed)
    records: List[TimestampedRecord] = []

    expected_background = int(spec.background_rate * spec.duration_seconds)
    for _ in range(expected_background):
        time = float(rng.random() * spec.duration_seconds)
        u = int(rng.integers(0, spec.num_hosts))
        v = int(rng.integers(0, spec.num_hosts))
        if u == v:
            continue
        records.append(TimestampedRecord(u, v, time))

    clique_hosts = list(range(spec.anomaly_clique_size))
    for window_index in spec.anomaly_intervals:
        start = window_index * spec.window_seconds
        end = min(start + spec.window_seconds, spec.duration_seconds)
        if start >= spec.duration_seconds:
            continue
        for i, u in enumerate(clique_hosts):
            for v in clique_hosts[i + 1 :]:
                time = float(start + rng.random() * (end - start))
                records.append(TimestampedRecord(u, v, time))

    records.sort(key=lambda r: r.time)
    return records
