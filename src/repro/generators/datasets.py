"""Dataset registry: laptop-scale synthetic analogues of the paper's graphs.

The paper's Table II lists eight public graphs between ~3M and ~1.2B edges.
Offline and in pure Python we cannot replay those files, so each name maps
to a deterministic synthetic stream whose *relative* properties match what
the paper's argument needs:

* heavy-tailed degree distribution (hubs), so that many triangles share a
  hub edge and ``η >> τ``;
* dataset-to-dataset variation in the ``η / τ`` ratio, mirroring the spread
  visible in Figure 1;
* sizes ordered like the paper's datasets (``twitter-sim`` largest,
  ``youtube-sim`` smallest), scaled down by roughly 10⁴–10⁵.

Every dataset is generated from a fixed seed, so exact statistics (Table II
analogue) are stable across runs and across machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import DatasetNotFoundError
from repro.generators.random_graphs import (
    barabasi_albert_stream,
    powerlaw_cluster_stream,
)
from repro.streaming.edge_stream import EdgeStream
from repro.streaming.transforms import shuffle_stream


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one registered dataset.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"flickr-sim"``.
    paper_name:
        The paper dataset this one stands in for, e.g. ``"Flickr"``.
    paper_nodes, paper_edges, paper_triangles:
        The original sizes reported in Table II (for the record; the
        synthetic analogue is much smaller).
    builder:
        Zero-argument callable that builds the synthetic stream.
    description:
        One-line description of the synthetic construction.
    """

    name: str
    paper_name: str
    paper_nodes: int
    paper_edges: int
    paper_triangles: int
    builder: Callable[[], EdgeStream]
    description: str


def _make_powerlaw(name: str, nodes: int, edges: int, exponent: float, seed: int):
    def build() -> EdgeStream:
        stream = powerlaw_cluster_stream(
            nodes, edges, exponent=exponent, seed=seed, name=name
        )
        return shuffle_stream(stream, seed=seed + 1)

    return build


def _make_ba(name: str, nodes: int, edges_per_node: int, triad: float, seed: int):
    def build() -> EdgeStream:
        stream = barabasi_albert_stream(
            nodes, edges_per_node, triad_closure=triad, seed=seed, name=name
        )
        return shuffle_stream(stream, seed=seed + 1)

    return build


# Paper Table II values, kept verbatim for reference / reporting.
_PAPER_TABLE = {
    "Twitter": (41_652_231, 1_202_513_046, 34_824_916_864),
    "com-Orkut": (3_072_441, 117_185_803, 627_584_181),
    "LiveJournal": (5_189_809, 48_688_097, 177_820_130),
    "Pokec": (1_632_803, 22_301_964, 32_557_458),
    "Flickr": (105_938, 2_316_948, 107_987_357),
    "Wiki-Talk": (2_394_385, 4_659_565, 9_203_519),
    "Web-Google": (875_713, 4_322_051, 13_391_903),
    "YouTube": (1_138_499, 2_990_443, 3_056_386),
}


def _registry() -> Dict[str, DatasetSpec]:
    specs = [
        DatasetSpec(
            "twitter-sim",
            "Twitter",
            *_PAPER_TABLE["Twitter"],
            builder=_make_powerlaw("twitter-sim", 3000, 24000, 1.9, seed=101),
            description="Chung-Lu power-law (exponent 1.9), 3k nodes / 24k edges",
        ),
        DatasetSpec(
            "orkut-sim",
            "com-Orkut",
            *_PAPER_TABLE["com-Orkut"],
            builder=_make_powerlaw("orkut-sim", 2500, 18000, 2.1, seed=102),
            description="Chung-Lu power-law (exponent 2.1), 2.5k nodes / 18k edges",
        ),
        DatasetSpec(
            "livejournal-sim",
            "LiveJournal",
            *_PAPER_TABLE["LiveJournal"],
            builder=_make_ba("livejournal-sim", 2500, 8, 0.5, seed=103),
            description="Barabasi-Albert m=8 with 0.5 triad closure, 2.5k nodes",
        ),
        DatasetSpec(
            "pokec-sim",
            "Pokec",
            *_PAPER_TABLE["Pokec"],
            builder=_make_ba("pokec-sim", 2000, 7, 0.4, seed=104),
            description="Barabasi-Albert m=7 with 0.4 triad closure, 2k nodes",
        ),
        DatasetSpec(
            "flickr-sim",
            "Flickr",
            *_PAPER_TABLE["Flickr"],
            builder=_make_powerlaw("flickr-sim", 1000, 12000, 1.8, seed=105),
            description="Dense Chung-Lu power-law (exponent 1.8), 1k nodes / 12k edges",
        ),
        DatasetSpec(
            "wiki-talk-sim",
            "Wiki-Talk",
            *_PAPER_TABLE["Wiki-Talk"],
            builder=_make_powerlaw("wiki-talk-sim", 3000, 9000, 2.0, seed=106),
            description="Sparse Chung-Lu power-law (exponent 2.0), 3k nodes / 9k edges",
        ),
        DatasetSpec(
            "web-google-sim",
            "Web-Google",
            *_PAPER_TABLE["Web-Google"],
            builder=_make_ba("web-google-sim", 1800, 5, 0.55, seed=107),
            description="Barabasi-Albert m=5 with 0.55 triad closure, 1.8k nodes",
        ),
        DatasetSpec(
            "youtube-sim",
            "YouTube",
            *_PAPER_TABLE["YouTube"],
            builder=_make_ba("youtube-sim", 1500, 4, 0.3, seed=108),
            description="Barabasi-Albert m=4 with 0.3 triad closure, 1.5k nodes",
        ),
    ]
    return {spec.name: spec for spec in specs}


_REGISTRY = _registry()
_CACHE: Dict[str, EdgeStream] = {}


def available_datasets() -> List[str]:
    """Return the registered dataset names in the paper's Table II order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetNotFoundError(
            f"unknown dataset {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def load_dataset(name: str, use_cache: bool = True) -> EdgeStream:
    """Build (or fetch from cache) the synthetic stream registered under ``name``.

    Streams are deterministic, so the in-process cache only saves generation
    time; it never changes results.
    """
    spec = dataset_spec(name)
    if use_cache and name in _CACHE:
        return _CACHE[name]
    stream = spec.builder()
    if use_cache:
        _CACHE[name] = stream
    return stream


def clear_dataset_cache() -> None:
    """Drop all cached streams (mainly useful in tests)."""
    _CACHE.clear()


def paper_dataset_table() -> List[List]:
    """Return the original Table II rows ``[name, nodes, edges, triangles]``."""
    return [
        [paper_name, nodes, edges, triangles]
        for paper_name, (nodes, edges, triangles) in _PAPER_TABLE.items()
    ]
