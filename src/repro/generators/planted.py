"""Planted-structure generators with known exact triangle counts.

These graphs make the strongest unit tests: the exact global and local
triangle counts are known in closed form, so estimator unbiasedness and
variance formulas can be checked without trusting the exact counters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.streaming.edge_stream import EdgeStream
from repro.types import EdgeTuple
from repro.utils.rng import SeedLike, as_random_source


def planted_clique_stream(
    clique_size: int,
    noise_edges: int = 0,
    num_noise_nodes: int = 0,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> EdgeStream:
    """A clique of ``clique_size`` nodes plus optional triangle-free noise.

    The clique contributes exactly ``C(clique_size, 3)`` triangles; noise
    edges connect clique nodes to fresh degree-one nodes and therefore add
    no triangles, keeping the exact count known.

    Parameters
    ----------
    clique_size:
        Number of clique nodes (>= 3 for any triangles to exist).
    noise_edges:
        Number of pendant edges to append.
    num_noise_nodes:
        Accepted for API compatibility; pendant edges always attach to a
        fresh node so the triangle count stays exactly ``C(clique_size, 3)``.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    edges: List[EdgeTuple] = []
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            edges.append((u, v))
    rng = as_random_source(seed)
    for i in range(noise_edges):
        anchor = int(rng.integers(0, clique_size))
        pendant = clique_size + i
        edges.append((anchor, pendant))
    stream = EdgeStream(edges, name=name or f"clique-{clique_size}", validate=False)
    # Loop-free by construction (distinct endpoints throughout).
    stream.validated = True
    return stream


def planted_triangles_stream(
    num_triangles: int,
    shared_edge: bool = False,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> EdgeStream:
    """A stream of ``num_triangles`` triangles, disjoint or sharing one edge.

    * ``shared_edge=False``: node-disjoint triangles; τ = ``num_triangles``
      and η = 0 (no two triangles share an edge).
    * ``shared_edge=True``: a "book" graph — all triangles share the single
      edge ``(0, 1)`` which arrives *first*, so that edge is a non-last edge
      of every triangle and η = C(num_triangles, 2).  This gives precise
      control over the covariance term for variance tests.
    """
    if num_triangles < 0:
        raise ValueError("num_triangles must be non-negative")
    edges: List[EdgeTuple] = []
    if shared_edge:
        edges.append((0, 1))
        for i in range(num_triangles):
            apex = 2 + i
            edges.append((0, apex))
            edges.append((1, apex))
    else:
        for i in range(num_triangles):
            base = 3 * i
            edges.append((base, base + 1))
            edges.append((base + 1, base + 2))
            edges.append((base, base + 2))
    # Optionally deterministic shuffle of *disjoint* triangles does not change
    # eta; keep the natural order for reproducibility.
    _ = as_random_source(seed)
    label = "book" if shared_edge else "disjoint"
    stream = EdgeStream(edges, name=name or f"planted-{label}-{num_triangles}", validate=False)
    # Loop-free by construction (distinct endpoints throughout).
    stream.validated = True
    return stream
