"""repro — reproduction of "REPT: A Streaming Algorithm of Approximating
Global and Local Triangle Counts in Parallel" (Wang et al., ICDE 2019).

The package implements the REPT estimator (random edge partition and
triangle counting), the baselines it is evaluated against (MASCOT,
TRIÈST-IMPR, GPS In-Stream), the streaming / graph / sampling substrates
they all run on, and an experiment harness that regenerates every table and
figure of the paper's evaluation section on laptop-scale synthetic
analogues of its datasets.

Quickstart
----------
>>> from repro import ReptEstimator, ReptConfig
>>> from repro.generators import planted_clique_stream
>>> stream = planted_clique_stream(40)           # C(40, 3) = 9880 triangles
>>> estimator = ReptEstimator(ReptConfig(m=5, c=5, seed=1))
>>> round(estimator.run(stream).global_count, -2) > 0
True

See ``examples/`` for runnable end-to-end scenarios and DESIGN.md /
EXPERIMENTS.md for the reproduction methodology.
"""

from repro.baselines import (
    DoulionEstimator,
    ExactStreamingCounter,
    GpsInStreamEstimator,
    IndependentEnsemble,
    MascotEstimator,
    TriestImprEstimator,
    WedgeSamplingEstimator,
    parallelize,
)
from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.core import ReptConfig, ReptEstimator, run_rept
from repro.graph import AdjacencyGraph, count_triangles, count_triangles_per_node
from repro.streaming import EdgeStream
from repro.generators import available_datasets, load_dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReptConfig",
    "ReptEstimator",
    "run_rept",
    "MascotEstimator",
    "TriestImprEstimator",
    "GpsInStreamEstimator",
    "DoulionEstimator",
    "WedgeSamplingEstimator",
    "ExactStreamingCounter",
    "IndependentEnsemble",
    "parallelize",
    "StreamingTriangleEstimator",
    "TriangleEstimate",
    "AdjacencyGraph",
    "count_triangles",
    "count_triangles_per_node",
    "EdgeStream",
    "available_datasets",
    "load_dataset",
]
