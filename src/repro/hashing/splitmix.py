"""SplitMix64-based edge hashing (the default family).

The splitmix64 finaliser is a well-known 64-bit avalanche mix; combined
with a random per-function seed it behaves like a uniform random function
for partitioning purposes, which is what REPT's analysis assumes of ``h``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import EdgeHashFunction, _MASK64
from repro.utils.rng import SeedLike, as_random_source


def splitmix64(x: int) -> int:
    """Apply the splitmix64 finaliser to a 64-bit integer."""
    x &= _MASK64
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a ``uint64`` array.

    Bit-identical to the scalar version element-wise: ``uint64`` arithmetic
    wraps modulo :math:`2^{64}`, which is exactly the scalar ``& _MASK64``.
    """
    z = np.ascontiguousarray(x, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class SplitMixEdgeHash(EdgeHashFunction):
    """Seeded splitmix64 hashing of canonical edge keys.

    Parameters
    ----------
    buckets:
        Range size ``m``.
    seed:
        Seed-like value; two functions built with different seeds are
        effectively independent.
    """

    def __init__(self, buckets: int, seed: SeedLike = None) -> None:
        super().__init__(buckets)
        self._seed = as_random_source(seed).random_uint64()

    def _hash_key(self, key: int) -> int:
        return splitmix64(key ^ self._seed)

    def _hash_keys_many(self, keys):
        return splitmix64_array(keys ^ np.uint64(self._seed))
