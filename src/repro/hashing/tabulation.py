"""Simple tabulation hashing for edge partitioning.

Simple tabulation is 3-independent and has strong concentration properties;
it is included as an alternative family to verify (ablation A3) that REPT's
accuracy does not depend on the specific hash family, only on its uniformity.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import EdgeHashFunction, _MASK64
from repro.hashing.splitmix import splitmix64, splitmix64_array
from repro.utils.rng import SeedLike, as_random_source


class TabulationEdgeHash(EdgeHashFunction):
    """Byte-wise simple tabulation hashing of a pre-mixed 64-bit edge key.

    The key is first passed through splitmix64 (unseeded) so that
    structured node identifiers still exercise all eight byte tables, then
    each byte indexes a random table and the entries are XOR-ed.
    """

    _NUM_TABLES = 8
    _TABLE_SIZE = 256

    def __init__(self, buckets: int, seed: SeedLike = None) -> None:
        super().__init__(buckets)
        rng = as_random_source(seed)
        self._tables = rng.generator.integers(
            0, 2**64, size=(self._NUM_TABLES, self._TABLE_SIZE), dtype=np.uint64
        )

    def _hash_key(self, key: int) -> int:
        mixed = splitmix64(key)
        acc = 0
        for i in range(self._NUM_TABLES):
            byte = (mixed >> (8 * i)) & 0xFF
            acc ^= int(self._tables[i, byte])
        return acc & _MASK64

    def _hash_keys_many(self, keys):
        mixed = splitmix64_array(keys)
        acc = np.zeros(len(mixed), dtype=np.uint64)
        byte_mask = np.uint64(0xFF)
        for i in range(self._NUM_TABLES):
            bytes_i = (mixed >> np.uint64(8 * i)) & byte_mask
            acc ^= self._tables[i][bytes_i]
        return acc
