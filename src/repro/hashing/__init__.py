"""Hash families used for random edge partitioning.

REPT assigns every edge of the stream to one of ``m`` buckets with a random
hash function ``h``; processors within one group share the function so the
resulting edge sets are *disjoint*, which is what eliminates the covariance
between sampled semi-triangles.  Groups of processors (Algorithm 2) use
independent hash functions.

Two interchangeable families are provided:

* :class:`SplitMixEdgeHash` — a seeded 64-bit mix (splitmix64-style finaliser)
  of the canonical edge tuple.  Fast, stateless, the default.
* :class:`TabulationEdgeHash` — simple tabulation hashing over the bytes of
  the mixed key.  3-independent, used by the hash-family ablation.
"""

from repro.hashing.base import (
    EdgeHashFunction,
    HashFamily,
    edge_key_array,
    node_key_array,
    stable_node_key,
)
from repro.hashing.splitmix import SplitMixEdgeHash, splitmix64, splitmix64_array
from repro.hashing.tabulation import TabulationEdgeHash

__all__ = [
    "EdgeHashFunction",
    "HashFamily",
    "SplitMixEdgeHash",
    "TabulationEdgeHash",
    "splitmix64",
    "splitmix64_array",
    "edge_key_array",
    "node_key_array",
    "stable_node_key",
    "make_hash_family",
    "make_hash_function",
]

_HASH_KINDS = {"splitmix": SplitMixEdgeHash, "tabulation": TabulationEdgeHash}


def make_hash_function(kind: str, buckets: int, seed=None) -> EdgeHashFunction:
    """Construct a single edge hash function of the requested ``kind``.

    Unlike :func:`make_hash_family` this does not spawn child seeds: the
    same ``(kind, buckets, seed)`` triple always produces the same function,
    which the parallel REPT drivers rely on to rebuild identical functions
    inside worker processes.
    """
    if kind not in _HASH_KINDS:
        raise ValueError(f"unknown hash kind {kind!r}; expected one of {sorted(_HASH_KINDS)}")
    return _HASH_KINDS[kind](buckets, seed)


def make_hash_family(kind: str, buckets: int, seed=None, count: int = 1) -> HashFamily:
    """Construct a :class:`HashFamily` of ``count`` independent functions.

    Parameters
    ----------
    kind:
        ``"splitmix"`` or ``"tabulation"``.
    buckets:
        Range size ``m``; every function maps edges to ``{0, ..., m-1}``.
    seed:
        Seed-like value; each function in the family receives an
        independently spawned child seed.
    count:
        Number of functions in the family (one per processor group).
    """
    from repro.utils.rng import as_random_source

    if kind not in _HASH_KINDS:
        raise ValueError(f"unknown hash kind {kind!r}; expected one of {sorted(_HASH_KINDS)}")
    sources = as_random_source(seed).spawn(count)
    functions = [_HASH_KINDS[kind](buckets, source) for source in sources]
    return HashFamily(functions)
