"""Abstract interface for edge-partitioning hash functions.

Besides the scalar :meth:`EdgeHashFunction.bucket` used by the per-edge
path, every function exposes a *vectorized* entry point for the batched
ingestion pipeline:

* :meth:`EdgeHashFunction.bucket_many` hashes whole arrays of endpoint
  pairs in one call;
* :meth:`EdgeHashFunction.bucket_from_keys` skips straight to the seeded
  mixing stage when the caller already holds the canonical 64-bit edge keys
  (which are seed-independent, so one key array serves every processor
  group of an estimator).

Both are exact: for every pair they return the same bucket as the scalar
path, bit for bit, which the hashing tests assert over int, string and
mixed node identifiers.
"""

from __future__ import annotations

import abc
import numbers
from typing import List, Sequence

import numpy as np

from repro.types import NodeId, canonical_edge


class EdgeHashFunction(abc.ABC):
    """Maps undirected edges uniformly into ``{0, ..., buckets - 1}``.

    Implementations must be deterministic for a given seed and must treat
    ``(u, v)`` and ``(v, u)`` identically (the canonical edge is hashed).
    """

    def __init__(self, buckets: int) -> None:
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.buckets = buckets

    @abc.abstractmethod
    def _hash_key(self, key: int) -> int:
        """Hash a non-negative integer key to a 64-bit value."""

    def _hash_keys_many(self, keys: np.ndarray) -> np.ndarray:
        """Hash a ``uint64`` array of edge keys to 64-bit values.

        The base implementation loops over the scalar :meth:`_hash_key`;
        the built-in families override it with pure NumPy pipelines.
        """
        return np.fromiter(
            (self._hash_key(int(key)) for key in keys),
            dtype=np.uint64,
            count=len(keys),
        )

    def _edge_key(self, u: NodeId, v: NodeId) -> int:
        cu, cv = canonical_edge(u, v)
        # Combine endpoint hashes order-insensitively but injectively enough
        # for partitioning purposes; Python's hash() of ints is the identity,
        # strings fall back to a stable FNV-style fold so results do not
        # depend on PYTHONHASHSEED.
        return (_stable_node_key(cu) * 0x9E3779B97F4A7C15 + _stable_node_key(cv)) & _MASK64

    def bucket(self, u: NodeId, v: NodeId) -> int:
        """Return the bucket of edge ``{u, v}`` in ``{0, ..., buckets-1}``."""
        return self._hash_key(self._edge_key(u, v)) % self.buckets

    def bucket_many(self, u_nodes: Sequence[NodeId], v_nodes: Sequence[NodeId]) -> np.ndarray:
        """Vectorized :meth:`bucket` over parallel endpoint sequences.

        Returns a ``uint64`` array of buckets, one per pair, identical to
        calling :meth:`bucket` element-wise.  Self-loops are rejected just
        like the scalar path (via :func:`canonical_edge`).
        """
        if len(u_nodes) != len(v_nodes):
            raise ValueError("u_nodes and v_nodes must have equal length")
        first_keys: List[int] = []
        second_keys: List[int] = []
        for u, v in zip(u_nodes, v_nodes):
            cu, cv = canonical_edge(u, v)
            first_keys.append(_stable_node_key(cu))
            second_keys.append(_stable_node_key(cv))
        return self.bucket_from_keys(edge_key_array(first_keys, second_keys))

    def bucket_from_keys(self, edge_keys: np.ndarray) -> np.ndarray:
        """Vectorized bucketing of precomputed canonical edge keys.

        ``edge_keys`` is the ``uint64`` array produced by
        :func:`edge_key_array` (or, equivalently, scalar :meth:`_edge_key`
        values).  The keys are seed-independent, so callers with several
        hash functions compute them once and reuse the array.
        """
        edge_keys = np.ascontiguousarray(edge_keys, dtype=np.uint64)
        return self._hash_keys_many(edge_keys) % np.uint64(self.buckets)

    def __call__(self, u: NodeId, v: NodeId) -> int:
        return self.bucket(u, v)


class HashFamily:
    """An ordered collection of independent :class:`EdgeHashFunction` objects."""

    def __init__(self, functions: Sequence[EdgeHashFunction]) -> None:
        if not functions:
            raise ValueError("a hash family needs at least one function")
        buckets = {f.buckets for f in functions}
        if len(buckets) != 1:
            raise ValueError("all functions in a family must share the bucket count")
        self._functions: List[EdgeHashFunction] = list(functions)
        self.buckets = functions[0].buckets

    def __len__(self) -> int:
        return len(self._functions)

    def __getitem__(self, index: int) -> EdgeHashFunction:
        return self._functions[index]

    def __iter__(self):
        return iter(self._functions)


_MASK64 = (1 << 64) - 1

#: 64-bit golden-ratio constant used to fold the two endpoint keys.
_GOLDEN64 = 0x9E3779B97F4A7C15


def edge_key_array(first_keys, second_keys) -> np.ndarray:
    """Vectorized :meth:`EdgeHashFunction._edge_key` from stable node keys.

    ``first_keys``/``second_keys`` hold :func:`stable_node_key` values of
    the *canonically ordered* endpoints (first ≤ second in canonical-edge
    order).  Arithmetic is ``uint64`` with wraparound, matching the scalar
    path's ``& _MASK64`` exactly.
    """
    first = np.ascontiguousarray(first_keys, dtype=np.uint64)
    second = np.ascontiguousarray(second_keys, dtype=np.uint64)
    return first * np.uint64(_GOLDEN64) + second


def node_key_array(nodes: Sequence[NodeId]) -> np.ndarray:
    """Return the :func:`stable_node_key` of every node as a ``uint64`` array."""
    return np.fromiter(
        (_stable_node_key(node) for node in nodes), dtype=np.uint64, count=len(nodes)
    )


def stable_node_key(node: NodeId) -> int:
    """Public alias of :func:`_stable_node_key` (stable 64-bit node key)."""
    return _stable_node_key(node)


def _stable_node_key(node: NodeId) -> int:
    """Map a node identifier to a stable non-negative 64-bit integer.

    Identifiers that are *equal* must map to the same key: dict/set
    semantics treat ``1``, ``1.0``, ``True`` and ``numpy.int64(1)`` as one
    node everywhere else in the library (adjacency keys, interning), so the
    hash layer canonicalises numeric equality classes to the integer branch
    before hashing.  Without this, the per-edge path (which hashes each raw
    arrival) and the batched path (which memoises one key per interned
    node) could route the same edge to different processor slots.
    """
    if type(node) is int:  # fast path: the overwhelmingly common case
        return node & _MASK64
    if isinstance(node, bool):
        return int(node)
    if isinstance(node, numbers.Integral):  # numpy integer scalars, etc.
        return int(node) & _MASK64
    if isinstance(node, numbers.Real):
        as_float = float(node)
        if as_float.is_integer():
            return int(as_float) & _MASK64
    data = str(node).encode("utf-8")
    acc = 0xCBF29CE484222325  # FNV-1a 64-bit offset basis
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & _MASK64
    return acc
