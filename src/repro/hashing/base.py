"""Abstract interface for edge-partitioning hash functions."""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.types import NodeId, canonical_edge


class EdgeHashFunction(abc.ABC):
    """Maps undirected edges uniformly into ``{0, ..., buckets - 1}``.

    Implementations must be deterministic for a given seed and must treat
    ``(u, v)`` and ``(v, u)`` identically (the canonical edge is hashed).
    """

    def __init__(self, buckets: int) -> None:
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.buckets = buckets

    @abc.abstractmethod
    def _hash_key(self, key: int) -> int:
        """Hash a non-negative integer key to a 64-bit value."""

    def _edge_key(self, u: NodeId, v: NodeId) -> int:
        cu, cv = canonical_edge(u, v)
        # Combine endpoint hashes order-insensitively but injectively enough
        # for partitioning purposes; Python's hash() of ints is the identity,
        # strings fall back to a stable FNV-style fold so results do not
        # depend on PYTHONHASHSEED.
        return (_stable_node_key(cu) * 0x9E3779B97F4A7C15 + _stable_node_key(cv)) & _MASK64

    def bucket(self, u: NodeId, v: NodeId) -> int:
        """Return the bucket of edge ``{u, v}`` in ``{0, ..., buckets-1}``."""
        return self._hash_key(self._edge_key(u, v)) % self.buckets

    def __call__(self, u: NodeId, v: NodeId) -> int:
        return self.bucket(u, v)


class HashFamily:
    """An ordered collection of independent :class:`EdgeHashFunction` objects."""

    def __init__(self, functions: Sequence[EdgeHashFunction]) -> None:
        if not functions:
            raise ValueError("a hash family needs at least one function")
        buckets = {f.buckets for f in functions}
        if len(buckets) != 1:
            raise ValueError("all functions in a family must share the bucket count")
        self._functions: List[EdgeHashFunction] = list(functions)
        self.buckets = functions[0].buckets

    def __len__(self) -> int:
        return len(self._functions)

    def __getitem__(self, index: int) -> EdgeHashFunction:
        return self._functions[index]

    def __iter__(self):
        return iter(self._functions)


_MASK64 = (1 << 64) - 1


def _stable_node_key(node: NodeId) -> int:
    """Map a node identifier to a stable non-negative 64-bit integer."""
    if isinstance(node, bool):  # bool is an int subclass; treat explicitly
        return int(node)
    if isinstance(node, int):
        return node & _MASK64
    data = str(node).encode("utf-8")
    acc = 0xCBF29CE484222325  # FNV-1a 64-bit offset basis
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & _MASK64
    return acc
