"""Priority (order) sampling used by Graph Priority Sampling (GPS).

Each arriving item ``e`` receives a weight ``w(e)`` and a priority
``r(e) = w(e) / u(e)`` with ``u(e)`` uniform on (0, 1]; the sampler keeps
the ``k`` items of highest priority.  The inclusion probability of a
retained item is ``min(1, w(e) / z*)`` where ``z*`` is the threshold (the
``(k+1)``-th largest priority seen), which is what the Horvitz–Thompson
style estimator divides by.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_random_source


@dataclass(order=True)
class PrioritizedItem:
    """An item retained by the priority sampler (ordered by priority)."""

    priority: float
    item: Hashable = field(compare=False)
    weight: float = field(compare=False, default=1.0)


class PrioritySampler:
    """Keep the ``capacity`` highest-priority items of a weighted stream.

    Parameters
    ----------
    capacity:
        Sample budget ``k``.
    seed:
        Seed-like value for the uniform variates.
    """

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity < 1:
            raise ConfigurationError(f"sampler capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = as_random_source(seed)
        self._heap: List[PrioritizedItem] = []  # min-heap on priority
        self._index: Dict[Hashable, PrioritizedItem] = {}
        self.threshold = 0.0  # z*: (k+1)-th largest priority observed so far
        self.num_offered = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._index

    def items(self) -> List[Hashable]:
        """Return the retained items (arbitrary order)."""
        return list(self._index)

    def weight_of(self, item: Hashable) -> Optional[float]:
        """Return the stored weight of a retained item (None if absent)."""
        entry = self._index.get(item)
        return entry.weight if entry is not None else None

    def inclusion_probability(self, item: Hashable) -> float:
        """Return the estimated inclusion probability ``min(1, w / z*)``.

        Items not currently retained have probability 0; before the sample
        first overflows, every retained item has probability 1.
        """
        entry = self._index.get(item)
        if entry is None:
            return 0.0
        if self.threshold <= 0:
            return 1.0
        return min(1.0, entry.weight / self.threshold)

    def offer(self, item: Hashable, weight: float) -> Optional[Hashable]:
        """Offer a weighted item; return the evicted item (if any).

        When the sampler is below capacity the item is always retained.
        Otherwise the lowest-priority entry (possibly the new item itself)
        is dropped and the threshold ``z*`` is raised to its priority.
        """
        if weight <= 0:
            raise ValueError("weights must be positive")
        if item in self._index:
            # Re-offered item: refresh the weight, keep the old priority.
            self._index[item].weight = weight
            return None
        self.num_offered += 1
        u = self._rng.random()
        u = u if u > 0 else 1e-12
        entry = PrioritizedItem(priority=weight / u, item=item, weight=weight)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            self._index[item] = entry
            return None
        lowest = self._heap[0]
        if entry.priority <= lowest.priority:
            # The new item itself is the threshold setter and is discarded.
            self.threshold = max(self.threshold, entry.priority)
            return item
        evicted = heapq.heapreplace(self._heap, entry)
        self.threshold = max(self.threshold, evicted.priority)
        del self._index[evicted.item]
        self._index[item] = entry
        return evicted.item
