"""Classic reservoir sampling over edges (Vitter's Algorithm R).

TRIÈST maintains a uniform sample of exactly ``k`` edges from the prefix of
the stream seen so far; when the reservoir is full an arriving edge replaces
a uniformly random resident edge with probability ``k / t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ConfigurationError
from repro.types import EdgeTuple
from repro.utils.rng import SeedLike, as_random_source


@dataclass(frozen=True)
class ReservoirInsertResult:
    """Outcome of offering one edge to the reservoir.

    Attributes
    ----------
    inserted:
        Whether the offered edge is now in the reservoir.
    evicted:
        The edge that was removed to make room, or ``None``.
    """

    inserted: bool
    evicted: Optional[EdgeTuple]


class EdgeReservoir:
    """A fixed-capacity uniform random sample of stream edges.

    Parameters
    ----------
    capacity:
        Maximum number of edges retained (the paper's "sample budget").
    seed:
        Seed-like value for the replacement coin flips.
    """

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity < 1:
            raise ConfigurationError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = as_random_source(seed)
        self._edges: List[EdgeTuple] = []
        self.num_offered = 0

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: EdgeTuple) -> bool:
        return edge in self._edges

    def edges(self) -> List[EdgeTuple]:
        """Return the current sample (a copy)."""
        return list(self._edges)

    def offer(self, edge: EdgeTuple) -> ReservoirInsertResult:
        """Offer the ``t``-th stream edge to the reservoir.

        Implements Algorithm R: the first ``capacity`` edges are always
        kept; afterwards the edge is kept with probability ``capacity / t``
        and replaces a uniformly random resident edge.
        """
        self.num_offered += 1
        t = self.num_offered
        if len(self._edges) < self.capacity:
            self._edges.append(edge)
            return ReservoirInsertResult(inserted=True, evicted=None)
        if self._rng.random() < self.capacity / t:
            victim_index = int(self._rng.integers(0, self.capacity))
            evicted = self._edges[victim_index]
            self._edges[victim_index] = edge
            return ReservoirInsertResult(inserted=True, evicted=evicted)
        return ReservoirInsertResult(inserted=False, evicted=None)

    @property
    def is_full(self) -> bool:
        """Whether the reservoir has reached its capacity."""
        return len(self._edges) >= self.capacity
