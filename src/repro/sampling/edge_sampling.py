"""Fixed-probability (Bernoulli) edge sampling."""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_random_source


class BernoulliEdgeSampler:
    """Keep each observed item independently with probability ``p``.

    This is the sampling discipline of MASCOT: decisions are i.i.d. across
    edges and across parallel instances seeded differently.
    """

    def __init__(self, probability: float, seed: SeedLike = None) -> None:
        if not 0 < probability <= 1:
            raise ConfigurationError(
                f"sampling probability must be in (0, 1], got {probability}"
            )
        self.probability = float(probability)
        self._rng = as_random_source(seed)
        self.num_offered = 0
        self.num_kept = 0

    def offer(self) -> bool:
        """Flip the coin for the next item; return ``True`` to keep it."""
        self.num_offered += 1
        keep = bool(self._rng.random() < self.probability)
        if keep:
            self.num_kept += 1
        return keep

    @property
    def empirical_rate(self) -> float:
        """Fraction of offered items that were kept so far (0.0 if none)."""
        if self.num_offered == 0:
            return 0.0
        return self.num_kept / self.num_offered
