"""Sampling substrate shared by the streaming estimators.

Three sampling disciplines appear in the paper's comparison:

* **Bernoulli edge sampling** (:class:`BernoulliEdgeSampler`) — keep each
  edge independently with probability ``p``; used by MASCOT.
* **Reservoir sampling** (:class:`EdgeReservoir`) — keep a uniform sample of
  exactly ``k`` edges; used by TRIÈST.
* **Priority (order) sampling** (:class:`PrioritySampler`) — keep the ``k``
  edges of highest priority ``w(e)/u(e)``; used by GPS.
"""

from repro.sampling.edge_sampling import BernoulliEdgeSampler
from repro.sampling.reservoir import EdgeReservoir, ReservoirInsertResult
from repro.sampling.priority import PrioritySampler, PrioritizedItem

__all__ = [
    "BernoulliEdgeSampler",
    "EdgeReservoir",
    "ReservoirInsertResult",
    "PrioritySampler",
    "PrioritizedItem",
]
