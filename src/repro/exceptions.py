"""Exception hierarchy for the REPT reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An estimator or experiment was configured with invalid parameters.

    Examples: a sampling probability outside ``(0, 1]``, a processor count
    of zero, or a reservoir budget smaller than one edge.  Also a
    ``ValueError`` so callers that predate the hierarchy (and tests written
    against plain ``ValueError``) keep working.
    """


class StreamFormatError(ReproError):
    """An edge-stream file or record could not be parsed."""


class DatasetNotFoundError(ReproError):
    """A dataset name was requested that is not present in the registry."""


class EstimatorStateError(ReproError):
    """An estimator was used in an invalid order.

    For example requesting an estimate before any edge has been processed
    when the estimator requires at least one observation, or feeding edges
    after :meth:`finalize` has been called.
    """


class ExperimentError(ReproError):
    """An experiment specification is inconsistent or failed to run."""


class CheckpointError(ReproError):
    """A checkpoint could not be written or validated.

    Raised by :class:`~repro.durability.checkpoint.CheckpointManager` when
    serialising state fails, the target filesystem rejects the write, or a
    just-written checkpoint fails its own integrity read-back.  A failed
    *write* never corrupts earlier checkpoints — files are staged under a
    temporary name and atomically renamed, so recovery always has the last
    complete generation to fall back on.
    """


class WorkerFailedError(ReproError):
    """A pool worker died (or hung) beyond the supervision policy's budget.

    The chunked execution drivers retry failed chunk tasks with exponential
    backoff and restart broken pools; this error surfaces only once those
    budgets are exhausted *and* graceful degradation to the inline serial
    path is disabled (``allow_inline_fallback=False``) or itself failed.
    """


class MembershipError(ReproError):
    """A cluster membership change could not be applied.

    Raised by the elastic shard coordinator for invalid membership
    operations: joining a worker id that is already a member, removing an
    unknown worker, or gracefully removing the last live worker (which
    would leave the shard map with no owner — worker *death* degrades to
    inline execution instead, but an operator-requested removal of the
    final worker is refused loudly).
    """


class ShardMigrationError(ReproError):
    """A live shard could not be migrated to a healthy worker.

    Raised when the elastic coordinator exhausts its retry budget moving a
    shard: the restore point (in-memory snapshot or durable checkpoint)
    cannot be materialised on any live worker, or replaying the unacked
    WAL suffix keeps failing.  Migration failures during *worker death*
    recovery degrade to inline execution instead when permitted; this
    error surfaces only once every recovery path is exhausted.
    """


class ServiceError(ReproError):
    """The estimation service could not satisfy a request.

    Covers session-level failures surfaced through the service API: an
    unknown tenant, an engine/spec mismatch on reopen, a session that has
    exhausted its restart budget, or an operation issued against a session
    that is draining or closed.  Transport-visible errors carry the message
    in the response's ``error`` field rather than crossing the wire as an
    exception.
    """


class ProtocolError(ServiceError):
    """A service request or response violates the wire protocol.

    Raised for undecodable frames (not JSON, not an object), missing or
    unknown ``op`` fields, and protocol-version mismatches.  The server
    answers with an error response where it can; the client raises.
    """


class RecoveryError(ReproError):
    """Recovery from checkpoints was requested but could not proceed.

    Raised in ``strict`` recovery when no valid checkpoint exists, or when
    the newest valid checkpoint is incompatible with the requested run
    (different config fingerprint, stream identity, or monitor parameters)
    — silently restarting from scratch would mask operator error, so the
    mismatch is loud instead.
    """
