"""Exception hierarchy for the REPT reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An estimator or experiment was configured with invalid parameters.

    Examples: a sampling probability outside ``(0, 1]``, a processor count
    of zero, or a reservoir budget smaller than one edge.
    """


class StreamFormatError(ReproError):
    """An edge-stream file or record could not be parsed."""


class DatasetNotFoundError(ReproError):
    """A dataset name was requested that is not present in the registry."""


class EstimatorStateError(ReproError):
    """An estimator was used in an invalid order.

    For example requesting an estimate before any edge has been processed
    when the estimator requires at least one observation, or feeding edges
    after :meth:`finalize` has been called.
    """


class ExperimentError(ReproError):
    """An experiment specification is inconsistent or failed to run."""
