"""Exact triangle counting on in-memory graphs.

Two classic algorithms are provided:

* the **edge-iterator** (intersection) count used by :func:`count_triangles`
  and :func:`count_triangles_per_node`, which matches the semi-triangle
  primitive of the streaming estimators; and
* the **forward / compact-forward** enumeration used by
  :func:`enumerate_triangles`, which lists each triangle exactly once and is
  what the η computation builds on.

These provide the ground-truth values ``τ`` and ``τ_v`` against which every
estimator is evaluated (Table II, Figures 3–6).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.types import NodeId


def count_triangles(graph: AdjacencyGraph) -> int:
    """Return the exact number of triangles ``τ`` in ``graph``.

    Uses the edge-iterator method: for every edge ``{u, v}`` the common
    neighbors ``N(u) ∩ N(v)`` each witness one triangle; summing over edges
    counts every triangle exactly three times.
    """
    total = 0
    for u, v in graph.edges():
        total += len(graph.common_neighbors(u, v))
    return total // 3


def count_triangles_per_node(graph: AdjacencyGraph) -> Dict[NodeId, int]:
    """Return the exact local triangle counts ``τ_v`` for every node.

    Every node of the graph appears in the result, including nodes with no
    triangles (count 0), so downstream error metrics can iterate the full
    node set.
    """
    counts: Dict[NodeId, int] = {node: 0 for node in graph.nodes()}
    for u, v, w in enumerate_triangles(graph):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts


def enumerate_triangles(graph: AdjacencyGraph) -> Iterator[Tuple[NodeId, NodeId, NodeId]]:
    """Yield every triangle of ``graph`` exactly once.

    Implements the *forward* algorithm: nodes are ranked by (degree, id) and
    each triangle is reported from its lowest-ranked node, so no triangle is
    emitted more than once.  The three nodes of each yielded tuple follow
    increasing rank order.
    """
    rank = _degree_rank(graph)
    # Orient each edge from lower rank to higher rank.
    forward: Dict[NodeId, List[NodeId]] = {node: [] for node in graph.nodes()}
    for u, v in graph.edges():
        if rank[u] < rank[v]:
            forward[u].append(v)
        else:
            forward[v].append(u)
    for node in forward:
        forward[node].sort(key=rank.__getitem__)
    for u in graph.nodes():
        higher_u = forward[u]
        higher_set = set(higher_u)
        for v in higher_u:
            for w in forward[v]:
                if w in higher_set:
                    yield (u, v, w)


def global_clustering_coefficient(graph: AdjacencyGraph) -> float:
    """Return the transitivity ``3τ / #wedges`` of ``graph``.

    Returns 0.0 for graphs with no wedge (no node of degree >= 2).
    """
    wedges = count_wedges(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges


def count_wedges(graph: AdjacencyGraph) -> int:
    """Return the number of wedges (paths of length two) in ``graph``."""
    total = 0
    for node in graph.nodes():
        d = graph.degree(node)
        total += d * (d - 1) // 2
    return total


def local_clustering_coefficients(graph: AdjacencyGraph) -> Dict[NodeId, float]:
    """Return the local clustering coefficient of every node.

    ``c_v = τ_v / (d_v choose 2)``; nodes with degree < 2 get 0.0.  Local
    clustering is one of the motivating applications for local triangle
    counts (spam and sybil detection).
    """
    local_counts = count_triangles_per_node(graph)
    coefficients: Dict[NodeId, float] = {}
    for node, tau_v in local_counts.items():
        d = graph.degree(node)
        pairs = d * (d - 1) // 2
        coefficients[node] = tau_v / pairs if pairs else 0.0
    return coefficients


def _degree_rank(graph: AdjacencyGraph) -> Dict[NodeId, int]:
    """Rank nodes by increasing degree, breaking ties by string of the id."""
    ordered = sorted(graph.nodes(), key=lambda n: (graph.degree(n), str(n)))
    return {node: i for i, node in enumerate(ordered)}
