"""Mutable undirected simple graph stored as a dictionary of neighbor sets.

This structure is the shared substrate of both the exact counters and every
streaming estimator: each estimator maintains one (or ``c``) of these for
its sampled edges, and the dominant per-edge cost of all methods is the
:meth:`AdjacencyGraph.common_neighbors` intersection, exactly as the paper
argues when comparing per-edge processing costs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

from repro.types import EdgeTuple, NodeId, canonical_edge


class AdjacencyGraph:
    """An undirected simple graph without self-loops.

    Edges are stored twice (once per endpoint) in Python sets, so neighbor
    lookups, membership tests and intersections are O(1)/O(min degree).

    The class intentionally exposes only the operations the estimators
    need; it is not a general graph library.
    """

    def __init__(self, edges: Iterable[EdgeTuple] = ()) -> None:
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- mutation ---------------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        """Ensure ``node`` exists (possibly with no incident edges)."""
        self._adj.setdefault(node, set())

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Insert the undirected edge ``{u, v}``.

        Returns ``True`` if the edge was new, ``False`` if it was already
        present.  Self-loops raise :class:`ValueError`.
        """
        if u == v:
            raise ValueError(f"self-loop ({u!r}, {v!r}) not allowed")
        neighbors_u = self._adj.setdefault(u, set())
        if v in neighbors_u:
            return False
        neighbors_u.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: NodeId, v: NodeId) -> bool:
        """Remove the undirected edge ``{u, v}`` if present.

        Returns ``True`` if an edge was removed.  Endpoints are kept even
        if they become isolated (matching reservoir-sampler semantics where
        local counters for a node may still be tracked).
        """
        neighbors_u = self._adj.get(u)
        if neighbors_u is None or v not in neighbors_u:
            return False
        neighbors_u.discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        return True

    def clear(self) -> None:
        """Remove all nodes and edges."""
        self._adj.clear()
        self._num_edges = 0

    # -- queries ----------------------------------------------------------

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` if the undirected edge ``{u, v}`` is present."""
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is present."""
        return node in self._adj

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Return the neighbor set of ``node`` (empty set if absent).

        The returned set is the live internal set for present nodes; callers
        must not mutate it.  This avoids copying inside the per-edge hot
        loop of the estimators.
        """
        return self._adj.get(node, _EMPTY_SET)

    def common_neighbors(self, u: NodeId, v: NodeId) -> Set[NodeId]:
        """Return ``N(u) ∩ N(v)``, the shared-neighbor primitive.

        For every arriving stream edge ``(u, v)`` this is the number of
        semi-triangles whose last edge is ``(u, v)``; it is the dominant
        per-edge cost of MASCOT, TRIÈST, GPS and REPT alike.
        """
        nu = self._adj.get(u, _EMPTY_SET)
        nv = self._adj.get(v, _EMPTY_SET)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return {w for w in nu if w in nv}

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node`` (0 if absent)."""
        return len(self._adj.get(node, _EMPTY_SET))

    @property
    def num_nodes(self) -> int:
        """Number of nodes currently present."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges currently present."""
        return self._num_edges

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[EdgeTuple]:
        """Iterate over all edges once, in canonical orientation."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                cu, cv = canonical_edge(u, v)
                if cu == u:
                    yield (cu, cv)

    def degree_sequence(self) -> Dict[NodeId, int]:
        """Return a mapping node -> degree."""
        return {node: len(neighbors) for node, neighbors in self._adj.items()}

    def copy(self) -> "AdjacencyGraph":
        """Return a deep copy of the graph."""
        clone = AdjacencyGraph()
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def __contains__(self, item) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return self.has_edge(item[0], item[1])
        return self.has_node(item)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return f"AdjacencyGraph(nodes={self.num_nodes}, edges={self.num_edges})"

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[EdgeTuple]) -> "AdjacencyGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges are collapsed; self-loops raise.
        """
        return cls(edges)

    @classmethod
    def from_stream(cls, stream) -> "AdjacencyGraph":
        """Build the aggregate graph ``G`` of an :class:`EdgeStream`."""
        graph = cls()
        for u, v in stream:
            graph.add_edge(u, v)
        return graph


_EMPTY_SET: Set[NodeId] = frozenset()  # type: ignore[assignment]
