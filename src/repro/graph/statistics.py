"""Dataset statistics used by Table II and Figure 1.

The paper summarises every evaluation graph by its node, edge and triangle
counts (Table II) and motivates REPT by comparing the exact values of ``τ``
and ``η`` and the two variance terms of parallel MASCOT (Figure 1).  This
module computes all of those quantities for an arbitrary stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.eta import compute_pair_counts
from repro.graph.triangles import (
    count_triangles_per_node,
    count_wedges,
    global_clustering_coefficient,
)
from repro.types import EdgeTuple, NodeId


@dataclass
class GraphStatistics:
    """Exact summary statistics of one graph stream.

    Attributes
    ----------
    name:
        Optional dataset name (used in reports).
    num_nodes, num_edges:
        Size of the aggregate graph ``G``.
    num_triangles:
        Global triangle count ``τ``.
    eta:
        Covariance pair count ``η`` (depends on stream order).
    num_wedges:
        Number of length-2 paths, used for clustering coefficients.
    transitivity:
        Global clustering coefficient ``3τ / #wedges``.
    max_degree, mean_degree:
        Degree statistics of the aggregate graph.
    local_triangles:
        Per-node exact counts ``τ_v``.
    eta_per_node:
        Per-node covariance pair counts ``η_v``.
    """

    name: Optional[str]
    num_nodes: int
    num_edges: int
    num_triangles: int
    eta: int
    num_wedges: int
    transitivity: float
    max_degree: int
    mean_degree: float
    local_triangles: Dict[NodeId, int]
    eta_per_node: Dict[NodeId, int]

    def eta_to_tau_ratio(self) -> float:
        """Return ``η / τ`` (``inf`` when τ = 0 and η > 0, 0 when both 0).

        Figure 1(a) plots τ against η; this ratio is the headline quantity
        ("η is 11 to 3,900 times larger than τ").
        """
        if self.num_triangles == 0:
            return float("inf") if self.eta > 0 else 0.0
        return self.eta / self.num_triangles

    def mascot_variance_terms(self, p: float) -> Dict[str, float]:
        """Return the two variance terms of MASCOT for sampling probability ``p``.

        Figure 1(b)-(d) compares ``τ(p⁻²−1)`` (the self term) with
        ``2η(p⁻¹−1)`` (the covariance term).
        """
        if not 0 < p <= 1:
            raise ValueError("p must be in (0, 1]")
        return {
            "tau_term": self.num_triangles * (p**-2 - 1.0),
            "covariance_term": 2.0 * self.eta * (p**-1 - 1.0),
        }

    def as_table_row(self) -> List:
        """Return the Table II row ``[name, nodes, edges, triangles]``."""
        return [self.name or "?", self.num_nodes, self.num_edges, self.num_triangles]


def compute_statistics(
    edges_in_order: List[EdgeTuple], name: Optional[str] = None
) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for a stream given in arrival order."""
    graph = AdjacencyGraph(edges_in_order)
    pair_counts = compute_pair_counts(edges_in_order, want_local=True)
    local = count_triangles_per_node(graph)
    degrees = [graph.degree(node) for node in graph.nodes()]
    max_degree = max(degrees) if degrees else 0
    mean_degree = (sum(degrees) / len(degrees)) if degrees else 0.0
    return GraphStatistics(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_triangles=pair_counts.triangle_count,
        eta=pair_counts.eta,
        num_wedges=count_wedges(graph),
        transitivity=global_clustering_coefficient(graph),
        max_degree=max_degree,
        mean_degree=mean_degree,
        local_triangles=local,
        eta_per_node=pair_counts.eta_per_node,
    )
