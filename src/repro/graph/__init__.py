"""In-memory graph substrate: adjacency structure, exact counts, statistics.

This subpackage provides the *ground truth* side of every experiment:

* :class:`AdjacencyGraph` — a mutable undirected simple graph stored as a
  dictionary of neighbor sets, with the ``common_neighbors`` primitive that
  all streaming estimators (and the exact counter) share;
* exact global and local triangle counting (:mod:`repro.graph.triangles`);
* exact computation of the covariance pair counts ``η`` and ``η_v`` defined
  by the paper, which depend on the *stream order* of the edges
  (:mod:`repro.graph.eta`);
* dataset statistics used by Table II and Figure 1
  (:mod:`repro.graph.statistics`).
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.triangles import (
    count_triangles,
    count_triangles_per_node,
    enumerate_triangles,
    global_clustering_coefficient,
)
from repro.graph.eta import StreamOrderPairCounts, compute_eta, compute_eta_per_node
from repro.graph.statistics import GraphStatistics, compute_statistics

__all__ = [
    "AdjacencyGraph",
    "count_triangles",
    "count_triangles_per_node",
    "enumerate_triangles",
    "global_clustering_coefficient",
    "StreamOrderPairCounts",
    "compute_eta",
    "compute_eta_per_node",
    "GraphStatistics",
    "compute_statistics",
]
