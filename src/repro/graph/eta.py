"""Exact computation of the covariance pair counts ``η`` and ``η_v``.

The paper defines ``η`` as the number of unordered pairs ``(σ, σ*)`` of
distinct triangles that share an edge ``g`` such that ``g`` is **not the
last edge** (in stream order) of either triangle.  ``η_v`` restricts both
triangles to those containing node ``v``.

These quantities drive the covariance term of MASCOT-style estimators
(Figure 1) and appear in REPT's variance formulas, so the experiment
harness needs their exact values for the ground-truth datasets.

Computation
-----------
For each triangle we know the stream positions of its three edges; its
*non-last* edges are the two that arrive first.  For an edge ``g`` let
``k_g`` be the number of triangles in which ``g`` is a non-last edge; a
pair of distinct such triangles shares ``g`` as a non-last edge of both,
hence ``η = Σ_g C(k_g, 2)``.  The same argument per node gives
``η_v = Σ_g C(k_{g,v}, 2)`` where ``k_{g,v}`` only counts triangles that
contain ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.triangles import enumerate_triangles
from repro.types import EdgeTuple, NodeId, canonical_edge


@dataclass
class StreamOrderPairCounts:
    """Exact η statistics for one stream ordering of a graph.

    Attributes
    ----------
    eta:
        The global pair count ``η``.
    eta_per_node:
        Mapping node -> ``η_v`` for every node of the graph (0 when the
        node participates in no qualifying pair).
    triangle_count:
        The exact number of triangles ``τ`` (a by-product of the scan,
        handy for callers that need both).
    """

    eta: int
    eta_per_node: Dict[NodeId, int] = field(default_factory=dict)
    triangle_count: int = 0


def _edge_positions(edges_in_order: Iterable[EdgeTuple]) -> Dict[EdgeTuple, int]:
    """Map each distinct canonical edge to its first arrival position (1-based)."""
    positions: Dict[EdgeTuple, int] = {}
    for t, (u, v) in enumerate(edges_in_order, start=1):
        key = canonical_edge(u, v)
        if key not in positions:
            positions[key] = t
    return positions


def compute_eta(edges_in_order: List[EdgeTuple]) -> int:
    """Return the exact global pair count ``η`` for a stream ordering."""
    return compute_pair_counts(edges_in_order, want_local=False).eta


def compute_eta_per_node(edges_in_order: List[EdgeTuple]) -> Dict[NodeId, int]:
    """Return the exact per-node pair counts ``η_v`` for a stream ordering."""
    return compute_pair_counts(edges_in_order, want_local=True).eta_per_node


def compute_pair_counts(
    edges_in_order: List[EdgeTuple], want_local: bool = True
) -> StreamOrderPairCounts:
    """Compute ``η`` (and optionally every ``η_v``) exactly.

    Parameters
    ----------
    edges_in_order:
        The stream: a list of ``(u, v)`` pairs in arrival order.  Duplicate
        occurrences of an edge are ignored after the first (the aggregate
        graph is simple); self-loops are not allowed.
    want_local:
        Whether to also compute the per-node counts (slightly more work and
        memory).

    Returns
    -------
    StreamOrderPairCounts
    """
    positions = _edge_positions(edges_in_order)
    graph = AdjacencyGraph(positions.keys())

    # k_g: number of triangles for which edge g is NOT the last stream edge.
    k_global: Dict[EdgeTuple, int] = {}
    # k_{g,v}: same restricted to triangles containing node v.
    k_local: Dict[Tuple[EdgeTuple, NodeId], int] = {}

    triangle_count = 0
    node_set = set(graph.nodes())
    for a, b, c in enumerate_triangles(graph):
        triangle_count += 1
        tri_edges = [canonical_edge(a, b), canonical_edge(b, c), canonical_edge(a, c)]
        tri_positions = [positions[e] for e in tri_edges]
        last_position = max(tri_positions)
        for edge, pos in zip(tri_edges, tri_positions):
            if pos == last_position:
                continue
            k_global[edge] = k_global.get(edge, 0) + 1
            if want_local:
                for node in (a, b, c):
                    key = (edge, node)
                    k_local[key] = k_local.get(key, 0) + 1

    eta = sum(k * (k - 1) // 2 for k in k_global.values())
    eta_per_node: Dict[NodeId, int] = {}
    if want_local:
        eta_per_node = {node: 0 for node in node_set}
        for (edge, node), k in k_local.items():
            eta_per_node[node] += k * (k - 1) // 2

    return StreamOrderPairCounts(
        eta=eta, eta_per_node=eta_per_node, triangle_count=triangle_count
    )
