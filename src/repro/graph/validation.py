"""Validation helpers for edge lists and graphs.

Used by the streaming readers and the dataset registry to fail loudly on
malformed input rather than silently producing wrong counts.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.exceptions import StreamFormatError
from repro.types import EdgeTuple, canonical_edge


def validate_edge_list(
    edges: Iterable[EdgeTuple],
    allow_self_loops: bool = False,
    allow_duplicates: bool = True,
) -> List[EdgeTuple]:
    """Validate and materialise an edge list.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs.
    allow_self_loops:
        If ``False`` (default) a self-loop raises :class:`StreamFormatError`.
    allow_duplicates:
        If ``False`` a repeated undirected edge raises.

    Returns
    -------
    list of ``(u, v)`` tuples in the original order.
    """
    result: List[EdgeTuple] = []
    seen = set()
    for index, pair in enumerate(edges):
        if not isinstance(pair, tuple) or len(pair) != 2:
            raise StreamFormatError(f"record {index} is not a (u, v) pair: {pair!r}")
        u, v = pair
        if u == v and not allow_self_loops:
            raise StreamFormatError(f"record {index} is a self-loop: {pair!r}")
        if not allow_duplicates and u != v:
            key = canonical_edge(u, v)
            if key in seen:
                raise StreamFormatError(f"record {index} duplicates edge {key!r}")
            seen.add(key)
        result.append((u, v))
    return result


def edge_list_summary(edges: Iterable[EdgeTuple]) -> Tuple[int, int, int]:
    """Return ``(records, distinct_edges, self_loops)`` for an edge list."""
    records = 0
    self_loops = 0
    distinct = set()
    for u, v in edges:
        records += 1
        if u == v:
            self_loops += 1
        else:
            distinct.add(canonical_edge(u, v))
    return records, len(distinct), self_loops
