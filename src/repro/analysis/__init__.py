"""Closed-form analysis: the variance formulas the paper derives.

These are the quantities behind Figure 1 and the accuracy comparison in
Section III-C.  The experiment harness uses them both to *predict* the
NRMSE curves and to sanity-check the empirical sweeps (ablation A1).
"""

from repro.analysis.variance import (
    mascot_variance,
    parallel_mascot_variance,
    predicted_nrmse,
    rept_variance,
    variance_reduction_factor,
)

__all__ = [
    "mascot_variance",
    "parallel_mascot_variance",
    "rept_variance",
    "predicted_nrmse",
    "variance_reduction_factor",
]
