"""The paper's closed-form variance formulas.

Notation: ``τ`` is the exact global triangle count, ``η`` the covariance
pair count (see :mod:`repro.graph.eta`), ``p = 1/m`` the per-processor
sampling probability and ``c`` the number of processors.  All formulas are
stated for the *global* count; the local-count versions are identical with
``τ_v`` and ``η_v`` substituted, so callers simply pass those values.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def _check(m: int, c: int) -> None:
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    if c < 1:
        raise ConfigurationError("c must be >= 1")


def mascot_variance(tau: float, eta: float, p: float) -> float:
    """Variance of a single MASCOT instance: ``τ(p⁻²−1) + 2η(p⁻¹−1)``."""
    if not 0 < p <= 1:
        raise ConfigurationError("p must be in (0, 1]")
    return tau * (p**-2 - 1.0) + 2.0 * eta * (p**-1 - 1.0)


def parallel_mascot_variance(tau: float, eta: float, m: int, c: int) -> float:
    """Variance of the direct parallelisation of MASCOT over ``c`` processors.

    ``Var = (τ(m²−1) + 2η(m−1)) / c`` — the covariance term is divided by
    ``c`` but never eliminated.
    """
    _check(m, c)
    return (tau * (m * m - 1.0) + 2.0 * eta * (m - 1.0)) / c


def rept_variance(tau: float, eta: float, m: int, c: int) -> float:
    """Variance of REPT's estimate for any processor count ``c``.

    * ``c ≤ m`` (Algorithm 1): ``(τ(m²−c) + 2η(m−c)) / c``;
    * ``c = c₁·m`` (Algorithm 2, no partial group): ``τ(m−1)/c₁``;
    * otherwise (Algorithm 2 with a partial group of ``c₂`` processors):
      the Graybill–Deal combination of the two independent estimates,
      ``V₁V₂/(V₁+V₂)`` with ``V₁ = τ(m−1)/c₁`` and
      ``V₂ = (τ(m²−c₂) + 2η(m−c₂))/c₂``.
    """
    _check(m, c)
    if c <= m:
        return (tau * (m * m - c) + 2.0 * eta * (m - c)) / c
    c1, c2 = divmod(c, m)
    variance_complete = tau * (m - 1.0) / c1
    if c2 == 0:
        return variance_complete
    variance_partial = (tau * (m * m - c2) + 2.0 * eta * (m - c2)) / c2
    if variance_complete <= 0 and variance_partial <= 0:
        return 0.0
    if variance_complete <= 0:
        return 0.0
    if variance_partial <= 0:
        return 0.0
    return (variance_complete * variance_partial) / (variance_complete + variance_partial)


def predicted_nrmse(variance: float, truth: float) -> float:
    """Convert a variance of an unbiased estimator into the NRMSE the figures plot."""
    if truth == 0:
        raise ConfigurationError("NRMSE prediction needs a non-zero true value")
    return math.sqrt(max(0.0, variance)) / abs(truth)


def variance_reduction_factor(tau: float, eta: float, m: int, c: int) -> float:
    """Ratio ``Var(parallel MASCOT) / Var(REPT)`` — how many times REPT wins.

    Returns ``inf`` when REPT's variance is zero (e.g. ``m = 1``) but the
    baseline's is not.
    """
    baseline = parallel_mascot_variance(tau, eta, m, c)
    ours = rept_variance(tau, eta, m, c)
    if ours <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / ours
