"""Compiled ingestion kernels for the array-backed adjacency state.

:mod:`repro.core.adjacency` refactors a processor group's hot state onto
flat int64 columns; this module supplies the fused closure+store loop that
advances those columns over one encoded batch.  Three interchangeable
implementations exist, all bit-identical (the kernel-parity property suite
asserts exact equality against the dict/set reference):

``cc``
    The batch loop as a small C source string, compiled once per machine
    with the system C compiler into a cached shared object and called
    through :mod:`ctypes`.  No third-party dependency; available wherever
    a C compiler is (the usual case on CI and dev machines).
``numba``
    :func:`_ingest_batch` JIT-compiled with ``numba.njit``.  Gated behind
    an import guard — numba is an *optional* dependency
    (``requirements-optional.txt``); environments without it silently fall
    back to ``cc`` or pure Python.
``python``
    No compiled kernel: the dict/set reference implementation in
    :class:`~repro.core.state.ProcessorGroup` (this module's
    :func:`_ingest_batch` run un-jitted is used only by tests).

Selection is requested as ``kernel="auto"|"python"|"native"`` (plus the
explicit provider names ``"cc"``/``"numba"`` for pinning) on
:class:`~repro.core.config.ReptConfig` and resolved once per state set by
:func:`resolve_kernel`.  The ``REPRO_KERNEL`` environment variable
describes the *environment's* capability and overrides discovery:
``REPRO_KERNEL=python`` disables native providers entirely (the CI
no-native lane), ``REPRO_KERNEL=numba`` or ``=cc`` restricts discovery to
that provider (the CI numba lane pins the JIT path even though a C
compiler is present).

The compiled loop never allocates: every capacity (node columns, half-edge
pool, edge arrays) is ensured by the Python wrapper before the call, from
vectorised counts of the batch's storable first occurrences.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError

#: Values accepted by ``ReptConfig.kernel`` / ``GroupStateSet(kernel=...)``.
KERNEL_CHOICES = ("auto", "python", "native", "cc", "numba")

#: Native provider names in ``auto`` preference order: the C kernel is
#: compiled once per machine and cached on disk, while numba pays a JIT
#: compile in every fresh process — prefer ``cc`` when both are present.
NATIVE_PROVIDERS = ("cc", "numba")

#: Slot bitmasks live in one signed int64 per node, so a native group can
#: address at most 63 slots; wider groups fall back to the Python kernel.
MAX_NATIVE_GROUP_SIZE = 63


# -- reference loop (numba-jittable, also runnable as pure Python) -----------


def _ingest_batch(
    n,
    cu,
    cv,
    slots,
    firsts,
    group_size,
    track_local,
    track_eta,
    node_bits,
    heads,
    pool_nbr,
    pool_eid,
    pool_nxt,
    edge_u,
    edge_v,
    edge_slot,
    edge_tri,
    edge_seen,
    tau,
    eta,
    edges_stored,
    tau_local,
    eta_local,
    eta_mark,
    mark,
    mark_eid,
    meta,
):
    """Advance one group's array state over an encoded batch.

    Mirrors :meth:`repro.core.state.ProcessorGroup.process_encoded` (and
    through it the paper's UpdateTriangleCNT / UpdateTrianglePairCNT) over
    the flat columns of :class:`repro.core.adjacency.GroupArrays`; see that
    class for the array layout.  All counters are exact integers, so the
    result is bit-identical to the dict/set reference.  ``meta`` carries
    the mutable scalars ``[n_half, n_edges, epoch]``.

    The neighbourhood intersection uses the epoch-stamp trick: stamping
    ``N_u`` costs O(deg u) and membership tests during the ``N_v`` walk are
    one comparison, with no clearing pass between edges.
    """
    n_half = meta[0]
    n_edges = meta[1]
    epoch = meta[2]
    for k in range(n):
        iu = cu[k]
        iv = cv[k]
        slot = slots[k]
        bits_u = node_bits[iu]
        bits_v = node_bits[iv]
        candidates = bits_u & bits_v
        closing_at_store = 0
        storeable = slot < group_size
        while candidates != 0:
            low = candidates & (-candidates)
            candidates -= low
            s = 0
            low_bits = low
            while low_bits > 1:
                low_bits >>= 1
                s += 1
            # Stamp N_u(s): mark[w] names w a shared-neighbour candidate,
            # mark_eid[w] remembers the stored edge (u, w) for the η reads.
            epoch += 1
            h = heads[s, iu]
            while h != -1:
                w = pool_nbr[h]
                mark[w] = epoch
                mark_eid[w] = pool_eid[h]
                h = pool_nxt[h]
            closed = 0
            h = heads[s, iv]
            while h != -1:
                w = pool_nbr[h]
                if mark[w] == epoch:
                    closed += 1
                    if track_local:
                        tau_local[s, w] += 1
                    if track_eta:
                        e_uw = mark_eid[w]
                        e_vw = pool_eid[h]
                        count_uw = edge_tri[e_uw]
                        count_vw = edge_tri[e_vw]
                        eta[s] += count_uw + count_vw
                        if track_local:
                            eta_local[s, w] += count_uw + count_vw
                            eta_local[s, iu] += count_uw
                            eta_local[s, iv] += count_vw
                            eta_mark[s, w] = 1
                            eta_mark[s, iu] = 1
                            eta_mark[s, iv] = 1
                        edge_tri[e_uw] = count_uw + 1
                        edge_tri[e_vw] = count_vw + 1
                        edge_seen[e_uw] = 1
                        edge_seen[e_vw] = 1
                h = pool_nxt[h]
            if closed != 0:
                tau[s] += closed
                if track_local:
                    tau_local[s, iu] += closed
                    tau_local[s, iv] += closed
                if storeable and s == slot:
                    closing_at_store = closed
        if firsts[k] != 0 and storeable:
            e = n_edges
            n_edges += 1
            if iu < iv:
                edge_u[e] = iu
                edge_v[e] = iv
            else:
                edge_u[e] = iv
                edge_v[e] = iu
            edge_slot[e] = slot
            if track_eta:
                edge_tri[e] = closing_at_store
                edge_seen[e] = 1
            else:
                edge_tri[e] = 0
            pool_nbr[n_half] = iv
            pool_eid[n_half] = e
            pool_nxt[n_half] = heads[slot, iu]
            heads[slot, iu] = n_half
            n_half += 1
            pool_nbr[n_half] = iu
            pool_eid[n_half] = e
            pool_nxt[n_half] = heads[slot, iv]
            heads[slot, iv] = n_half
            n_half += 1
            edges_stored[slot] += 1
            bit = 1 << slot
            node_bits[iu] = bits_u | bit
            node_bits[iv] = bits_v | bit
    meta[0] = n_half
    meta[1] = n_edges
    meta[2] = epoch
    return 0


# -- cc provider: C source compiled once per machine, loaded via ctypes ------

_C_SOURCE = r"""
#include <stdint.h>

typedef int64_t i64;
typedef uint8_t u8;

/* The fused closure+store loop; a line-for-line transcription of the
 * Python reference `_ingest_batch` in repro/core/kernel.py — keep the two
 * in lockstep, the kernel-parity CI matrix asserts bit-identity. */
int64_t rept_ingest_batch(
    i64 n,
    const i64 *cu, const i64 *cv, const i64 *slots, const u8 *firsts,
    i64 group_size, i64 node_cap,
    i64 track_local, i64 track_eta,
    i64 *node_bits,
    i64 *heads,
    i64 *pool_nbr, i64 *pool_eid, i64 *pool_nxt,
    i64 *edge_u, i64 *edge_v, i64 *edge_slot, i64 *edge_tri, u8 *edge_seen,
    i64 *tau, i64 *eta, i64 *edges_stored,
    i64 *tau_local, i64 *eta_local, u8 *eta_mark,
    i64 *mark, i64 *mark_eid,
    i64 *meta)
{
    i64 n_half = meta[0];
    i64 n_edges = meta[1];
    i64 epoch = meta[2];
    for (i64 k = 0; k < n; k++) {
        i64 iu = cu[k];
        i64 iv = cv[k];
        i64 slot = slots[k];
        i64 bits_u = node_bits[iu];
        i64 bits_v = node_bits[iv];
        i64 candidates = bits_u & bits_v;
        i64 closing_at_store = 0;
        i64 storeable = slot < group_size;
        while (candidates != 0) {
            i64 low = candidates & (-candidates);
            candidates -= low;
            i64 s = 0;
            i64 low_bits = low;
            while (low_bits > 1) {
                low_bits >>= 1;
                s += 1;
            }
            i64 *hrow = heads + s * node_cap;
            epoch += 1;
            i64 h = hrow[iu];
            while (h != -1) {
                i64 w = pool_nbr[h];
                mark[w] = epoch;
                mark_eid[w] = pool_eid[h];
                h = pool_nxt[h];
            }
            i64 closed = 0;
            h = hrow[iv];
            while (h != -1) {
                i64 w = pool_nbr[h];
                if (mark[w] == epoch) {
                    closed += 1;
                    if (track_local)
                        tau_local[s * node_cap + w] += 1;
                    if (track_eta) {
                        i64 e_uw = mark_eid[w];
                        i64 e_vw = pool_eid[h];
                        i64 count_uw = edge_tri[e_uw];
                        i64 count_vw = edge_tri[e_vw];
                        eta[s] += count_uw + count_vw;
                        if (track_local) {
                            i64 *el = eta_local + s * node_cap;
                            u8 *em = eta_mark + s * node_cap;
                            el[w] += count_uw + count_vw;
                            el[iu] += count_uw;
                            el[iv] += count_vw;
                            em[w] = 1;
                            em[iu] = 1;
                            em[iv] = 1;
                        }
                        edge_tri[e_uw] = count_uw + 1;
                        edge_tri[e_vw] = count_vw + 1;
                        edge_seen[e_uw] = 1;
                        edge_seen[e_vw] = 1;
                    }
                }
                h = pool_nxt[h];
            }
            if (closed != 0) {
                tau[s] += closed;
                if (track_local) {
                    i64 *tl = tau_local + s * node_cap;
                    tl[iu] += closed;
                    tl[iv] += closed;
                }
                if (storeable && s == slot)
                    closing_at_store = closed;
            }
        }
        if (firsts[k] != 0 && storeable) {
            i64 e = n_edges;
            n_edges += 1;
            if (iu < iv) {
                edge_u[e] = iu;
                edge_v[e] = iv;
            } else {
                edge_u[e] = iv;
                edge_v[e] = iu;
            }
            edge_slot[e] = slot;
            if (track_eta) {
                edge_tri[e] = closing_at_store;
                edge_seen[e] = 1;
            } else {
                edge_tri[e] = 0;
            }
            i64 *hrow = heads + slot * node_cap;
            pool_nbr[n_half] = iv;
            pool_eid[n_half] = e;
            pool_nxt[n_half] = hrow[iu];
            hrow[iu] = n_half;
            n_half += 1;
            pool_nbr[n_half] = iu;
            pool_eid[n_half] = e;
            pool_nxt[n_half] = hrow[iv];
            hrow[iv] = n_half;
            n_half += 1;
            edges_stored[slot] += 1;
            i64 bit = (i64)1 << slot;
            node_bits[iu] = bits_u | bit;
            node_bits[iv] = bits_v | bit;
        }
    }
    meta[0] = n_half;
    meta[1] = n_edges;
    meta[2] = epoch;
    return 0;
}
"""

#: Memoised provider handles; ``False`` = probed and unavailable.
_PROVIDERS: dict = {}


def _kernel_cache_dir() -> str:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(), "repro-kernel-cache")


def _build_cc():
    """Compile (or load the cached) C kernel; raises on any failure."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        raise RuntimeError("no C compiler found")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _kernel_cache_dir()
    so_path = os.path.join(cache_dir, f"rept_kernel_{digest}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache_dir, exist_ok=True)
        src_path = os.path.join(cache_dir, f"rept_kernel_{digest}.c")
        tmp_path = f"{so_path}.{os.getpid()}.tmp"
        with open(src_path, "w") as handle:
            handle.write(_C_SOURCE)
        subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path],
            check=True,
            capture_output=True,
        )
        # Atomic publish: concurrent builders race benignly.
        os.replace(tmp_path, so_path)
    lib = ctypes.CDLL(so_path)
    fn = lib.rept_ingest_batch
    fn.restype = ctypes.c_int64
    ptr = ctypes.c_void_p
    i64 = ctypes.c_int64
    fn.argtypes = [
        i64, ptr, ptr, ptr, ptr,          # n, cu, cv, slots, firsts
        i64, i64, i64, i64,               # group_size, node_cap, track_local, track_eta
        ptr, ptr,                         # node_bits, heads
        ptr, ptr, ptr,                    # pool_nbr, pool_eid, pool_nxt
        ptr, ptr, ptr, ptr, ptr,          # edge_u, edge_v, edge_slot, edge_tri, edge_seen
        ptr, ptr, ptr,                    # tau, eta, edges_stored
        ptr, ptr, ptr,                    # tau_local, eta_local, eta_mark
        ptr, ptr, ptr,                    # mark, mark_eid, meta
    ]
    return fn


def _build_numba():
    """JIT-compile the reference loop with numba; raises when absent."""
    import numba  # noqa: F401 — the import guard the CI matrix exercises

    return numba.njit(cache=False, fastmath=False)(_ingest_batch)


_BUILDERS = {"cc": _build_cc, "numba": _build_numba}


def provider_available(name: str) -> bool:
    """Probe (and memoise) whether a native provider can be built here."""
    handle = _PROVIDERS.get(name)
    if handle is None:
        builder = _BUILDERS.get(name)
        if builder is None:
            return False
        try:
            handle = builder()
        except Exception:
            handle = False
        _PROVIDERS[name] = handle
    return handle is not False


def reset_provider_cache() -> None:
    """Drop memoised provider probes (test hook for env overrides)."""
    _PROVIDERS.clear()


def _env_override() -> Optional[str]:
    value = os.environ.get("REPRO_KERNEL", "").strip().lower()
    return value or None


def available_native_providers() -> List[str]:
    """Native providers usable in this environment, in preference order."""
    env = _env_override()
    if env == "python":
        return []
    if env in NATIVE_PROVIDERS:
        return [env] if provider_available(env) else []
    return [name for name in NATIVE_PROVIDERS if provider_available(name)]


def resolve_kernel(requested: str, max_group_size: Optional[int] = None) -> str:
    """Resolve a kernel request to ``"python"`` or a native provider name.

    ``requested`` is one of :data:`KERNEL_CHOICES`; ``max_group_size``
    gates native eligibility (signed-int64 slot bitmasks limit native
    groups to :data:`MAX_NATIVE_GROUP_SIZE` slots — wider groups fall back
    under ``auto`` and are rejected for explicit native requests).  The
    ``REPRO_KERNEL`` environment override is honoured as described in the
    module docstring.  Raises :class:`~repro.exceptions.ConfigurationError`
    when an explicit native request cannot be satisfied.
    """
    if requested not in KERNEL_CHOICES:
        raise ConfigurationError(
            f"kernel must be one of {KERNEL_CHOICES}, got {requested!r}"
        )
    if requested == "python":
        return "python"
    fits = max_group_size is None or max_group_size <= MAX_NATIVE_GROUP_SIZE
    env = _env_override()
    if requested == "auto":
        if not fits:
            return "python"
        candidates = available_native_providers()
        return candidates[0] if candidates else "python"
    # Explicit native request ("native", "cc" or "numba").
    if not fits:
        raise ConfigurationError(
            f"kernel={requested!r} requires every group size <= "
            f"{MAX_NATIVE_GROUP_SIZE} (got {max_group_size})"
        )
    if env == "python":
        raise ConfigurationError(
            f"kernel={requested!r} requested but REPRO_KERNEL=python disables "
            "native kernels in this environment"
        )
    candidates = available_native_providers()
    if requested == "native":
        if not candidates:
            raise ConfigurationError(
                "kernel='native' requested but no native provider is available "
                "(no C compiler and no numba; set kernel='auto' to fall back)"
            )
        return candidates[0]
    if requested not in candidates:
        raise ConfigurationError(
            f"kernel={requested!r} requested but that provider is unavailable "
            f"(available: {candidates or ['python']})"
        )
    return requested


def _resolve_handle(provider: str):
    handle = _PROVIDERS.get(provider)
    if handle is None or handle is False:
        if not provider_available(provider):
            raise ConfigurationError(f"native kernel provider {provider!r} unavailable")
        handle = _PROVIDERS[provider]
    return handle


def _cc_state_block(arrays):
    """The cc call arguments from ``group_size`` onward, as a cached tuple.

    Raw ``.ctypes.data`` pointers are only valid until a column is
    reallocated; :class:`~repro.core.adjacency.GroupArrays` clears its
    ``_call_cache`` on every growth (and drops it on pickle), so a cached
    block can never outlive the arrays it points into.  Rebuilding 24
    pointers costs ~25µs — caching is what makes scalar (n=1) kernel calls
    viable.
    """
    block = arrays._call_cache.get("cc-state")
    if block is None:
        block = (
            arrays.group_size,
            arrays.node_cap,
            1 if arrays.track_local else 0,
            1 if arrays.track_eta else 0,
            arrays.node_bits.ctypes.data,
            arrays.heads.ctypes.data,
            arrays.pool_nbr.ctypes.data,
            arrays.pool_eid.ctypes.data,
            arrays.pool_nxt.ctypes.data,
            arrays.edge_u.ctypes.data,
            arrays.edge_v.ctypes.data,
            arrays.edge_slot.ctypes.data,
            arrays.edge_tri.ctypes.data,
            arrays.edge_seen.ctypes.data,
            arrays.tau.ctypes.data,
            arrays.eta.ctypes.data,
            arrays.edges_stored.ctypes.data,
            arrays.tau_local.ctypes.data,
            arrays.eta_local.ctypes.data,
            arrays.eta_mark.ctypes.data,
            arrays.mark.ctypes.data,
            arrays.mark_eid.ctypes.data,
            arrays.meta.ctypes.data,
        )
        arrays._call_cache["cc-state"] = block
    return block


def run_batch(provider: str, n, cu, cv, slots, firsts, arrays) -> None:
    """Dispatch one encoded batch to ``provider`` over ``arrays``.

    ``arrays`` is a :class:`repro.core.adjacency.GroupArrays`; every
    capacity must already be ensured (the kernels never grow storage).
    """
    handle = _resolve_handle(provider)
    if provider == "cc":
        handle(
            n,
            cu.ctypes.data,
            cv.ctypes.data,
            slots.ctypes.data,
            firsts.ctypes.data,
            *_cc_state_block(arrays),
        )
    else:
        handle(
            n,
            cu,
            cv,
            slots,
            firsts,
            arrays.group_size,
            arrays.track_local,
            arrays.track_eta,
            arrays.node_bits,
            arrays.heads,
            arrays.pool_nbr,
            arrays.pool_eid,
            arrays.pool_nxt,
            arrays.edge_u,
            arrays.edge_v,
            arrays.edge_slot,
            arrays.edge_tri,
            arrays.edge_seen,
            arrays.tau,
            arrays.eta,
            arrays.edges_stored,
            arrays.tau_local,
            arrays.eta_local,
            arrays.eta_mark,
            arrays.mark,
            arrays.mark_eid,
            arrays.meta,
        )


def run_scalar(provider: str, iu: int, iv: int, slot: int, first: int, arrays) -> None:
    """Dispatch one interned edge to ``provider`` (the per-edge path).

    Semantically ``run_batch`` with ``n = 1``, but the four input columns
    are preallocated single-element buffers owned by ``arrays`` and the
    whole argument tuple is cached alongside the state-pointer block, so a
    call costs one write per operand plus the FFI dispatch (~3µs for cc)
    instead of rebuilding ~28 arguments.  ``first`` must already encode the
    store decision (0/1): the caller derives first-occurrence before the
    call, exactly like the batch path's precomputed flags.
    """
    handle = _resolve_handle(provider)
    entry = arrays._call_cache.get(("scalar", provider))
    if entry is None:
        cu = np.zeros(1, np.int64)
        cv = np.zeros(1, np.int64)
        slots = np.zeros(1, np.int64)
        firsts = np.zeros(1, np.uint8)
        if provider == "cc":
            args = (
                1,
                cu.ctypes.data,
                cv.ctypes.data,
                slots.ctypes.data,
                firsts.ctypes.data,
            ) + _cc_state_block(arrays)
        else:
            args = (
                1,
                cu,
                cv,
                slots,
                firsts,
                arrays.group_size,
                arrays.track_local,
                arrays.track_eta,
                arrays.node_bits,
                arrays.heads,
                arrays.pool_nbr,
                arrays.pool_eid,
                arrays.pool_nxt,
                arrays.edge_u,
                arrays.edge_v,
                arrays.edge_slot,
                arrays.edge_tri,
                arrays.edge_seen,
                arrays.tau,
                arrays.eta,
                arrays.edges_stored,
                arrays.tau_local,
                arrays.eta_local,
                arrays.eta_mark,
                arrays.mark,
                arrays.mark_eid,
                arrays.meta,
            )
        entry = (cu, cv, slots, firsts, args)
        arrays._call_cache[("scalar", provider)] = entry
    cu, cv, slots, firsts, args = entry
    cu[0] = iu
    cv[0] = iv
    slots[0] = slot
    firsts[0] = first
    handle(*args)
