"""The REPT estimator (Algorithms 1 and 2 of the paper).

:class:`ReptEstimator` exposes the same one-pass interface as the baselines
(:class:`~repro.baselines.base.StreamingTriangleEstimator`): feed it edges,
ask for an estimate at any time.  Internally it owns one
:class:`~repro.core.state.GroupStateSet` — the shared mergeable-state
abstraction also used by the execution backends and the windowed monitor —
and delegates the final arithmetic to
:func:`repro.core.combine.combine_group_estimates`.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.core.combine import GroupSummary
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import GroupStateSet, ProcessorGroup
from repro.types import EdgeTuple, NodeId


class ReptEstimator(StreamingTriangleEstimator):
    """Random Edge Partition and Triangle counting.

    Parameters
    ----------
    config:
        A validated :class:`ReptConfig`.  Convenience constructor
        :meth:`with_params` builds the config inline.

    Examples
    --------
    >>> from repro.core import ReptConfig, ReptEstimator
    >>> from repro.generators import planted_clique_stream
    >>> stream = planted_clique_stream(30)
    >>> estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=7))
    >>> estimate = estimator.run(stream)
    >>> estimate.global_count > 0
    True
    """

    name = "rept"

    def __init__(self, config: ReptConfig) -> None:
        super().__init__()
        self.config = config
        # One state set holds every group, the shared interning table (one
        # encoded batch is valid for all groups — only hash seeds differ)
        # and the canonical seen-edge set ("seen before" is exactly the
        # per-slot already_stored test, computed once per edge).
        self._state = GroupStateSet(config)

    @classmethod
    def with_params(
        cls,
        m: int,
        c: int,
        seed=None,
        hash_kind: str = "splitmix",
        track_local: bool = True,
        track_eta=None,
    ) -> "ReptEstimator":
        """Build an estimator directly from parameters (see :class:`ReptConfig`)."""
        return cls(
            ReptConfig(
                m=m,
                c=c,
                seed=seed,
                hash_kind=hash_kind,
                track_local=track_local,
                track_eta=track_eta,
            )
        )

    # -- shared-state accessors ------------------------------------------------

    @property
    def groups(self) -> List[ProcessorGroup]:
        """The processor groups of the underlying state set."""
        return self._state.groups

    @property
    def interner(self) -> NodeInterner:
        """The interning table shared by every group."""
        return self._state.interner

    @property
    def _seen_edges(self) -> Set[Tuple[int, int]]:
        """Canonical interned edges seen so far (id-ordered keys)."""
        return self._state.seen

    # -- streaming ------------------------------------------------------------

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        self._state.process_edge(u, v)

    def process_edges(self, edges: Iterable[EdgeTuple]) -> None:
        """Batched ingestion: canonicalise, hash and route whole chunks.

        Exactly equivalent to calling :meth:`process_edge` per record
        (identical counters, bit for bit), but the per-edge hashing and
        canonicalisation run as array operations shared by all groups; only
        the residual state updates (and the closure logic, for edges whose
        endpoints co-occur in a slot) execute per edge.
        """
        self.edges_processed += self._state.process_edges(edges)

    # -- estimation -----------------------------------------------------------

    def group_summaries(self) -> List[GroupSummary]:
        """Snapshot the counters of every group as plain :class:`GroupSummary`.

        Local and η maps are only materialised when the configuration
        actually tracks them — untracked runs skip the dict passes entirely
        (see :meth:`ProcessorGroup.summarise`).
        """
        return self._state.summaries()

    def estimate(self) -> TriangleEstimate:
        estimate = self._state.estimate(self.edges_processed)
        estimate.metadata["algorithm"] = 2.0 if self.config.uses_groups else 1.0
        return estimate

    # -- introspection ----------------------------------------------------------

    @property
    def edges_stored(self) -> int:
        """Total edges currently stored across all processors."""
        return self._state.total_edges_stored()

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return self.config.describe()
