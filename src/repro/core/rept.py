"""The REPT estimator (Algorithms 1 and 2 of the paper).

:class:`ReptEstimator` exposes the same one-pass interface as the baselines
(:class:`~repro.baselines.base.StreamingTriangleEstimator`): feed it edges,
ask for an estimate at any time.  Internally it owns the processor groups
described by its :class:`~repro.core.config.ReptConfig` and delegates the
final arithmetic to :func:`repro.core.combine.combine_group_estimates`.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.core.combine import GroupSummary, combine_group_estimates
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import ProcessorGroup
from repro.hashing import make_hash_function
from repro.types import EdgeTuple, NodeId


class ReptEstimator(StreamingTriangleEstimator):
    """Random Edge Partition and Triangle counting.

    Parameters
    ----------
    config:
        A validated :class:`ReptConfig`.  Convenience constructor
        :meth:`with_params` builds the config inline.

    Examples
    --------
    >>> from repro.core import ReptConfig, ReptEstimator
    >>> from repro.generators import planted_clique_stream
    >>> stream = planted_clique_stream(30)
    >>> estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=7))
    >>> estimate = estimator.run(stream)
    >>> estimate.global_count > 0
    True
    """

    name = "rept"

    def __init__(self, config: ReptConfig) -> None:
        super().__init__()
        self.config = config
        sizes = config.group_sizes()
        hash_seeds = config.group_hash_seeds()
        # One interning table serves every group, so one encoded batch is
        # valid for all of them (only the hash seeds differ per group).
        self.interner = NodeInterner()
        # Canonical interned edges seen so far; an edge always hashes to the
        # same slot, so "seen before" is exactly the per-slot already_stored
        # test, computed once per edge instead of once per group.
        self._seen_edges: Set[Tuple[int, int]] = set()
        self.groups: List[ProcessorGroup] = [
            ProcessorGroup(
                hash_function=make_hash_function(
                    config.hash_kind, buckets=config.m, seed=hash_seeds[index]
                ),
                group_size=size,
                m=config.m,
                track_local=config.track_local,
                track_eta=bool(config.track_eta),
                interner=self.interner,
            )
            for index, size in enumerate(sizes)
        ]

    @classmethod
    def with_params(
        cls,
        m: int,
        c: int,
        seed=None,
        hash_kind: str = "splitmix",
        track_local: bool = True,
        track_eta=None,
    ) -> "ReptEstimator":
        """Build an estimator directly from parameters (see :class:`ReptConfig`)."""
        return cls(
            ReptConfig(
                m=m,
                c=c,
                seed=seed,
                hash_kind=hash_kind,
                track_local=track_local,
                track_eta=track_eta,
            )
        )

    # -- streaming ------------------------------------------------------------

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        if u == v:
            return
        intern = self.interner.intern
        iu = intern(u)
        iv = intern(v)
        key = (iu, iv) if iu < iv else (iv, iu)
        # Wrong orientation for hashing, but fine as a set key: interning is
        # injective, so id order identifies the undirected edge.  Keep the
        # canonical *raw* orientation out of this path — the scalar
        # hash_function.bucket below re-derives it itself.
        if key not in self._seen_edges:
            self._seen_edges.add(key)
        for group in self.groups:
            group.process_edge(u, v)

    def process_edges(self, edges: Iterable[EdgeTuple]) -> None:
        """Batched ingestion: canonicalise, hash and route whole chunks.

        Exactly equivalent to calling :meth:`process_edge` per record
        (identical counters, bit for bit), but the per-edge hashing and
        canonicalisation run as array operations shared by all groups; only
        the residual state updates (and the closure logic, for edges whose
        endpoints co-occur in a slot) execute per edge.
        """
        cu, cv, firsts, n_records = self.interner.encode_pairs(edges, self._seen_edges)
        self.edges_processed += n_records
        if not cu:
            return
        edge_keys = self.interner.edge_key_array(cu, cv)
        for group in self.groups:
            slots = group.hash_function.bucket_from_keys(edge_keys).tolist()
            group.process_encoded(cu, cv, slots, firsts)

    # -- estimation -----------------------------------------------------------

    def group_summaries(self) -> List[GroupSummary]:
        """Snapshot the counters of every group as plain :class:`GroupSummary`.

        Local and η maps are only materialised when the configuration
        actually tracks them — untracked runs skip the dict passes entirely
        (see :meth:`ProcessorGroup.summarise`).
        """
        return [
            group.summarise(
                self.config.uses_groups and group.group_size == self.config.m
            )
            for group in self.groups
        ]

    def estimate(self) -> TriangleEstimate:
        estimate = combine_group_estimates(
            self.group_summaries(),
            m=self.config.m,
            c=self.config.c,
            edges_processed=self.edges_processed,
            track_local=self.config.track_local,
            eta_tracked=bool(self.config.track_eta),
        )
        estimate.metadata["algorithm"] = 2.0 if self.config.uses_groups else 1.0
        return estimate

    # -- introspection ----------------------------------------------------------

    @property
    def edges_stored(self) -> int:
        """Total edges currently stored across all processors."""
        return sum(group.total_edges_stored() for group in self.groups)

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return self.config.describe()
