"""The paper's primary contribution: the REPT estimator.

REPT (Random Edge Partition and Triangle counting) distributes the edges of
a stream across ``c`` processors with shared random hash functions and
estimates global and local triangle counts from the per-processor
semi-triangle counts.  This subpackage contains:

* :class:`ReptConfig` — validated configuration (``p = 1/m``, ``c``, seed,
  hash family, what to track);
* :class:`ProcessorGroup` / :class:`ProcessorCounters` — the per-processor
  state of Algorithms 1 and 2, including the η counters;
* :class:`ReptEstimator` — the full estimator exposing the common
  :class:`StreamingTriangleEstimator` interface;
* :mod:`repro.core.combine` — estimate assembly, including the
  Graybill–Deal combination used when ``c > m`` and ``c mod m != 0``;
* :mod:`repro.core.parallel` — serial, pooled and stream-sharded
  (``chunked-*``) drivers that advance the same processor states and
  produce bit-identical estimates.
"""

from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import (
    EncodedBatch,
    GroupStateSet,
    ProcessorCounters,
    ProcessorGroup,
)
from repro.core.rept import ReptEstimator
from repro.core.combine import GroupSummary, combine_group_estimates, graybill_deal
from repro.core.parallel import DriverBackedRept, ParallelBackend, run_rept

__all__ = [
    "ReptConfig",
    "NodeInterner",
    "ProcessorCounters",
    "ProcessorGroup",
    "EncodedBatch",
    "GroupStateSet",
    "ReptEstimator",
    "GroupSummary",
    "combine_group_estimates",
    "graybill_deal",
    "run_rept",
    "DriverBackedRept",
    "ParallelBackend",
]
