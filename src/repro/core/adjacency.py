"""Array-backed processor-group state for the compiled ingestion kernels.

:class:`~repro.core.state.ProcessorGroup` keeps its hot state in Python
dicts and sets — ideal for the scalar reference path, but every probe and
store in :meth:`~repro.core.state.ProcessorGroup.process_encoded` pays
interpreter and hashing overhead.  This module re-hosts one group's state
on flat int64 columns so the fused closure+store loop
(:mod:`repro.core.kernel`) advances a whole encoded batch without touching
a Python object:

``GroupArrays``
    The storage: a half-edge pool of singly-linked neighbour chains
    (``pool_nbr``/``pool_eid``/``pool_nxt`` with per-``(slot, node)`` chain
    heads), dense per-node slot bitmasks keyed by interned id, flat edge
    records (``edge_u``/``edge_v``/``edge_slot``/``edge_tri``) and per-slot
    counter rows.  Growth is amortised doubling with contiguous
    reallocation; the batch wrapper *pre-ensures* every capacity from
    vectorised batch counts, so the compiled loop never allocates.

``NativeProcessorGroup``
    A drop-in :class:`~repro.core.state.ProcessorGroup` subclass backed by
    ``GroupArrays``.  Public semantics — snapshot/restore/merge,
    ``seed_adjacency``, the pane-delta protocol, aggregates and stored-edge
    introspection — are preserved exactly (bit-identical counters, asserted
    by the kernel-parity property suite), so the chunked, elastic, durable
    and monitor paths are untouched at their boundaries.

Dict-equivalence notes (the subtle bits the parity suite pins down):

* ``tau_local`` entries in the dict implementation are created only with
  strictly positive increments, so non-zero array cells recover the dict
  exactly; explicit zero-valued entries can only arrive via merges of
  pathological snapshots and are preserved in ``tau_zero`` side sets.
* ``eta_local`` *does* receive zero increments in normal operation
  (``count_uw`` may be 0 when the wedge edge was stored this instant), and
  the dict keeps those explicit zero entries — ``eta_mark`` records
  touched cells so extraction reproduces them.
* ``edge_triangles`` is keyed by stored edges but a merged snapshot may
  contain keys whose edge is not in the adjacency; those live in the
  ``loose_tri`` side dicts and fold with the same η correction.
* ``edge_tri``/``edge_seen`` carry the *detachable* per-edge counters: the
  pane-delta protocol zeroes them while the adjacency (pool, heads,
  bitmasks) stays — exactly the seeded-at-a-boundary state the merge
  contract expects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import kernel as kernel_mod
from repro.core.interning import NodeInterner
from repro.core.state import (
    GroupSnapshot,
    ProcessorCounters,
    ProcessorGroup,
    _internalize_processor,
)
from repro.hashing.base import EdgeHashFunction
from repro.types import NodeId, canonical_edge

_INIT_NODES = 64
_INIT_EDGES = 64


def _grown(array: np.ndarray, cap: int) -> np.ndarray:
    """Copy a 1-D array into a zero-initialised buffer of ``cap`` entries."""
    out = np.zeros(cap, dtype=array.dtype)
    out[: array.shape[0]] = array
    return out


class GroupArrays:
    """Flat-column state of one processor group (see module docstring).

    All integer columns are int64 — including the slot bitmasks, which is
    why native groups are limited to
    :data:`~repro.core.kernel.MAX_NATIVE_GROUP_SIZE` slots — and the
    boolean markers are uint8.  ``meta`` carries the mutable scalars the
    kernels advance in place: ``[n_half, n_edges, epoch]``.
    """

    def __init__(self, group_size: int, track_local: bool, track_eta: bool) -> None:
        if not 1 <= group_size <= kernel_mod.MAX_NATIVE_GROUP_SIZE:
            raise ValueError(
                "array-backed groups support 1..{} slots, got {}".format(
                    kernel_mod.MAX_NATIVE_GROUP_SIZE, group_size
                )
            )
        self.group_size = group_size
        self.track_local = track_local
        self.track_eta = track_eta
        self.node_cap = _INIT_NODES
        self.edge_cap = _INIT_EDGES
        self.pool_cap = 2 * _INIT_EDGES
        # Per-node columns (indexed by interned id).
        self.node_bits = np.zeros(self.node_cap, np.int64)
        self.heads = np.full((group_size, self.node_cap), -1, np.int64)
        self.mark = np.zeros(self.node_cap, np.int64)
        self.mark_eid = np.zeros(self.node_cap, np.int64)
        # Half-edge pool: two entries per stored edge, chained via pool_nxt.
        self.pool_nbr = np.zeros(self.pool_cap, np.int64)
        self.pool_eid = np.zeros(self.pool_cap, np.int64)
        self.pool_nxt = np.zeros(self.pool_cap, np.int64)
        # Flat edge records; edge_u < edge_v (id order).  edge_tri/edge_seen
        # are the detachable per-edge triangle counters ("seen" = the dict
        # implementation would hold a key for this edge).
        self.edge_u = np.zeros(self.edge_cap, np.int64)
        self.edge_v = np.zeros(self.edge_cap, np.int64)
        self.edge_slot = np.zeros(self.edge_cap, np.int64)
        self.edge_tri = np.zeros(self.edge_cap, np.int64)
        self.edge_seen = np.zeros(self.edge_cap, np.uint8)
        # Per-slot counter rows.
        self.tau = np.zeros(group_size, np.int64)
        self.eta = np.zeros(group_size, np.int64)
        self.edges_stored = np.zeros(group_size, np.int64)
        if track_local:
            self.tau_local = np.zeros((group_size, self.node_cap), np.int64)
        else:
            self.tau_local = np.zeros((1, 1), np.int64)
        if track_local and track_eta:
            self.eta_local = np.zeros((group_size, self.node_cap), np.int64)
            self.eta_mark = np.zeros((group_size, self.node_cap), np.uint8)
        else:
            self.eta_local = np.zeros((1, 1), np.int64)
            self.eta_mark = np.zeros((1, 1), np.uint8)
        self.meta = np.zeros(3, np.int64)
        # Side state the flat columns cannot express (see module docstring).
        self.loose_tri: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(group_size)
        ]
        self.tau_zero: List[Set[int]] = [set() for _ in range(group_size)]
        # Lazily synchronised (slot, u, v) -> eid index; kernel stores
        # bypass it, _sync_pairs catches up over the appended suffix.
        self._pair_eids: Dict[Tuple[int, int, int], int] = {}
        self._pair_sync = 0
        # Per-call-site cache of kernel argument tuples (raw ctypes
        # pointers + scalar input buffers).  Pointers die whenever a column
        # reallocates, so every growth clears this dict, and pickling drops
        # it (see __getstate__) — a restored state rebuilds on first call.
        self._call_cache: Dict = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_call_cache", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._call_cache = {}

    @property
    def n_edges(self) -> int:
        return int(self.meta[1])

    @property
    def has_eta_local(self) -> bool:
        return self.track_local and self.track_eta

    # -- growth ---------------------------------------------------------------

    def ensure_nodes(self, n: int) -> None:
        """Grow every per-node column to hold interned ids ``< n``."""
        if n <= self.node_cap:
            return
        cap = self.node_cap
        while cap < n:
            cap *= 2
        self.node_bits = _grown(self.node_bits, cap)
        heads = np.full((self.group_size, cap), -1, np.int64)
        heads[:, : self.node_cap] = self.heads
        self.heads = heads
        self.mark = _grown(self.mark, cap)
        self.mark_eid = _grown(self.mark_eid, cap)
        if self.track_local:
            tau_local = np.zeros((self.group_size, cap), np.int64)
            tau_local[:, : self.node_cap] = self.tau_local
            self.tau_local = tau_local
            if self.track_eta:
                eta_local = np.zeros((self.group_size, cap), np.int64)
                eta_local[:, : self.node_cap] = self.eta_local
                self.eta_local = eta_local
                eta_mark = np.zeros((self.group_size, cap), np.uint8)
                eta_mark[:, : self.node_cap] = self.eta_mark
                self.eta_mark = eta_mark
        self.node_cap = cap
        self._call_cache.clear()

    def ensure_edges(self, extra: int) -> None:
        """Guarantee room for ``extra`` more stored edges (and half-edges)."""
        need = int(self.meta[1]) + extra
        if need > self.edge_cap:
            cap = self.edge_cap
            while cap < need:
                cap *= 2
            self.edge_u = _grown(self.edge_u, cap)
            self.edge_v = _grown(self.edge_v, cap)
            self.edge_slot = _grown(self.edge_slot, cap)
            self.edge_tri = _grown(self.edge_tri, cap)
            self.edge_seen = _grown(self.edge_seen, cap)
            self.edge_cap = cap
            self._call_cache.clear()
        need = int(self.meta[0]) + 2 * extra
        if need > self.pool_cap:
            cap = self.pool_cap
            while cap < need:
                cap *= 2
            self.pool_nbr = _grown(self.pool_nbr, cap)
            self.pool_eid = _grown(self.pool_eid, cap)
            self.pool_nxt = _grown(self.pool_nxt, cap)
            self.pool_cap = cap
            self._call_cache.clear()

    # -- edge index -----------------------------------------------------------

    def _sync_pairs(self) -> Dict[Tuple[int, int, int], int]:
        n_edges = int(self.meta[1])
        if self._pair_sync < n_edges:
            index = self._pair_eids
            edge_u = self.edge_u
            edge_v = self.edge_v
            edge_slot = self.edge_slot
            for e in range(self._pair_sync, n_edges):
                index[(int(edge_slot[e]), int(edge_u[e]), int(edge_v[e]))] = e
            self._pair_sync = n_edges
        return self._pair_eids

    def find_edge(self, slot: int, a: int, b: int) -> Optional[int]:
        """Return the eid of the id-ordered pair ``(a, b)`` on ``slot``."""
        return self._sync_pairs().get((slot, a, b))

    def append_edge(self, iu: int, iv: int, slot: int, tri: int = 0, tri_present: bool = False) -> int:
        """Cold-path edge insert (restore/seed/merge); counters untouched."""
        a, b = (iu, iv) if iu < iv else (iv, iu)
        self.ensure_nodes(b + 1)
        self.ensure_edges(1)
        n_half = int(self.meta[0])
        e = int(self.meta[1])
        self.edge_u[e] = a
        self.edge_v[e] = b
        self.edge_slot[e] = slot
        self.edge_tri[e] = tri
        self.edge_seen[e] = 1 if tri_present else 0
        heads = self.heads
        self.pool_nbr[n_half] = b
        self.pool_eid[n_half] = e
        self.pool_nxt[n_half] = heads[slot, a]
        heads[slot, a] = n_half
        self.pool_nbr[n_half + 1] = a
        self.pool_eid[n_half + 1] = e
        self.pool_nxt[n_half + 1] = heads[slot, b]
        heads[slot, b] = n_half + 1
        self.meta[0] = n_half + 2
        self.meta[1] = e + 1
        bit = 1 << slot
        self.node_bits[a] |= bit
        self.node_bits[b] |= bit
        if self._pair_sync == e:
            self._pair_eids[(slot, a, b)] = e
            self._pair_sync = e + 1
        return e

    # -- scalar ingestion ------------------------------------------------------

    def ingest_scalar(self, iu: int, iv: int, slot: int, first: Optional[bool]) -> bool:
        """Advance the arrays with one interned edge (per-edge reference path).

        Mirrors :meth:`ProcessorGroup._ingest` exactly; returns True when
        the edge was stored.  ``first=None`` derives the flag from the
        stored-edge index (the standalone path).
        """
        self.ensure_nodes((iu if iu > iv else iv) + 1)
        node_bits = self.node_bits
        bits_u = int(node_bits[iu])
        bits_v = int(node_bits[iv])
        candidates = bits_u & bits_v
        closing_at_store = 0
        storeable = slot < self.group_size
        track_local = self.track_local
        track_eta = self.track_eta
        heads = self.heads
        pool_nbr = self.pool_nbr
        pool_eid = self.pool_eid
        pool_nxt = self.pool_nxt
        mark = self.mark
        mark_eid = self.mark_eid
        edge_tri = self.edge_tri
        edge_seen = self.edge_seen
        epoch = int(self.meta[2])
        while candidates:
            low = candidates & -candidates
            candidates -= low
            s = low.bit_length() - 1
            epoch += 1
            h = int(heads[s, iu])
            while h != -1:
                w = int(pool_nbr[h])
                mark[w] = epoch
                mark_eid[w] = pool_eid[h]
                h = int(pool_nxt[h])
            closed = 0
            h = int(heads[s, iv])
            while h != -1:
                w = int(pool_nbr[h])
                if mark[w] == epoch:
                    closed += 1
                    if track_local:
                        self.tau_local[s, w] += 1
                    if track_eta:
                        e_uw = int(mark_eid[w])
                        e_vw = int(pool_eid[h])
                        count_uw = int(edge_tri[e_uw])
                        count_vw = int(edge_tri[e_vw])
                        self.eta[s] += count_uw + count_vw
                        if track_local:
                            eta_local = self.eta_local
                            eta_mark = self.eta_mark
                            eta_local[s, w] += count_uw + count_vw
                            eta_local[s, iu] += count_uw
                            eta_local[s, iv] += count_vw
                            eta_mark[s, w] = 1
                            eta_mark[s, iu] = 1
                            eta_mark[s, iv] = 1
                        edge_tri[e_uw] = count_uw + 1
                        edge_tri[e_vw] = count_vw + 1
                        edge_seen[e_uw] = 1
                        edge_seen[e_vw] = 1
                h = int(pool_nxt[h])
            if closed:
                self.tau[s] += closed
                if track_local:
                    tau_local = self.tau_local
                    tau_local[s, iu] += closed
                    tau_local[s, iv] += closed
                if storeable and s == slot:
                    closing_at_store = closed
        self.meta[2] = epoch
        if not storeable:
            return False
        if first is None:
            a, b = (iu, iv) if iu < iv else (iv, iu)
            first = self.find_edge(slot, a, b) is None
        if not first:
            return False
        self.append_edge(
            iu, iv, slot, closing_at_store if track_eta else 0, track_eta
        )
        self.edges_stored[slot] += 1
        return True

    # -- extraction ------------------------------------------------------------

    def adjacency_dict(self, slot: int) -> Dict[int, List[int]]:
        """Interned ``node -> [neighbors]`` of one slot, in eid order."""
        n = int(self.meta[1])
        sel = np.flatnonzero(self.edge_slot[:n] == slot)
        adjacency: Dict[int, List[int]] = {}
        edge_u = self.edge_u
        edge_v = self.edge_v
        for e in sel:
            a = int(edge_u[e])
            b = int(edge_v[e])
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        return adjacency

    def tau_local_dict(self, slot: int) -> Dict[int, int]:
        if not self.track_local:
            return {}
        row = self.tau_local[slot]
        out = {int(i): int(row[i]) for i in np.flatnonzero(row)}
        for node in self.tau_zero[slot]:
            out.setdefault(node, 0)
        return out

    def eta_local_dict(self, slot: int) -> Dict[int, int]:
        if not self.has_eta_local:
            return {}
        row = self.eta_local[slot]
        return {int(i): int(row[i]) for i in np.flatnonzero(self.eta_mark[slot])}

    def edge_triangles_dict(self, slot: int) -> Dict[Tuple[int, int], int]:
        n = int(self.meta[1])
        sel = np.flatnonzero((self.edge_slot[:n] == slot) & (self.edge_seen[:n] != 0))
        edge_u = self.edge_u
        edge_v = self.edge_v
        edge_tri = self.edge_tri
        out = {
            (int(edge_u[e]), int(edge_v[e])): int(edge_tri[e]) for e in sel
        }
        out.update(self.loose_tri[slot])
        return out

    # -- detachment (pane-delta protocol) --------------------------------------

    def take_tau_local(self, slot: int) -> Dict[int, int]:
        if not self.track_local:
            return {}
        row = self.tau_local[slot]
        idx = np.flatnonzero(row)
        out = {int(i): int(row[i]) for i in idx}
        row[idx] = 0
        zeros = self.tau_zero[slot]
        if zeros:
            for node in zeros:
                out.setdefault(node, 0)
            zeros.clear()
        return out

    def take_eta_local(self, slot: int) -> Dict[int, int]:
        if not self.has_eta_local:
            return {}
        row = self.eta_local[slot]
        marks = self.eta_mark[slot]
        idx = np.flatnonzero(marks)
        out = {int(i): int(row[i]) for i in idx}
        row[idx] = 0
        marks[idx] = 0
        return out

    def take_edge_triangles(self, slot: int) -> Dict[Tuple[int, int], int]:
        n = int(self.meta[1])
        sel = np.flatnonzero((self.edge_slot[:n] == slot) & (self.edge_seen[:n] != 0))
        edge_u = self.edge_u
        edge_v = self.edge_v
        edge_tri = self.edge_tri
        out = {
            (int(edge_u[e]), int(edge_v[e])): int(edge_tri[e]) for e in sel
        }
        edge_tri[sel] = 0
        self.edge_seen[sel] = 0
        loose = self.loose_tri[slot]
        if loose:
            out.update(loose)
            self.loose_tri[slot] = {}
        return out


class NativeProcessorGroup(ProcessorGroup):
    """:class:`ProcessorGroup` backed by :class:`GroupArrays` + a compiled kernel.

    ``provider`` names the resolved native kernel (``"cc"`` or ``"numba"``,
    see :func:`repro.core.kernel.resolve_kernel`); only the name is held, so
    instances pickle freely — the compiled handle is re-resolved from the
    provider registry in the receiving process.  All public
    :class:`ProcessorGroup` semantics are preserved bit-identically; the
    inherited ``processors`` list is deliberately set to ``None`` so any
    unported internal access fails loudly instead of reading empty state.
    """

    def __init__(
        self,
        hash_function: EdgeHashFunction,
        group_size: int,
        m: int,
        track_local: bool = True,
        track_eta: bool = False,
        interner: Optional[NodeInterner] = None,
        provider: str = "cc",
    ) -> None:
        super().__init__(hash_function, group_size, m, track_local, track_eta, interner)
        if provider not in kernel_mod.NATIVE_PROVIDERS:
            raise ValueError(
                f"provider must be one of {kernel_mod.NATIVE_PROVIDERS}, got {provider!r}"
            )
        self.provider = provider
        self.processors = None  # type: ignore[assignment]
        self._node_bits = None  # type: ignore[assignment]
        self._arrays = GroupArrays(group_size, track_local, track_eta)
        self._pairs_cache: Optional[Set[Tuple[int, int]]] = None

    # -- ingestion -------------------------------------------------------------

    def _ingest(self, iu: int, iv: int, slot: int, first: Optional[bool]) -> None:
        # The per-edge hot path runs through the compiled kernel as an
        # n=1 batch (cached argument tuple, see kernel.run_scalar) — the
        # closure walks run at C speed, so dense streams ingest *faster*
        # per edge than the dict/set reference.  The store decision is
        # derived here, before the call, exactly like the batch path's
        # precomputed first flags.
        iu = int(iu)
        iv = int(iv)
        arrays = self._arrays
        arrays.ensure_nodes((iu if iu > iv else iv) + 1)
        storeable = slot < self.group_size
        if storeable and first is None:
            a, b = (iu, iv) if iu < iv else (iv, iu)
            first = arrays.find_edge(slot, a, b) is None
        store = storeable and bool(first)
        if store:
            arrays.ensure_edges(1)
        kernel_mod.run_scalar(self.provider, iu, iv, slot, 1 if store else 0, arrays)
        if store and self._pairs_cache is not None:
            self._pairs_cache.add((iu, iv) if iu < iv else (iv, iu))

    def process_encoded(
        self,
        cu: Sequence[int],
        cv: Sequence[int],
        slots: Sequence[int],
        firsts: Sequence[bool],
    ) -> None:
        n = len(cu)
        if n == 0:
            return
        arrays = self._arrays
        cu_a = np.asarray(cu, np.int64)
        cv_a = np.asarray(cv, np.int64)
        slots_a = np.asarray(slots, np.int64)
        firsts_a = np.asarray(firsts, np.uint8)
        # Pre-ensure every capacity: the kernels never grow storage.  The
        # store count of the batch is exactly the storable first flags.
        arrays.ensure_nodes(len(self.interner.nodes))
        store_mask = (firsts_a != 0) & (slots_a < self.group_size)
        n_stores = int(np.count_nonzero(store_mask))
        if n_stores:
            arrays.ensure_edges(n_stores)
        kernel_mod.run_batch(self.provider, n, cu_a, cv_a, slots_a, firsts_a, arrays)
        if n_stores and self._pairs_cache is not None:
            add = self._pairs_cache.add
            for i in np.flatnonzero(store_mask):
                a = int(cu_a[i])
                b = int(cv_a[i])
                add((a, b) if a < b else (b, a))

    def _stored_pairs(self) -> Set[Tuple[int, int]]:
        cache = self._pairs_cache
        if cache is None:
            cache = self._derive_stored_pairs()
            self._pairs_cache = cache
        return cache

    def _derive_stored_pairs(self) -> Set[Tuple[int, int]]:
        arrays = self._arrays
        n = arrays.n_edges
        edge_u = arrays.edge_u
        edge_v = arrays.edge_v
        return {(int(edge_u[e]), int(edge_v[e])) for e in range(n)}

    # -- chunked execution support ---------------------------------------------

    def snapshot(self) -> GroupSnapshot:
        nodes = self.interner.nodes
        arrays = self._arrays
        processors = []
        for slot in range(self.group_size):
            processors.append(
                {
                    "adjacency": {
                        nodes[iu]: [nodes[iv] for iv in neighbors]
                        for iu, neighbors in arrays.adjacency_dict(slot).items()
                    },
                    "tau": int(arrays.tau[slot]),
                    "tau_local": {
                        nodes[node]: value
                        for node, value in arrays.tau_local_dict(slot).items()
                    },
                    "edge_triangles": {
                        canonical_edge(nodes[a], nodes[b]): value
                        for (a, b), value in arrays.edge_triangles_dict(slot).items()
                    },
                    "eta": int(arrays.eta[slot]),
                    "eta_local": {
                        nodes[node]: value
                        for node, value in arrays.eta_local_dict(slot).items()
                    },
                    "edges_stored": int(arrays.edges_stored[slot]),
                }
            )
        return {"group_size": self.group_size, "m": self.m, "processors": processors}

    def restore(self, snapshot: GroupSnapshot) -> None:
        if snapshot["group_size"] != self.group_size or snapshot["m"] != self.m:
            raise ValueError(
                "snapshot shape mismatch: expected "
                f"(group_size={self.group_size}, m={self.m}), got "
                f"(group_size={snapshot['group_size']}, m={snapshot['m']})"
            )
        # Folding into fresh arrays *is* a restore: every prior is zero, so
        # no correction fires and the counters are copied verbatim.
        self._arrays = GroupArrays(self.group_size, self.track_local, self.track_eta)
        self._pairs_cache = None
        intern = self.interner.intern
        for slot, entry in enumerate(snapshot["processors"]):
            self._fold_counters(slot, _internalize_processor(entry, intern))

    def seed_adjacency(self, stored_edges: Sequence[Tuple[int, NodeId, NodeId]]) -> None:
        intern = self.interner.intern
        arrays = self._arrays
        group_size = self.group_size
        cache = self._pairs_cache
        for slot, u, v in stored_edges:
            if not 0 <= slot < group_size:
                raise ValueError(f"stored edge ({u!r}, {v!r}) names invalid slot {slot}")
            iu = intern(u)
            iv = intern(v)
            a, b = (iu, iv) if iu < iv else (iv, iu)
            if arrays.find_edge(slot, a, b) is None:
                arrays.append_edge(a, b, slot)
            if cache is not None:
                cache.add((a, b))

    def merge_snapshot(self, snapshot: GroupSnapshot) -> None:
        if snapshot["group_size"] != self.group_size or snapshot["m"] != self.m:
            raise ValueError(
                "cannot merge groups of different shape: expected "
                f"(group_size={self.group_size}, m={self.m}), got "
                f"(group_size={snapshot['group_size']}, m={snapshot['m']})"
            )
        intern = self.interner.intern
        for slot, entry in enumerate(snapshot["processors"]):
            self._fold_counters(slot, _internalize_processor(entry, intern))
        self._pairs_cache = None

    def _fold_counters(self, slot: int, later: ProcessorCounters) -> None:
        """Fold one slot's chunk counters into the arrays.

        Mirrors :meth:`ProcessorCounters.merge` exactly: the adjacency
        edges are appended first (so every ``edge_triangles`` key of a
        well-formed chunk finds its eid), then the per-edge counters fold
        with the closed-form η correction against the *prior* values, then
        the scalar and per-node counters add.
        """
        arrays = self._arrays
        # Everything in ``later`` was interned through self.interner.
        arrays.ensure_nodes(len(self.interner.nodes))
        pairs = set()
        for iu, neighbors in later.adjacency.items():
            for iv in neighbors:
                if iu < iv:
                    pairs.add((iu, iv))
        for a, b in sorted(pairs):
            if arrays.find_edge(slot, a, b) is None:
                arrays.append_edge(a, b, slot)
        track_local = self.track_local
        has_eta_local = arrays.has_eta_local
        for key, delta in later.edge_triangles.items():
            a, b = key
            eid = arrays.find_edge(slot, a, b)
            if eid is None:
                loose = arrays.loose_tri[slot]
                prior = loose.get(key, 0)
                loose[key] = prior + delta
            else:
                prior = int(arrays.edge_tri[eid]) if arrays.edge_seen[eid] else 0
                arrays.edge_tri[eid] = prior + delta
                arrays.edge_seen[eid] = 1
            if prior:
                correction = delta * prior
                arrays.eta[slot] += correction
                if track_local and has_eta_local:
                    arrays.eta_local[slot, a] += correction
                    arrays.eta_local[slot, b] += correction
                    arrays.eta_mark[slot, a] = 1
                    arrays.eta_mark[slot, b] = 1
        arrays.tau[slot] += later.tau
        arrays.eta[slot] += later.eta
        if track_local:
            tau_local = arrays.tau_local
            tau_zero = arrays.tau_zero[slot]
            for node, value in later.tau_local.items():
                total = int(tau_local[slot, node]) + value
                tau_local[slot, node] = total
                if total == 0:
                    tau_zero.add(node)
            if has_eta_local:
                eta_local = arrays.eta_local
                eta_mark = arrays.eta_mark
                for node, value in later.eta_local.items():
                    eta_local[slot, node] += value
                    eta_mark[slot, node] = 1
        arrays.edges_stored[slot] += later.edges_stored

    # -- pane-delta protocol ---------------------------------------------------

    def take_pane_deltas(
        self, new_stored: Sequence[Tuple[int, int, int]]
    ) -> List[ProcessorCounters]:
        per_slot_adjacency: List[Dict[int, Set[int]]] = [
            {} for _ in range(self.group_size)
        ]
        for slot, iu, iv in new_stored:
            adjacency = per_slot_adjacency[slot]
            neighbors = adjacency.get(iu)
            if neighbors is None:
                adjacency[iu] = {iv}
            else:
                neighbors.add(iv)
            neighbors = adjacency.get(iv)
            if neighbors is None:
                adjacency[iv] = {iu}
            else:
                neighbors.add(iu)
        arrays = self._arrays
        deltas: List[ProcessorCounters] = []
        for slot in range(self.group_size):
            deltas.append(
                ProcessorCounters(
                    adjacency=per_slot_adjacency[slot],
                    tau=int(arrays.tau[slot]),
                    tau_local=arrays.take_tau_local(slot),
                    edge_triangles=arrays.take_edge_triangles(slot),
                    eta=int(arrays.eta[slot]),
                    eta_local=arrays.take_eta_local(slot),
                    edges_stored=int(arrays.edges_stored[slot]),
                )
            )
        arrays.tau[:] = 0
        arrays.eta[:] = 0
        arrays.edges_stored[:] = 0
        return deltas

    def merge_deltas(self, deltas: Sequence[ProcessorCounters]) -> None:
        if len(deltas) != self.group_size:
            raise ValueError(
                f"expected {self.group_size} per-slot deltas, got {len(deltas)}"
            )
        for slot, delta in enumerate(deltas):
            self._fold_counters(slot, delta)
        self._pairs_cache = None

    # -- aggregates ------------------------------------------------------------

    def tau_values(self) -> List[int]:
        return [int(value) for value in self._arrays.tau]

    def eta_values(self) -> List[int]:
        return [int(value) for value in self._arrays.eta]

    def total_edges_stored(self) -> int:
        return int(self._arrays.edges_stored.sum())

    def _local_sums(self, attribute: str, as_float: bool):
        arrays = self._arrays
        nodes = self.interner.nodes
        if attribute == "tau_local":
            if not self.track_local:
                return {}
            sums = arrays.tau_local.sum(axis=0)
            out = {}
            for i in np.flatnonzero(sums):
                out[nodes[int(i)]] = float(sums[i]) if as_float else int(sums[i])
            zero = 0.0 if as_float else 0
            for zeros in arrays.tau_zero:
                for node in zeros:
                    out.setdefault(nodes[node], zero)
            return out
        if not arrays.has_eta_local:
            return {}
        sums = arrays.eta_local.sum(axis=0)
        touched = arrays.eta_mark.any(axis=0)
        return {
            nodes[int(i)]: (float(sums[i]) if as_float else int(sums[i]))
            for i in np.flatnonzero(touched)
        }

    # -- raw-keyed introspection -----------------------------------------------

    def stored_edges(self) -> List[Tuple[int, NodeId, NodeId]]:
        nodes = self.interner.nodes
        arrays = self._arrays
        records: List[Tuple[int, NodeId, NodeId]] = []
        edge_u = arrays.edge_u
        edge_v = arrays.edge_v
        edge_slot = arrays.edge_slot
        for e in range(arrays.n_edges):
            cu, cv = canonical_edge(nodes[int(edge_u[e])], nodes[int(edge_v[e])])
            records.append((int(edge_slot[e]), cu, cv))
        return records

    def stored_neighbors(self, slot: int, node: NodeId) -> Set[NodeId]:
        dense = self.interner.id_of(node)
        if dense is None:
            return set()
        arrays = self._arrays
        if dense >= arrays.node_cap:
            return set()
        nodes = self.interner.nodes
        out: Set[NodeId] = set()
        h = int(arrays.heads[slot, dense])
        while h != -1:
            out.add(nodes[int(arrays.pool_nbr[h])])
            h = int(arrays.pool_nxt[h])
        return out


def make_processor_group(
    hash_function: EdgeHashFunction,
    group_size: int,
    m: int,
    track_local: bool = True,
    track_eta: bool = False,
    interner: Optional[NodeInterner] = None,
    kernel: str = "auto",
) -> ProcessorGroup:
    """Build a processor group honouring a kernel request.

    Resolves ``kernel`` (see :func:`repro.core.kernel.resolve_kernel`) for
    this group's size in *this* process — worker processes re-resolve
    locally, so a pool whose children lack a provider still runs (the
    counters are bit-identical across kernels; only the top-level estimate
    metadata records the driver's resolved label).
    """
    label = kernel_mod.resolve_kernel(kernel, group_size)
    if label == "python":
        return ProcessorGroup(
            hash_function, group_size, m, track_local, track_eta, interner
        )
    return NativeProcessorGroup(
        hash_function, group_size, m, track_local, track_eta, interner, provider=label
    )
