"""Execution drivers for REPT: serial, thread pool, process pool.

The estimator's accuracy is a property of its counters, not of how the
counters are advanced, so the drivers all produce *identical* estimates for
the same :class:`~repro.core.config.ReptConfig` (hash seeds are derived
deterministically from the resolved config seed).  The backends differ only
in how the processor groups are scheduled:

* ``serial`` — one thread advances every group (reference implementation);
* ``thread`` — a thread pool advances groups concurrently.  Under CPython's
  GIL this gives little speedup for pure-Python counting, but exercises the
  concurrency structure a multi-core implementation would use;
* ``process`` — a process pool gives true parallelism at the cost of
  shipping the stream to each worker and the counters back.

This mirrors the paper's deployment story (a multi-core machine or a
cluster) while keeping the laptop-scale experiments honest about where
Python can and cannot show wall-clock speedups (see DESIGN.md).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.baselines.base import TriangleEstimate
from repro.core.combine import GroupSummary, combine_group_estimates
from repro.core.config import ReptConfig
from repro.core.state import ProcessorGroup
from repro.exceptions import ConfigurationError
from repro.hashing import make_hash_function
from repro.types import EdgeTuple

ParallelBackend = str
"""One of ``"serial"``, ``"thread"``, ``"process"``."""

_BACKENDS = ("serial", "thread", "process")


def _group_worker(
    edges: Sequence[EdgeTuple],
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    is_complete: bool,
    track_local: bool,
    track_eta: bool,
) -> GroupSummary:
    """Advance one processor group over the whole stream and summarise it.

    Module-level (not a closure) so it can be pickled by the process pool.
    """
    group = ProcessorGroup(
        hash_function=make_hash_function(hash_kind, buckets=m, seed=hash_seed),
        group_size=group_size,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
    )
    for u, v in edges:
        if u != v:
            group.process_edge(u, v)
    return GroupSummary(
        group_size=group_size,
        is_complete=is_complete,
        tau_sum=float(sum(group.tau_values())),
        eta_sum=float(sum(group.eta_values())),
        local_tau={node: float(v) for node, v in group.local_tau_sums().items()},
        local_eta={node: float(v) for node, v in group.local_eta_sums().items()},
        edges_stored=group.total_edges_stored(),
    )


def _work_items(config: ReptConfig) -> List[Tuple[int, int, bool]]:
    """Return ``(hash_seed, group_size, is_complete)`` per group."""
    sizes = config.group_sizes()
    seeds = config.group_hash_seeds()
    return [
        (seeds[index], size, config.uses_groups and size == config.m)
        for index, size in enumerate(sizes)
    ]


def run_rept(
    edges: Iterable[EdgeTuple],
    config: ReptConfig,
    backend: ParallelBackend = "serial",
    max_workers: Optional[int] = None,
) -> TriangleEstimate:
    """Run REPT over ``edges`` with the chosen execution backend.

    Parameters
    ----------
    edges:
        The stream (any iterable of ``(u, v)`` pairs).  It is materialised
        into a list so that every group sees the same sequence; pass a list
        to avoid the copy.
    config:
        REPT parameters.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Worker cap for the pooled backends (default: number of groups).

    Returns
    -------
    TriangleEstimate
        Identical (bit-for-bit) across backends for the same config.
    """
    if backend not in _BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    edge_list: List[EdgeTuple] = list(edges)
    items = _work_items(config)
    track_local = config.track_local
    track_eta = bool(config.track_eta)

    if backend == "serial" or len(items) == 1:
        summaries = [
            _group_worker(
                edge_list, config.hash_kind, seed, size, config.m, complete,
                track_local, track_eta,
            )
            for seed, size, complete in items
        ]
    else:
        executor_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        workers = max_workers or len(items)
        with executor_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _group_worker,
                    edge_list,
                    config.hash_kind,
                    seed,
                    size,
                    config.m,
                    complete,
                    track_local,
                    track_eta,
                )
                for seed, size, complete in items
            ]
            summaries = [future.result() for future in futures]

    return combine_group_estimates(
        summaries,
        m=config.m,
        c=config.c,
        edges_processed=len(edge_list),
        track_local=track_local,
    )
