"""Execution drivers for REPT: serial, pooled, and stream-sharded backends.

The estimator's accuracy is a property of its counters, not of how the
counters are advanced, so the drivers all produce *identical* estimates for
the same :class:`~repro.core.config.ReptConfig` (hash seeds are derived
deterministically from the resolved config seed).  The backends differ only
in how the work is scheduled:

* ``serial`` — one thread advances every group (reference implementation);
* ``thread`` — a thread pool advances groups concurrently.  Under CPython's
  GIL this gives little speedup for pure-Python counting, but exercises the
  concurrency structure a multi-core implementation would use;
* ``process`` — a process pool with one task per *group*; each worker
  receives the entire stream, so wall-clock and shipping cost grow with
  ``c`` and parallelism is capped at the number of groups (``c ≤ m`` gets
  none at all);
* ``chunked-process`` — the stream-sharded engine: the stream is split into
  chunks and every (group × chunk) pair becomes an independent task, so
  parallelism scales with stream length even for a single group and no task
  ever receives more than one chunk of the stream;
* ``chunked-serial`` — the same sharded schedule executed inline, used as
  the equality reference for the merge logic and as the zero-overhead
  fallback.

Shard-then-merge design
-----------------------
REPT's counters are mergeable (the paper's core point), and the chunked
backends exploit the precise form of that mergeability:

1. **Storing pass** (cheap, parallel over groups × chunks): which edges land
   in which processor's sampled set depends only on the hash function and
   the distinct edges seen — never on the counters.  Each storing task
   returns its chunk's stored ``(slot, u, v)`` records; the driver folds
   them into per-chunk-boundary *adjacency snapshots*.
2. **Counting pass** (the hot path, parallel over groups × chunks): each
   task seeds a fresh :class:`~repro.core.state.ProcessorGroup` with the
   snapshot at its chunk boundary (:meth:`ProcessorGroup.seed_adjacency`)
   and advances it over its chunk only.  Because the seeded adjacency is
   exactly the serial algorithm's state at that stream position, every
   closure count is exact, and ``τ``/``τ_v`` merge by pure summation.
3. **Merge** (driver): chunk states fold left-to-right via
   :meth:`ProcessorGroup.merge_snapshot`, which also applies the closed-form
   η cross-chunk correction (η increments are linear in the per-edge
   triangle counters; see :mod:`repro.core.state`).  The result is
   bit-identical to the serial counters — the cross-backend equivalence
   tests assert exact equality, not approximate.

Chunk payloads are passed to pooled workers as index spans into the edge
list (and keys into the boundary-snapshot table) that each pool receives
through its initializer.  The shared stream is staged *columnar*: all-int
streams become two ``int64`` NumPy arrays (see
:func:`repro.streaming.edge_stream.edge_columns`), whose binary buffers
pickle far cheaper than lists of tuples.  Under ``fork`` (Linux) the
initializer arguments are inherited copy-on-write — per-task shipping is
O(1); under ``spawn`` (macOS/Windows) they are pickled once per worker
rather than once per task.  Each pool owns its payload, so concurrent
``run_rept`` calls never share mutable module state.

Workers themselves ingest through the batched pipeline: the storing pass
hashes whole chunks vectorially and the counting pass drives
:meth:`~repro.core.state.ProcessorGroup.process_edges`, so the chunked
backends get the same per-edge-overhead amortisation as the estimator's
batch API (results stay bit-identical — the cross-backend equivalence
tests assert exact equality).

Counted-edge semantics
----------------------
All drivers follow the library-wide contract documented on
:class:`~repro.baselines.base.StreamingTriangleEstimator`: every stream
record — including self-loops and duplicate arrivals — counts toward
``edges_processed``, but self-loops are skipped before any counter or
stored-edge update.  Duplicates *do* drive counter updates (a re-observed
edge closes semi-triangles) while the ``already_stored`` check keeps the
sampled edge sets simple.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.core.combine import GroupSummary, combine_group_estimates
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import (
    GroupSnapshot,
    GroupStateSet,
    ProcessorGroup,
    ingest_edge_batches,
)
from repro.exceptions import ConfigurationError
from repro.hashing import make_hash_function
from repro.streaming.edge_stream import edge_columns
from repro.types import EdgeTuple, NodeId

ParallelBackend = str
"""One of ``"serial"``, ``"thread"``, ``"process"``, ``"chunked-serial"``,
``"chunked-process"``."""

_BACKENDS = ("serial", "thread", "process", "chunked-serial", "chunked-process")

#: Smallest chunk the auto-tuner will produce; below this the per-task
#: overhead (pickling, pool dispatch, snapshot seeding) dominates the work.
MIN_CHUNK_EDGES = 2048

#: Oversubscription factor of the auto-tuner: aim for about this many tasks
#: per worker per phase so stragglers even out.
_TASKS_PER_WORKER = 4

#: Per-worker-process payload, populated by :func:`_pool_initializer` when a
#: chunked-process pool starts its workers: "edges" holds the materialised
#: stream, "snapshots" the per-(group, chunk) boundary adjacency records.
#: Under fork the initializer arguments are inherited copy-on-write; under
#: spawn they are pickled once per worker.  The parent process never writes
#: this dict, so concurrent runs (each with their own pools) cannot race.
_WORKER_PAYLOAD: Dict[str, object] = {}


def _pool_initializer(edges, snapshots) -> None:
    """Stage the shared payload inside a pool worker process."""
    _WORKER_PAYLOAD["edges"] = edges
    _WORKER_PAYLOAD["snapshots"] = snapshots

#: (slot, u, v) records describing stored edges at a chunk boundary.
StoredEdgeRecord = Tuple[int, NodeId, NodeId]


def _make_group(
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    track_local: bool,
    track_eta: bool,
) -> ProcessorGroup:
    return ProcessorGroup(
        hash_function=make_hash_function(hash_kind, buckets=m, seed=hash_seed),
        group_size=group_size,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
    )


def _summarise_group(group: ProcessorGroup, is_complete: bool) -> GroupSummary:
    """Detach a group's counters into a plain, picklable summary."""
    return group.summarise(is_complete)


#: Edges per ``ProcessorGroup.process_edges`` call inside workers — bounds
#: the transient encode arrays without giving up the batch amortisation.
_WORKER_BATCH_EDGES = 65536


def _group_worker(
    edges: Sequence[EdgeTuple],
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    is_complete: bool,
    track_local: bool,
    track_eta: bool,
) -> GroupSummary:
    """Advance one processor group over the whole stream and summarise it.

    Module-level (not a closure) so it can be pickled by the process pool.
    Ingestion runs through the batched pipeline (bit-identical to the
    per-edge loop), with a persistent first-occurrence set across batches.
    """
    group = _make_group(hash_kind, hash_seed, group_size, m, track_local, track_eta)
    ingest_edge_batches(group, edges, seen=set(), batch_edges=_WORKER_BATCH_EDGES)
    return _summarise_group(group, is_complete)


def _work_items(config: ReptConfig) -> List[Tuple[int, int, bool]]:
    """Return ``(hash_seed, group_size, is_complete)`` per group."""
    sizes = config.group_sizes()
    seeds = config.group_hash_seeds()
    return [
        (seeds[index], size, config.uses_groups and size == config.m)
        for index, size in enumerate(sizes)
    ]


# -- chunked engine ----------------------------------------------------------


def _stage_columns(edge_list: List[EdgeTuple]):
    """Stage an edge list for pool shipping: columnar where possible."""
    return ("columns",) + edge_columns(edge_list)


def _resolve_edges(payload) -> Sequence[EdgeTuple]:
    """Resolve a task payload: an explicit edge list, or a span into the
    pool-shared stream.

    The shared stream is stored as endpoint columns; int64 column slices
    round-trip through ``tolist()`` so workers see plain Python ints (the
    hash and interning layers key on exact types).
    """
    if isinstance(payload, tuple):
        start, stop = payload
        us, vs = _WORKER_PAYLOAD["edges"][1:]  # type: ignore[index]
        us = us[start:stop]
        vs = vs[start:stop]
        if isinstance(us, np.ndarray):
            us = us.tolist()
            vs = vs.tolist()
        return list(zip(us, vs))
    return payload


def _resolve_stored(ref) -> Sequence[StoredEdgeRecord]:
    """Resolve a boundary-snapshot reference: an explicit record list, or a
    (group, chunk) key into the pool-shared snapshot table."""
    if isinstance(ref, tuple) and ref and ref[0] == "shared":
        return _WORKER_PAYLOAD["snapshots"][ref[1:]]  # type: ignore[index]
    return ref


def _storing_worker(
    payload,
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
) -> List[StoredEdgeRecord]:
    """Storing pass over one chunk for one group.

    Returns the chunk's distinct stored edges (canonical orientation) with
    their processor slots, in arrival order.  The whole chunk is hashed
    vectorially; cross-chunk deduplication happens in the driver when
    boundary snapshots are assembled.
    """
    hash_function = make_hash_function(hash_kind, buckets=m, seed=hash_seed)
    interner = NodeInterner()
    cu, cv, firsts, _ = interner.encode_pairs(_resolve_edges(payload), set())
    if not cu:
        return []
    slots = hash_function.bucket_from_keys(interner.edge_key_array(cu, cv)).tolist()
    nodes = interner.nodes
    stored: List[StoredEdgeRecord] = []
    for iu, iv, slot, first in zip(cu, cv, slots, firsts):
        if first and slot < group_size:
            # encode_pairs emits canonical orientation, so (nodes[iu],
            # nodes[iv]) is exactly canonical_edge(u, v).
            stored.append((slot, nodes[iu], nodes[iv]))
    return stored


def _chunk_counting_worker(
    payload,
    snapshot_ref,
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    track_local: bool,
    track_eta: bool,
) -> GroupSnapshot:
    """Counting pass over one chunk for one group, seeded with the boundary
    adjacency, returning the chunk's counter deltas as a group snapshot."""
    group = _make_group(hash_kind, hash_seed, group_size, m, track_local, track_eta)
    group.seed_adjacency(_resolve_stored(snapshot_ref))
    ingest_edge_batches(
        group, _resolve_edges(payload), batch_edges=_WORKER_BATCH_EDGES
    )
    return group.snapshot()


def auto_chunk_size(n_edges: int, workers: int, num_groups: int) -> int:
    """Pick a chunk size from stream length and worker count.

    Aims for roughly ``_TASKS_PER_WORKER`` tasks per worker per phase
    (tasks = groups × chunks) so stragglers even out, while never producing
    chunks smaller than :data:`MIN_CHUNK_EDGES`, below which task overhead
    dominates the counting work.
    """
    if n_edges <= 0:
        return 1
    target_tasks = max(1, _TASKS_PER_WORKER * max(1, workers))
    num_chunks = max(1, target_tasks // max(1, num_groups))
    size = -(-n_edges // num_chunks)  # ceil division
    return max(1, min(n_edges, max(MIN_CHUNK_EDGES, size)))


def _chunk_spans(n_edges: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_edges)`` into consecutive ``(start, stop)`` spans."""
    if n_edges <= 0:
        return [(0, 0)]
    return [
        (start, min(start + chunk_size, n_edges))
        for start in range(0, n_edges, chunk_size)
    ]


def _prefix_snapshots(
    stored_per_chunk: Sequence[Sequence[StoredEdgeRecord]],
) -> List[List[StoredEdgeRecord]]:
    """Turn per-chunk stored-edge lists into per-chunk *boundary* snapshots.

    Snapshot ``k`` holds the distinct stored edges of chunks ``0..k-1``
    (first arrival wins — the slot is hash-determined, so duplicates across
    chunks agree on it and are simply dropped).
    """
    snapshots: List[List[StoredEdgeRecord]] = []
    seen: set = set()
    prefix: List[StoredEdgeRecord] = []
    for stored in stored_per_chunk:
        snapshots.append(list(prefix))
        for slot, u, v in stored:
            if (u, v) in seen:
                continue
            seen.add((u, v))
            prefix.append((slot, u, v))
    return snapshots


def _run_chunked(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    use_processes: bool,
    max_workers: Optional[int],
    chunk_size: Optional[int],
) -> Tuple[List[GroupSummary], Dict[str, float]]:
    """Execute the shard-then-merge schedule; returns (summaries, chunk info)."""
    items = _work_items(config)
    track_local = config.track_local
    track_eta = bool(config.track_eta)
    n = len(edge_list)
    workers = max_workers or os.cpu_count() or 1
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    size = chunk_size or auto_chunk_size(n, workers, len(items))
    spans = _chunk_spans(n, size)
    info = {
        "num_chunks": float(len(spans)),
        "chunk_edges_max": float(max(stop - start for start, stop in spans)),
    }

    if len(spans) == 1 or not edge_list:
        # A single chunk degenerates to the in-process schedule: one shared
        # state set advances every group (one encode serves all groups) and
        # the storing pass is skipped entirely.
        state = GroupStateSet(config)
        state.ingest_stream(edge_list, batch_edges=_WORKER_BATCH_EDGES)
        return state.summaries(), info

    if use_processes:
        stored, chunk_states = _chunked_phases_pooled(
            edge_list, config, items, spans, workers, track_local, track_eta
        )
    else:
        stored, chunk_states = _chunked_phases_inline(
            edge_list, config, items, spans, track_local, track_eta
        )

    # Fold the chunk states left-to-right into one fresh state set (the η
    # cross-chunk correction is applied inside each group merge).
    merged = GroupStateSet(config)
    for chunk_index in range(len(spans)):
        merged.merge_snapshots(
            [
                chunk_states[(group_index, chunk_index)]
                for group_index in range(len(items))
            ]
        )
    return merged.summaries(), info


def _chunked_phases_inline(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    items: Sequence[Tuple[int, int, bool]],
    spans: Sequence[Tuple[int, int]],
    track_local: bool,
    track_eta: bool,
):
    """Run both chunked phases inline (the ``chunked-serial`` backend)."""
    chunk_states: Dict[Tuple[int, int], GroupSnapshot] = {}
    stored_all: Dict[int, List[List[StoredEdgeRecord]]] = {}
    for group_index, (seed, group_size, _complete) in enumerate(items):
        stored_all[group_index] = [
            _storing_worker(
                edge_list[start:stop], config.hash_kind, seed, group_size, config.m
            )
            for start, stop in spans
        ]
    for group_index, (seed, group_size, _complete) in enumerate(items):
        snapshots = _prefix_snapshots(stored_all[group_index])
        for chunk_index, (start, stop) in enumerate(spans):
            chunk_states[(group_index, chunk_index)] = _chunk_counting_worker(
                edge_list[start:stop],
                snapshots[chunk_index],
                config.hash_kind,
                seed,
                group_size,
                config.m,
                track_local,
                track_eta,
            )
    return stored_all, chunk_states


def _chunked_phases_pooled(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    items: Sequence[Tuple[int, int, bool]],
    spans: Sequence[Tuple[int, int]],
    workers: int,
    track_local: bool,
    track_eta: bool,
):
    """Run both chunked phases on process pools (the ``chunked-process``
    backend).  Each pool receives its payload through its initializer —
    inherited copy-on-write under fork, pickled once per worker under
    spawn — and tasks carry only spans and snapshot keys."""
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    mp_context = multiprocessing.get_context("fork") if use_fork else None
    num_tasks = len(items) * len(spans)
    pool_size = max(1, min(workers, num_tasks))
    staged = _stage_columns(edge_list)

    # Phase 1: storing pass.
    stored_all: Dict[int, List[List[StoredEdgeRecord]]] = {}
    with ProcessPoolExecutor(
        max_workers=pool_size,
        mp_context=mp_context,
        initializer=_pool_initializer,
        initargs=(staged, None),
    ) as pool:
        futures = {
            (group_index, chunk_index): pool.submit(
                _storing_worker,
                span,
                config.hash_kind,
                seed,
                group_size,
                config.m,
            )
            for group_index, (seed, group_size, _c) in enumerate(items)
            for chunk_index, span in enumerate(spans)
        }
        for group_index in range(len(items)):
            stored_all[group_index] = [
                futures[(group_index, chunk_index)].result()
                for chunk_index in range(len(spans))
            ]

    snapshot_table = {
        (group_index, chunk_index): snapshot
        for group_index in range(len(items))
        for chunk_index, snapshot in enumerate(_prefix_snapshots(stored_all[group_index]))
    }

    # Phase 2: counting pass, on a fresh pool whose initializer also carries
    # the boundary snapshots.
    chunk_states: Dict[Tuple[int, int], GroupSnapshot] = {}
    with ProcessPoolExecutor(
        max_workers=pool_size,
        mp_context=mp_context,
        initializer=_pool_initializer,
        initargs=(staged, snapshot_table),
    ) as pool:
        futures = {
            (group_index, chunk_index): pool.submit(
                _chunk_counting_worker,
                span,
                ("shared", group_index, chunk_index),
                config.hash_kind,
                seed,
                group_size,
                config.m,
                track_local,
                track_eta,
            )
            for group_index, (seed, group_size, _c) in enumerate(items)
            for chunk_index, span in enumerate(spans)
        }
        for key, future in futures.items():
            chunk_states[key] = future.result()
    return stored_all, chunk_states


# -- public driver -----------------------------------------------------------


def run_rept(
    edges: Iterable[EdgeTuple],
    config: ReptConfig,
    backend: ParallelBackend = "serial",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TriangleEstimate:
    """Run REPT over ``edges`` with the chosen execution backend.

    Parameters
    ----------
    edges:
        The stream (any iterable of ``(u, v)`` pairs).  It is materialised
        into a list so that every group sees the same sequence; pass a list
        to avoid the copy.
    config:
        REPT parameters.
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, ``"chunked-serial"`` or
        ``"chunked-process"``.
    max_workers:
        Worker cap for the pooled backends (default: number of groups for
        the per-group backends, CPU count for the chunked backends).
    chunk_size:
        Edges per chunk for the chunked backends (default: auto-tuned from
        stream length and worker count, see :func:`auto_chunk_size`).
        Ignored by the per-group backends.

    Returns
    -------
    TriangleEstimate
        Identical (bit-for-bit) across backends for the same config.
    """
    if backend not in _BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    edge_list: List[EdgeTuple] = list(edges)
    items = _work_items(config)
    track_local = config.track_local
    track_eta = bool(config.track_eta)
    chunk_info: Dict[str, float] = {}

    if backend in ("chunked-serial", "chunked-process"):
        summaries, chunk_info = _run_chunked(
            edge_list, config, backend == "chunked-process", max_workers, chunk_size
        )
    elif backend == "serial" or len(items) == 1:
        # The in-process reference: one shared state set advances every
        # group, so canonicalisation/interning run once per batch for all
        # of them (bit-identical to the per-group schedule).
        state = GroupStateSet(config)
        state.ingest_stream(edge_list, batch_edges=_WORKER_BATCH_EDGES)
        summaries = state.summaries()
    else:
        executor_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        workers = max_workers or len(items)
        with executor_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _group_worker,
                    edge_list,
                    config.hash_kind,
                    seed,
                    size,
                    config.m,
                    complete,
                    track_local,
                    track_eta,
                )
                for seed, size, complete in items
            ]
            summaries = [future.result() for future in futures]

    estimate = combine_group_estimates(
        summaries,
        m=config.m,
        c=config.c,
        edges_processed=len(edge_list),
        track_local=track_local,
        eta_tracked=track_eta,
    )
    estimate.metadata.update(chunk_info)
    return estimate


class DriverBackedRept(StreamingTriangleEstimator):
    """REPT behind the streaming-estimator interface, executed by a driver.

    The one-pass estimators advance counters on every
    :meth:`process_edge`; this adapter instead buffers the stream and runs
    the configured :func:`run_rept` backend when an estimate is requested,
    so the experiment harness can sweep execution backends through the same
    :class:`~repro.experiments.spec.MethodSpec` machinery.  Estimates are
    bit-identical to :class:`~repro.core.rept.ReptEstimator` with the same
    config.
    """

    name = "rept"

    def __init__(
        self,
        config: ReptConfig,
        backend: ParallelBackend = "chunked-serial",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__()
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.config = config
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self._buffer: List[EdgeTuple] = []

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        self._buffer.append((u, v))

    def process_edges(self, edges: Iterable[EdgeTuple]) -> None:
        """Bulk-append a batch to the buffered stream (no per-edge cost)."""
        before = len(self._buffer)
        self._buffer.extend(edges)
        self.edges_processed += len(self._buffer) - before

    def estimate(self) -> TriangleEstimate:
        estimate = run_rept(
            self._buffer,
            self.config,
            backend=self.backend,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
        )
        estimate.metadata["algorithm"] = 2.0 if self.config.uses_groups else 1.0
        return estimate

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return f"{self.config.describe()} via backend={self.backend}"
