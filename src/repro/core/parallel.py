"""Execution drivers for REPT: serial, pooled, and stream-sharded backends.

The estimator's accuracy is a property of its counters, not of how the
counters are advanced, so the drivers all produce *identical* estimates for
the same :class:`~repro.core.config.ReptConfig` (hash seeds are derived
deterministically from the resolved config seed).  The backends differ only
in how the work is scheduled:

* ``serial`` — one thread advances every group (reference implementation);
* ``thread`` — a thread pool advances groups concurrently.  Under CPython's
  GIL this gives little speedup for pure-Python counting, but exercises the
  concurrency structure a multi-core implementation would use;
* ``process`` — a process pool with one task per *group*; each worker
  receives the entire stream, so wall-clock and shipping cost grow with
  ``c`` and parallelism is capped at the number of groups (``c ≤ m`` gets
  none at all);
* ``chunked-process`` — the stream-sharded engine: the stream is split into
  chunks and every (group × chunk) pair becomes an independent task, so
  parallelism scales with stream length even for a single group and no task
  ever receives more than one chunk of the stream;
* ``chunked-serial`` — the same sharded schedule executed inline, used as
  the equality reference for the merge logic and as the zero-overhead
  fallback.

Shard-then-merge design
-----------------------
REPT's counters are mergeable (the paper's core point), and the chunked
backends exploit the precise form of that mergeability:

1. **Storing pass** (cheap, parallel over groups × chunks): which edges land
   in which processor's sampled set depends only on the hash function and
   the distinct edges seen — never on the counters.  Each storing task
   returns its chunk's stored ``(slot, u, v)`` records; the driver folds
   them into per-chunk-boundary *adjacency snapshots*.
2. **Counting pass** (the hot path, parallel over groups × chunks): each
   task seeds a fresh :class:`~repro.core.state.ProcessorGroup` with the
   snapshot at its chunk boundary (:meth:`ProcessorGroup.seed_adjacency`)
   and advances it over its chunk only.  Because the seeded adjacency is
   exactly the serial algorithm's state at that stream position, every
   closure count is exact, and ``τ``/``τ_v`` merge by pure summation.
3. **Merge** (driver): chunk states fold left-to-right via
   :meth:`ProcessorGroup.merge_snapshot`, which also applies the closed-form
   η cross-chunk correction (η increments are linear in the per-edge
   triangle counters; see :mod:`repro.core.state`).  The result is
   bit-identical to the serial counters — the cross-backend equivalence
   tests assert exact equality, not approximate.

Chunk payloads are passed to pooled workers as index spans into the edge
list (and keys into the boundary-snapshot table) that each pool receives
through its initializer.  The shared stream is staged *columnar*: all-int
streams become two ``int64`` NumPy arrays (see
:func:`repro.streaming.edge_stream.edge_columns`), whose binary buffers
pickle far cheaper than lists of tuples.  Under ``fork`` (Linux) the
initializer arguments are inherited copy-on-write — per-task shipping is
O(1); under ``spawn`` (macOS/Windows) they are pickled once per worker
rather than once per task.  Each pool owns its payload, so concurrent
``run_rept`` calls never share mutable module state.

Workers themselves ingest through the batched pipeline: the storing pass
hashes whole chunks vectorially and the counting pass drives
:meth:`~repro.core.state.ProcessorGroup.process_edges`, so the chunked
backends get the same per-edge-overhead amortisation as the estimator's
batch API (results stay bit-identical — the cross-backend equivalence
tests assert exact equality).

Counted-edge semantics
----------------------
All drivers follow the library-wide contract documented on
:class:`~repro.baselines.base.StreamingTriangleEstimator`: every stream
record — including self-loops and duplicate arrivals — counts toward
``edges_processed``, but self-loops are skipped before any counter or
stored-edge update.  Duplicates *do* drive counter updates (a re-observed
edge closes semi-triangles) while the ``already_stored`` check keeps the
sampled edge sets simple.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.core.combine import GroupSummary, combine_group_estimates
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import (
    GroupSnapshot,
    GroupStateSet,
    ProcessorGroup,
    ingest_edge_batches,
)
from repro.durability.retry import RetryPolicy
from repro.exceptions import ConfigurationError, WorkerFailedError
from repro.hashing import make_hash_function
from repro.streaming.edge_stream import edge_columns
from repro.testing.faults import maybe_fail
from repro.types import EdgeTuple, NodeId

ParallelBackend = str
"""One of ``"serial"``, ``"thread"``, ``"process"``, ``"chunked-serial"``,
``"chunked-process"``, ``"chunked-elastic"``."""

_BACKENDS = (
    "serial",
    "thread",
    "process",
    "chunked-serial",
    "chunked-process",
    "chunked-elastic",
)

#: Smallest chunk the auto-tuner will produce; below this the per-task
#: overhead (pickling, pool dispatch, snapshot seeding) dominates the work.
MIN_CHUNK_EDGES = 2048

#: Oversubscription factor of the auto-tuner: aim for about this many tasks
#: per worker per phase so stragglers even out.
_TASKS_PER_WORKER = 4

#: Per-worker-process payload, populated by :func:`_pool_initializer` when a
#: chunked-process pool starts its workers: "edges" holds the materialised
#: stream, "snapshots" the per-(group, chunk) boundary adjacency records.
#: Under fork the initializer arguments are inherited copy-on-write; under
#: spawn they are pickled once per worker.  The parent process never writes
#: this dict, so concurrent runs (each with their own pools) cannot race.
_WORKER_PAYLOAD: Dict[str, object] = {}


def _pool_initializer(edges, snapshots) -> None:
    """Stage the shared payload inside a pool worker process."""
    _WORKER_PAYLOAD["edges"] = edges
    _WORKER_PAYLOAD["snapshots"] = snapshots

#: (slot, u, v) records describing stored edges at a chunk boundary.
StoredEdgeRecord = Tuple[int, NodeId, NodeId]


def _make_group(
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    track_local: bool,
    track_eta: bool,
    kernel: str = "python",
) -> ProcessorGroup:
    # Local import: repro.core.adjacency imports this module's sibling
    # (state); resolving lazily keeps the worker-unpickling path light.
    from repro.core.adjacency import make_processor_group

    return make_processor_group(
        hash_function=make_hash_function(hash_kind, buckets=m, seed=hash_seed),
        group_size=group_size,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
        kernel=kernel,
    )


def _summarise_group(group: ProcessorGroup, is_complete: bool) -> GroupSummary:
    """Detach a group's counters into a plain, picklable summary."""
    return group.summarise(is_complete)


#: Edges per ``ProcessorGroup.process_edges`` call inside workers — bounds
#: the transient encode arrays without giving up the batch amortisation.
_WORKER_BATCH_EDGES = 65536


def _group_worker(
    edges: Sequence[EdgeTuple],
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    is_complete: bool,
    track_local: bool,
    track_eta: bool,
    kernel: str = "python",
) -> GroupSummary:
    """Advance one processor group over the whole stream and summarise it.

    Module-level (not a closure) so it can be pickled by the process pool.
    Ingestion runs through the batched pipeline (bit-identical to the
    per-edge loop), with a persistent first-occurrence set across batches.
    The kernel request is re-resolved in this process (compiled handles do
    not pickle); all kernels are bit-identical, so mixed resolution across
    workers cannot change the summary.
    """
    group = _make_group(
        hash_kind, hash_seed, group_size, m, track_local, track_eta, kernel
    )
    ingest_edge_batches(group, edges, seen=set(), batch_edges=_WORKER_BATCH_EDGES)
    return _summarise_group(group, is_complete)


def _work_items(config: ReptConfig) -> List[Tuple[int, int, bool]]:
    """Return ``(hash_seed, group_size, is_complete)`` per group."""
    sizes = config.group_sizes()
    seeds = config.group_hash_seeds()
    return [
        (seeds[index], size, config.uses_groups and size == config.m)
        for index, size in enumerate(sizes)
    ]


# -- chunked engine ----------------------------------------------------------


def _stage_columns(edge_list: List[EdgeTuple]):
    """Stage an edge list for pool shipping: columnar where possible."""
    return ("columns",) + edge_columns(edge_list)


def _resolve_edges(payload) -> Sequence[EdgeTuple]:
    """Resolve a task payload: an explicit edge list, or a span into the
    pool-shared stream.

    The shared stream is stored as endpoint columns; int64 column slices
    round-trip through ``tolist()`` so workers see plain Python ints (the
    hash and interning layers key on exact types).
    """
    if isinstance(payload, tuple):
        start, stop = payload
        us, vs = _WORKER_PAYLOAD["edges"][1:]  # type: ignore[index]
        us = us[start:stop]
        vs = vs[start:stop]
        if isinstance(us, np.ndarray):
            us = us.tolist()
            vs = vs.tolist()
        return list(zip(us, vs))
    return payload


def _resolve_stored(ref) -> Sequence[StoredEdgeRecord]:
    """Resolve a boundary-snapshot reference: an explicit record list, or a
    (group, chunk) key into the pool-shared snapshot table."""
    if isinstance(ref, tuple) and ref and ref[0] == "shared":
        return _WORKER_PAYLOAD["snapshots"][ref[1:]]  # type: ignore[index]
    return ref


def _storing_worker(
    payload,
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    task_key: Optional[Tuple[int, int]] = None,
) -> List[StoredEdgeRecord]:
    """Storing pass over one chunk for one group.

    Returns the chunk's distinct stored edges (canonical orientation) with
    their processor slots, in arrival order.  The whole chunk is hashed
    vectorially; cross-chunk deduplication happens in the driver when
    boundary snapshots are assembled.
    """
    if task_key is not None:
        maybe_fail("storing-worker", group=task_key[0], chunk=task_key[1])
    hash_function = make_hash_function(hash_kind, buckets=m, seed=hash_seed)
    interner = NodeInterner()
    cu, cv, firsts, _ = interner.encode_pairs(_resolve_edges(payload), set())
    if not cu:
        return []
    slots = hash_function.bucket_from_keys(interner.edge_key_array(cu, cv)).tolist()
    nodes = interner.nodes
    stored: List[StoredEdgeRecord] = []
    for iu, iv, slot, first in zip(cu, cv, slots, firsts):
        if first and slot < group_size:
            # encode_pairs emits canonical orientation, so (nodes[iu],
            # nodes[iv]) is exactly canonical_edge(u, v).
            stored.append((slot, nodes[iu], nodes[iv]))
    return stored


def _chunk_counting_worker(
    payload,
    snapshot_ref,
    hash_kind: str,
    hash_seed: int,
    group_size: int,
    m: int,
    track_local: bool,
    track_eta: bool,
    kernel: str = "python",
    task_key: Optional[Tuple[int, int]] = None,
) -> GroupSnapshot:
    """Counting pass over one chunk for one group, seeded with the boundary
    adjacency, returning the chunk's counter deltas as a group snapshot."""
    if task_key is not None:
        maybe_fail("counting-worker", group=task_key[0], chunk=task_key[1])
    group = _make_group(
        hash_kind, hash_seed, group_size, m, track_local, track_eta, kernel
    )
    group.seed_adjacency(_resolve_stored(snapshot_ref))
    ingest_edge_batches(
        group, _resolve_edges(payload), batch_edges=_WORKER_BATCH_EDGES
    )
    return group.snapshot()


def auto_chunk_size(n_edges: int, workers: int, num_groups: int) -> int:
    """Pick a chunk size from stream length and worker count.

    Aims for roughly ``_TASKS_PER_WORKER`` tasks per worker per phase
    (tasks = groups × chunks) so stragglers even out, while never producing
    chunks smaller than :data:`MIN_CHUNK_EDGES`, below which task overhead
    dominates the counting work.
    """
    if n_edges <= 0:
        return 1
    target_tasks = max(1, _TASKS_PER_WORKER * max(1, workers))
    num_chunks = max(1, target_tasks // max(1, num_groups))
    size = -(-n_edges // num_chunks)  # ceil division
    return max(1, min(n_edges, max(MIN_CHUNK_EDGES, size)))


def _chunk_spans(n_edges: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_edges)`` into consecutive ``(start, stop)`` spans."""
    if n_edges <= 0:
        return [(0, 0)]
    return [
        (start, min(start + chunk_size, n_edges))
        for start in range(0, n_edges, chunk_size)
    ]


def _prefix_snapshots(
    stored_per_chunk: Sequence[Sequence[StoredEdgeRecord]],
    initial: Optional[Sequence[StoredEdgeRecord]] = None,
) -> List[List[StoredEdgeRecord]]:
    """Turn per-chunk stored-edge lists into per-chunk *boundary* snapshots.

    Snapshot ``k`` holds the distinct stored edges of chunks ``0..k-1``
    (first arrival wins — the slot is hash-determined, so duplicates across
    chunks agree on it and are simply dropped).  ``initial`` seeds the
    prefix with edges stored *before* this stream segment (the
    checkpointed-state case of :func:`advance_state_chunked`): they join
    every boundary snapshot and suppress re-storing of re-arrivals.
    """
    snapshots: List[List[StoredEdgeRecord]] = []
    seen: set = set()
    prefix: List[StoredEdgeRecord] = []
    if initial:
        for slot, u, v in initial:
            seen.add((u, v))
            prefix.append((slot, u, v))
    for stored in stored_per_chunk:
        snapshots.append(list(prefix))
        for slot, u, v in stored:
            if (u, v) in seen:
                continue
            seen.add((u, v))
            prefix.append((slot, u, v))
    return snapshots


# -- worker supervision ------------------------------------------------------


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the pooled drivers respond to failing, dying, or hung workers.

    Attributes
    ----------
    retry:
        Per-chunk-task retry budget and backoff (jitter is deterministic;
        each task derives its own jitter seed from its (group, chunk) key).
    worker_timeout:
        Seconds the driver waits for *any* pooled task to complete before
        declaring the pool hung and restarting it.  ``None`` disables hang
        detection (a hung worker then blocks forever, as before).
    max_pool_restarts:
        How many times a broken or hung pool is rebuilt before the phase
        degrades (pool death cannot be attributed to one task, so it is
        budgeted per phase, not per task).
    allow_inline_fallback:
        When a task exhausts its retries or the pool-restart budget runs
        out, execute the remaining tasks on the driver's own inline path
        (graceful degradation — slower, but the run completes with
        bit-identical results).  ``False`` raises
        :class:`~repro.exceptions.WorkerFailedError` instead.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    worker_timeout: Optional[float] = None
    max_pool_restarts: int = 2
    allow_inline_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_pool_restarts < 0:
            raise ConfigurationError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ConfigurationError(
                f"worker_timeout must be positive, got {self.worker_timeout}"
            )


#: Supervision applied when callers pass none: modest retries, restartable
#: pools, inline fallback on persistent failure, no hang detection.
DEFAULT_SUPERVISION = SupervisionPolicy()

#: Fresh per-run supervision counters (merged into estimate metadata).
def _new_supervision_stats() -> Dict[str, float]:
    return {"worker_retries": 0.0, "pool_restarts": 0.0, "degraded": 0.0}


def _task_jitter_seed(base: int, key: Tuple[int, int]) -> int:
    """Decorrelate per-task retry jitter without losing determinism."""
    return (base * 1000003 + key[0] * 8191 + key[1]) & 0x7FFFFFFF


def task_retry_delays(
    policy: SupervisionPolicy, key: Tuple[int, int]
) -> List[float]:
    """The complete backoff schedule of one (group, chunk) task key.

    A pure function of (policy, key) — deliberately independent of pool
    lifetime, so a task retried after a pool rebuild sleeps exactly the
    delay it would have slept had the pool survived.  Tests pin both the
    same-pool and the post-rebuild retry path against this schedule.
    """
    return policy.retry.reseeded(
        _task_jitter_seed(policy.retry.seed, key)
    ).delays()


def _supervised_phase(
    make_pool: Callable[[], ProcessPoolExecutor],
    tasks: Dict[Tuple[int, int], Tuple[Callable, Tuple]],
    inline_tasks: Dict[Tuple[int, int], Callable[[], object]],
    policy: SupervisionPolicy,
    stats: Dict[str, float],
) -> Dict[Tuple[int, int], object]:
    """Run one phase's tasks on supervised process pools.

    ``tasks`` maps each (group, chunk) key to its pooled ``(fn, args)``;
    ``inline_tasks`` maps the same keys to zero-argument thunks with
    explicitly resolved arguments (the parent never reads
    ``_WORKER_PAYLOAD``, so degraded execution cannot depend on pool
    staging).  Failure handling:

    * a task raising an ordinary exception consumes one retry attempt and
      is resubmitted after its backoff delay; exhausting the budget runs it
      inline (or raises :class:`WorkerFailedError` without fallback);
    * a broken pool (worker death) or a hang (no completion within
      ``worker_timeout``) rebuilds the pool and resubmits every unfinished
      task, budgeted by ``max_pool_restarts``; exhausting that budget
      degrades the whole remainder to inline execution (or raises).

    Results are keyed like ``tasks``; completion order never affects them.
    """
    results: Dict[Tuple[int, int], object] = {}
    pending = set(tasks)
    attempts = {key: 0 for key in tasks}
    # Computed once per phase, never per pool: a rebuild resubmits pending
    # tasks but their attempt counters and backoff schedules carry over,
    # so retry timing is a function of the task key alone.
    delays = {key: task_retry_delays(policy, key) for key in tasks}

    def run_inline(key: Tuple[int, int], cause: Optional[BaseException]) -> None:
        if not policy.allow_inline_fallback:
            raise WorkerFailedError(
                f"chunk task {key} failed {attempts[key]} time(s) and inline "
                "fallback is disabled"
            ) from cause
        stats["degraded"] = 1.0
        results[key] = inline_tasks[key]()
        pending.discard(key)

    pool_restarts = 0
    while pending:
        if pool_restarts > policy.max_pool_restarts:
            if not policy.allow_inline_fallback:
                raise WorkerFailedError(
                    f"worker pool died {pool_restarts} time(s); "
                    f"{len(pending)} task(s) unfinished and inline fallback "
                    "is disabled"
                )
            stats["degraded"] = 1.0
            for key in sorted(pending):
                results[key] = inline_tasks[key]()
            pending.clear()
            break

        pool = make_pool()
        pool_failed = False
        try:
            futures = {}
            for key in sorted(pending):
                fn, args = tasks[key]
                futures[pool.submit(fn, *args)] = key
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done, timeout=policy.worker_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing completed within the timeout: the pool is
                    # hung.  Abandon it (shutdown below does not wait).
                    pool_failed = True
                    break
                for future in done:
                    key = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # Worker death poisons every in-flight future; the
                        # culprit task is unknowable, so this is budgeted
                        # as a pool restart, not per-task attempts.
                        pool_failed = True
                        continue
                    except Exception as exc:
                        attempts[key] += 1
                        used = attempts[key] - 1
                        if used < len(delays[key]):
                            stats["worker_retries"] += 1.0
                            time.sleep(delays[key][used])
                            try:
                                fn, args = tasks[key]
                                retry_future = pool.submit(fn, *args)
                            except BaseException:
                                pool_failed = True
                                continue
                            futures[retry_future] = key
                            not_done.add(retry_future)
                        else:
                            run_inline(key, exc)
                        continue
                    results[key] = result
                    pending.discard(key)
                if pool_failed:
                    break
        finally:
            pool.shutdown(wait=not pool_failed, cancel_futures=True)
        if pool_failed and pending:
            pool_restarts += 1
            stats["pool_restarts"] += 1.0
    return results


def _run_chunked(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    use_processes: bool,
    max_workers: Optional[int],
    chunk_size: Optional[int],
    supervision: Optional[SupervisionPolicy] = None,
) -> Tuple[List[GroupSummary], Dict[str, float]]:
    """Execute the shard-then-merge schedule; returns (summaries, chunk info)."""
    items = _work_items(config)
    track_local = config.track_local
    track_eta = bool(config.track_eta)
    n = len(edge_list)
    workers = max_workers or os.cpu_count() or 1
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    size = chunk_size or auto_chunk_size(n, workers, len(items))
    spans = _chunk_spans(n, size)
    stats = _new_supervision_stats()
    info = {
        "num_chunks": float(len(spans)),
        "chunk_edges_max": float(max(stop - start for start, stop in spans)),
        **stats,
    }

    if len(spans) == 1 or not edge_list:
        # A single chunk degenerates to the in-process schedule: one shared
        # state set advances every group (one encode serves all groups) and
        # the storing pass is skipped entirely.
        state = GroupStateSet(config)
        state.ingest_stream(edge_list, batch_edges=_WORKER_BATCH_EDGES)
        return state.summaries(), info

    if use_processes:
        chunk_states = _chunked_phases_pooled(
            edge_list, config, items, spans, workers, track_local, track_eta,
            supervision=supervision, stats=stats,
        )
        info.update(stats)
    else:
        chunk_states = _chunked_phases_inline(
            edge_list, config, items, spans, track_local, track_eta
        )

    # Fold the chunk states left-to-right into one fresh state set (the η
    # cross-chunk correction is applied inside each group merge).
    merged = GroupStateSet(config)
    for chunk_index in range(len(spans)):
        merged.merge_snapshots(
            [
                chunk_states[(group_index, chunk_index)]
                for group_index in range(len(items))
            ]
        )
    return merged.summaries(), info


def _chunked_phases_inline(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    items: Sequence[Tuple[int, int, bool]],
    spans: Sequence[Tuple[int, int]],
    track_local: bool,
    track_eta: bool,
    initial_stored: Optional[List[List[StoredEdgeRecord]]] = None,
) -> Dict[Tuple[int, int], GroupSnapshot]:
    """Run both chunked phases inline (the ``chunked-serial`` backend).

    ``initial_stored`` (one record list per group) seeds the boundary
    snapshots with edges stored before this stream segment — the
    checkpointed-state continuation of :func:`advance_state_chunked`.
    """
    chunk_states: Dict[Tuple[int, int], GroupSnapshot] = {}
    stored_all: Dict[int, List[List[StoredEdgeRecord]]] = {}
    for group_index, (seed, group_size, _complete) in enumerate(items):
        stored_all[group_index] = [
            _storing_worker(
                edge_list[start:stop], config.hash_kind, seed, group_size,
                config.m, (group_index, chunk_index),
            )
            for chunk_index, (start, stop) in enumerate(spans)
        ]
    for group_index, (seed, group_size, _complete) in enumerate(items):
        snapshots = _prefix_snapshots(
            stored_all[group_index],
            initial=initial_stored[group_index] if initial_stored else None,
        )
        for chunk_index, (start, stop) in enumerate(spans):
            chunk_states[(group_index, chunk_index)] = _chunk_counting_worker(
                edge_list[start:stop],
                snapshots[chunk_index],
                config.hash_kind,
                seed,
                group_size,
                config.m,
                track_local,
                track_eta,
                config.kernel,
                (group_index, chunk_index),
            )
    return chunk_states


def _chunked_phases_pooled(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    items: Sequence[Tuple[int, int, bool]],
    spans: Sequence[Tuple[int, int]],
    workers: int,
    track_local: bool,
    track_eta: bool,
    initial_stored: Optional[List[List[StoredEdgeRecord]]] = None,
    supervision: Optional[SupervisionPolicy] = None,
    stats: Optional[Dict[str, float]] = None,
) -> Dict[Tuple[int, int], GroupSnapshot]:
    """Run both chunked phases on supervised process pools (the
    ``chunked-process`` backend).  Each pool receives its payload through
    its initializer — inherited copy-on-write under fork, pickled once per
    worker under spawn — and tasks carry only spans and snapshot keys.
    Pools are rebuilt by the supervisor on worker death or hang, so the
    initializer also re-runs; the inline fallback thunks resolve explicit
    edge slices instead (the parent never writes ``_WORKER_PAYLOAD``)."""
    policy = supervision if supervision is not None else DEFAULT_SUPERVISION
    stats = stats if stats is not None else _new_supervision_stats()
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    mp_context = multiprocessing.get_context("fork") if use_fork else None
    num_tasks = len(items) * len(spans)
    pool_size = max(1, min(workers, num_tasks))
    staged = _stage_columns(edge_list)

    def make_pool(initargs):
        def factory() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=pool_size,
                mp_context=mp_context,
                initializer=_pool_initializer,
                initargs=initargs,
            )
        return factory

    # Phase 1: storing pass.
    storing_tasks = {}
    storing_inline = {}
    for group_index, (seed, group_size, _c) in enumerate(items):
        for chunk_index, span in enumerate(spans):
            key = (group_index, chunk_index)
            storing_tasks[key] = (
                _storing_worker,
                (span, config.hash_kind, seed, group_size, config.m, key),
            )
            storing_inline[key] = (
                lambda s=span, sd=seed, gs=group_size, k=key: _storing_worker(
                    edge_list[s[0] : s[1]], config.hash_kind, sd, gs, config.m, k
                )
            )
    storing_results = _supervised_phase(
        make_pool((staged, None)), storing_tasks, storing_inline, policy, stats
    )
    stored_all = {
        group_index: [
            storing_results[(group_index, chunk_index)]
            for chunk_index in range(len(spans))
        ]
        for group_index in range(len(items))
    }

    snapshot_table = {
        (group_index, chunk_index): snapshot
        for group_index in range(len(items))
        for chunk_index, snapshot in enumerate(
            _prefix_snapshots(
                stored_all[group_index],
                initial=initial_stored[group_index] if initial_stored else None,
            )
        )
    }

    # Phase 2: counting pass, on a fresh pool whose initializer also carries
    # the boundary snapshots.
    counting_tasks = {}
    counting_inline = {}
    for group_index, (seed, group_size, _c) in enumerate(items):
        for chunk_index, span in enumerate(spans):
            key = (group_index, chunk_index)
            counting_tasks[key] = (
                _chunk_counting_worker,
                (
                    span,
                    ("shared", group_index, chunk_index),
                    config.hash_kind,
                    seed,
                    group_size,
                    config.m,
                    track_local,
                    track_eta,
                    config.kernel,
                    key,
                ),
            )
            counting_inline[key] = (
                lambda s=span, sd=seed, gs=group_size, k=key: _chunk_counting_worker(
                    edge_list[s[0] : s[1]],
                    snapshot_table[k],
                    config.hash_kind,
                    sd,
                    gs,
                    config.m,
                    track_local,
                    track_eta,
                    config.kernel,
                    k,
                )
            )
    return _supervised_phase(
        make_pool((staged, snapshot_table)),
        counting_tasks,
        counting_inline,
        policy,
        stats,
    )


def advance_state_chunked(
    state: GroupStateSet,
    edges: Iterable[EdgeTuple],
    use_processes: bool = False,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    supervision: Optional[SupervisionPolicy] = None,
) -> Dict[str, float]:
    """Advance a live :class:`GroupStateSet` over one stream segment via the
    shard-then-merge schedule — bit-identical to ingesting the segment
    serially on the same state.

    This is the segmented driver the durability runner builds on: each
    group's boundary snapshots are seeded with the state's *current* stored
    edges (:meth:`ProcessorGroup.stored_edges`), so every counting task
    sees the true cross-segment adjacency, and the per-chunk snapshots are
    folded into ``state`` with the exact η correction.  First-occurrence
    semantics follow the chunked contract (derived from stored adjacency —
    exact, see :meth:`ProcessorGroup.process_edges`), so ``state.seen`` is
    not consulted and not updated; mixing segmented advancement with direct
    ``state.process_edges`` calls on the same state is not supported.

    Returns the chunk/supervision info dict (same keys as the
    ``chunked-*`` backends' estimate metadata).
    """
    config = state.config
    items = _work_items(config)
    edge_list: List[EdgeTuple] = list(edges)
    n = len(edge_list)
    stats = _new_supervision_stats()
    if n == 0:
        return {"num_chunks": 0.0, "chunk_edges_max": 0.0, **stats}
    workers = max_workers or os.cpu_count() or 1
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    size = chunk_size or auto_chunk_size(n, workers, len(items))
    spans = _chunk_spans(n, size)
    initial_stored = [group.stored_edges() for group in state.groups]

    if use_processes and len(spans) > 1:
        chunk_states = _chunked_phases_pooled(
            edge_list, config, items, spans, workers,
            config.track_local, bool(config.track_eta),
            initial_stored=initial_stored, supervision=supervision, stats=stats,
        )
    else:
        chunk_states = _chunked_phases_inline(
            edge_list, config, items, spans,
            config.track_local, bool(config.track_eta),
            initial_stored=initial_stored,
        )

    for chunk_index in range(len(spans)):
        state.merge_snapshots(
            [
                chunk_states[(group_index, chunk_index)]
                for group_index in range(len(items))
            ]
        )
    return {
        "num_chunks": float(len(spans)),
        "chunk_edges_max": float(max(stop - start for start, stop in spans)),
        **stats,
    }


# -- public driver -----------------------------------------------------------


def _run_elastic(
    edge_list: List[EdgeTuple],
    config: ReptConfig,
    max_workers: Optional[int],
    chunk_size: Optional[int],
    supervision: Optional[SupervisionPolicy],
) -> TriangleEstimate:
    """Drive the stream through the elastic shard coordinator.

    Shards (one per processor group) live on long-running worker processes
    and survive worker death/hang via snapshot restore + WAL replay (see
    :mod:`repro.cluster.coordinator`); the supervision policy supplies the
    retry/backoff and hang-detection budgets.  ``allow_inline_fallback``
    governs the end state: when every worker died and shards finished the
    stream hosted inline, ``False`` turns that degraded-but-correct result
    into :class:`~repro.exceptions.WorkerFailedError`.
    """
    # Local import: repro.cluster builds on core + durability; importing it
    # lazily keeps the core layer import-light and cycle-proof.
    from repro.cluster import ElasticCoordinator

    policy = supervision if supervision is not None else DEFAULT_SUPERVISION
    num_groups = len(config.group_sizes())
    workers = max_workers or min(num_groups, os.cpu_count() or 1)
    size = chunk_size or auto_chunk_size(len(edge_list), workers, num_groups)
    timeout = policy.worker_timeout if policy.worker_timeout is not None else 30.0
    with ElasticCoordinator(
        config,
        num_workers=workers,
        worker_timeout=timeout,
        retry=policy.retry,
    ) as coordinator:
        for start in range(0, len(edge_list), size):
            coordinator.submit(edge_list[start : start + size])
        estimate = coordinator.estimate()
    if estimate.metadata.get("degraded") and not policy.allow_inline_fallback:
        raise WorkerFailedError(
            "elastic pool died entirely and inline fallback is disabled "
            f"(worker_deaths={estimate.metadata.get('worker_deaths')})"
        )
    estimate.metadata["chunk_size"] = float(size)
    return estimate


def run_rept(
    edges: Iterable[EdgeTuple],
    config: ReptConfig,
    backend: ParallelBackend = "serial",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    supervision: Optional[SupervisionPolicy] = None,
) -> TriangleEstimate:
    """Run REPT over ``edges`` with the chosen execution backend.

    Parameters
    ----------
    edges:
        The stream (any iterable of ``(u, v)`` pairs).  It is materialised
        into a list so that every group sees the same sequence; pass a list
        to avoid the copy.
    config:
        REPT parameters.
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, ``"chunked-serial"``,
        ``"chunked-process"`` or ``"chunked-elastic"`` (long-running shard
        workers with failure-aware live migration — see
        :mod:`repro.cluster`).
    max_workers:
        Worker cap for the pooled backends (default: number of groups for
        the per-group backends, CPU count for the chunked backends).
    chunk_size:
        Edges per chunk for the chunked backends (default: auto-tuned from
        stream length and worker count, see :func:`auto_chunk_size`).
        Ignored by the per-group backends.
    supervision:
        Worker-failure policy for ``"chunked-process"`` (default:
        :data:`DEFAULT_SUPERVISION` — retries with deterministic backoff,
        pool restarts on worker death, inline fallback when both budgets
        run out).  Supervision outcomes surface in the estimate metadata
        (``worker_retries``, ``pool_restarts``, ``degraded``); recovery
        paths reuse inline execution, so supervised results stay
        bit-identical.  Ignored by the other backends.

    Returns
    -------
    TriangleEstimate
        Identical (bit-for-bit) across backends for the same config.
    """
    if backend not in _BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    edge_list: List[EdgeTuple] = list(edges)
    items = _work_items(config)
    track_local = config.track_local
    track_eta = bool(config.track_eta)
    chunk_info: Dict[str, float] = {}

    if backend == "chunked-elastic":
        return _run_elastic(edge_list, config, max_workers, chunk_size, supervision)

    if backend in ("chunked-serial", "chunked-process"):
        summaries, chunk_info = _run_chunked(
            edge_list, config, backend == "chunked-process", max_workers,
            chunk_size, supervision=supervision,
        )
    elif backend == "serial" or len(items) == 1:
        # The in-process reference: one shared state set advances every
        # group, so canonicalisation/interning run once per batch for all
        # of them (bit-identical to the per-group schedule).
        state = GroupStateSet(config)
        state.ingest_stream(edge_list, batch_edges=_WORKER_BATCH_EDGES)
        summaries = state.summaries()
    else:
        executor_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        workers = max_workers or len(items)
        with executor_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _group_worker,
                    edge_list,
                    config.hash_kind,
                    seed,
                    size,
                    config.m,
                    complete,
                    track_local,
                    track_eta,
                    config.kernel,
                )
                for seed, size, complete in items
            ]
            summaries = [future.result() for future in futures]

    estimate = combine_group_estimates(
        summaries,
        m=config.m,
        c=config.c,
        edges_processed=len(edge_list),
        track_local=track_local,
        eta_tracked=track_eta,
    )
    estimate.metadata.update(chunk_info)
    # Resolved in the driver; pool workers re-resolve per process, which is
    # safe because every kernel is bit-identical (the label is descriptive).
    from repro.core.kernel import resolve_kernel

    estimate.metadata["kernel"] = resolve_kernel(
        config.kernel, max(config.group_sizes())
    )
    return estimate


class DriverBackedRept(StreamingTriangleEstimator):
    """REPT behind the streaming-estimator interface, executed by a driver.

    The one-pass estimators advance counters on every
    :meth:`process_edge`; this adapter instead buffers the stream and runs
    the configured :func:`run_rept` backend when an estimate is requested,
    so the experiment harness can sweep execution backends through the same
    :class:`~repro.experiments.spec.MethodSpec` machinery.  Estimates are
    bit-identical to :class:`~repro.core.rept.ReptEstimator` with the same
    config.
    """

    name = "rept"

    def __init__(
        self,
        config: ReptConfig,
        backend: ParallelBackend = "chunked-serial",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        supervision: Optional[SupervisionPolicy] = None,
    ) -> None:
        super().__init__()
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.config = config
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.supervision = supervision
        self._buffer: List[EdgeTuple] = []

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        self._count_edge()
        self._buffer.append((u, v))

    def process_edges(self, edges: Iterable[EdgeTuple]) -> None:
        """Bulk-append a batch to the buffered stream (no per-edge cost)."""
        before = len(self._buffer)
        self._buffer.extend(edges)
        self.edges_processed += len(self._buffer) - before

    def estimate(self) -> TriangleEstimate:
        estimate = run_rept(
            self._buffer,
            self.config,
            backend=self.backend,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            supervision=self.supervision,
        )
        estimate.metadata["algorithm"] = 2.0 if self.config.uses_groups else 1.0
        return estimate

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return f"{self.config.describe()} via backend={self.backend}"
