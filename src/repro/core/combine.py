"""Assembling REPT's final estimate from per-group counters.

This module is deliberately separated from the streaming state so that the
parallel drivers (thread pool, process pool) can ship back plain
:class:`GroupSummary` objects from workers and combine them here with the
exact same arithmetic as the single-threaded estimator — the estimate is a
pure function of the counters.

Three cases (paper Section III):

* ``c ≤ m`` (Algorithm 1): ``τ̂ = (m²/c) Σ_i τ(i)``.
* ``c > m, c mod m = 0``: ``τ̂ = (m/c₁) Σ_i τ(i)`` over the complete groups.
* ``c > m, c mod m ≠ 0``: two unbiased estimates — ``τ̂⁽¹⁾`` from the
  complete groups and ``τ̂⁽²⁾`` from the partial group — are combined with
  Graybill–Deal inverse-variance weights, where the unknown ``τ`` and ``η``
  in the variance formulas are replaced by the plug-in estimates ``τ̂⁽¹⁾``
  and ``η̂ = (m³/c) Σ_i η(i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import TriangleEstimate
from repro.types import NodeId


@dataclass
class GroupSummary:
    """The counters of one processor group, detached from streaming state.

    Attributes
    ----------
    group_size:
        Number of processors in the group.
    is_complete:
        ``True`` when the group has exactly ``m`` processors (a "complete"
        group in Algorithm 2's terminology).
    tau_sum:
        ``Σ_i τ(i)`` over the group's processors.
    eta_sum:
        ``Σ_i η(i)`` over the group's processors.
    local_tau:
        ``Σ_i τ_v(i)`` per node.
    local_eta:
        ``Σ_i η_v(i)`` per node.
    edges_stored:
        Total stored edges (memory accounting).
    """

    group_size: int
    is_complete: bool
    tau_sum: float
    eta_sum: float = 0.0
    local_tau: Dict[NodeId, float] = field(default_factory=dict)
    local_eta: Dict[NodeId, float] = field(default_factory=dict)
    edges_stored: int = 0


def graybill_deal(
    estimate_1: float, variance_1: float, estimate_2: float, variance_2: float
) -> Tuple[float, float]:
    """Combine two independent unbiased estimates by inverse-variance weighting.

    Returns the combined estimate and its variance:
    ``τ̂ = (V₂ τ̂₁ + V₁ τ̂₂) / (V₁ + V₂)`` and ``V = V₁V₂ / (V₁ + V₂)``.

    Degenerate cases: if both variances are non-positive the plain average
    is returned with variance 0; if exactly one is non-positive that
    estimate is returned unchanged (it is "certain" under the plug-in
    variance model).
    """
    v1 = max(0.0, variance_1)
    v2 = max(0.0, variance_2)
    if v1 <= 0 and v2 <= 0:
        return (estimate_1 + estimate_2) / 2.0, 0.0
    if v1 <= 0:
        return estimate_1, 0.0
    if v2 <= 0:
        return estimate_2, 0.0
    combined = (v2 * estimate_1 + v1 * estimate_2) / (v1 + v2)
    variance = (v1 * v2) / (v1 + v2)
    return combined, variance


def _combine_scalar(
    m: int,
    c: int,
    complete_tau_sum: float,
    partial_tau_sum: float,
    partial_size: int,
    num_complete: int,
    eta_hat: float,
) -> Tuple[float, Dict[str, float]]:
    """Combine global-count contributions; returns (τ̂, diagnostics)."""
    diagnostics: Dict[str, float] = {}
    if num_complete == 0:
        # Algorithm 1: a single (possibly partial) group of c processors.
        tau_hat = (m * m / c) * partial_tau_sum
        return tau_hat, diagnostics

    c1 = num_complete
    tau_hat_1 = (m / c1) * complete_tau_sum
    diagnostics["tau_hat_complete"] = tau_hat_1
    if partial_size == 0:
        return tau_hat_1, diagnostics

    c2 = partial_size
    tau_hat_2 = (m * m / c2) * partial_tau_sum
    diagnostics["tau_hat_partial"] = tau_hat_2
    diagnostics["eta_hat"] = eta_hat
    variance_1 = tau_hat_1 * (m - 1) / c1
    variance_2 = (tau_hat_1 * (m * m - c2) + 2.0 * eta_hat * (m - c2)) / c2
    combined, combined_variance = graybill_deal(tau_hat_1, variance_1, tau_hat_2, variance_2)
    diagnostics["plugin_variance_complete"] = variance_1
    diagnostics["plugin_variance_partial"] = variance_2
    diagnostics["plugin_variance_combined"] = combined_variance
    return combined, diagnostics


def combine_group_estimates(
    summaries: Sequence[GroupSummary],
    m: int,
    c: int,
    edges_processed: int = 0,
    track_local: bool = True,
    eta_tracked: Optional[bool] = None,
) -> TriangleEstimate:
    """Turn per-group counter summaries into the final REPT estimate.

    Parameters
    ----------
    summaries:
        One :class:`GroupSummary` per processor group (any order).
    m, c:
        REPT parameters (hash range and total processor count).
    edges_processed:
        Stream length, recorded on the returned estimate.
    track_local:
        Whether to assemble per-node estimates.
    eta_tracked:
        Whether the η counters were actually maintained during the run.
        Recorded in ``metadata["eta_tracked"]`` so consumers can tell a true
        ``η̂ = 0`` apart from "η was never counted" (the latter would corrupt
        the Graybill–Deal plug-in variances if it occurred in the
        partial-group regime; :class:`~repro.core.config.ReptConfig` now
        force-resolves ``track_eta=True`` there).  ``None`` leaves the
        metadata key unset (caller did not know).
    """
    complete = [s for s in summaries if s.is_complete]
    partial = [s for s in summaries if not s.is_complete]
    if len(partial) > 1:
        raise ValueError("at most one partial group is expected")
    partial_summary: Optional[GroupSummary] = partial[0] if partial else None

    num_complete = len(complete)
    complete_tau_sum = sum(s.tau_sum for s in complete)
    partial_tau_sum = partial_summary.tau_sum if partial_summary else 0.0
    partial_size = partial_summary.group_size if partial_summary else 0
    total_eta = sum(s.eta_sum for s in summaries)
    eta_hat = (m**3 / c) * total_eta

    global_count, diagnostics = _combine_scalar(
        m,
        c,
        complete_tau_sum,
        partial_tau_sum,
        partial_size,
        num_complete,
        eta_hat,
    )

    local_counts: Dict[NodeId, float] = {}
    if track_local:
        local_counts = _combine_local(
            complete, partial_summary, m, c, num_complete, partial_size
        )

    metadata = {"m": float(m), "c": float(c)}
    if eta_tracked is not None:
        metadata["eta_tracked"] = 1.0 if eta_tracked else 0.0
    metadata.update(diagnostics)
    return TriangleEstimate(
        global_count=global_count,
        local_counts=local_counts,
        edges_processed=edges_processed,
        edges_stored=sum(s.edges_stored for s in summaries),
        metadata=metadata,
    )


def _combine_local(
    complete: List[GroupSummary],
    partial_summary: Optional[GroupSummary],
    m: int,
    c: int,
    num_complete: int,
    partial_size: int,
) -> Dict[NodeId, float]:
    """Per-node version of the combination rules."""
    local: Dict[NodeId, float] = {}

    if num_complete == 0:
        # Algorithm 1.
        assert partial_summary is not None
        scale = m * m / c
        for node, value in partial_summary.local_tau.items():
            local[node] = scale * value
        return local

    c1 = num_complete
    complete_sums: Dict[NodeId, float] = {}
    for summary in complete:
        for node, value in summary.local_tau.items():
            complete_sums[node] = complete_sums.get(node, 0.0) + value

    if partial_size == 0 or partial_summary is None:
        scale = m / c1
        return {node: scale * value for node, value in complete_sums.items()}

    c2 = partial_size
    partial_sums = dict(partial_summary.local_tau)

    eta_local_total: Dict[NodeId, float] = {}
    for summary in list(complete) + [partial_summary]:
        for node, value in summary.local_eta.items():
            eta_local_total[node] = eta_local_total.get(node, 0.0) + value

    nodes = set(complete_sums) | set(partial_sums)
    for node in nodes:
        tau_1_v = (m / c1) * complete_sums.get(node, 0.0)
        tau_2_v = (m * m / c2) * partial_sums.get(node, 0.0)
        eta_hat_v = (m**3 / c) * eta_local_total.get(node, 0.0)
        variance_1 = tau_1_v * (m - 1) / c1
        variance_2 = (tau_1_v * (m * m - c2) + 2.0 * eta_hat_v * (m - c2)) / c2
        combined, _ = graybill_deal(tau_1_v, variance_1, tau_2_v, variance_2)
        local[node] = combined
    return local
