"""Per-processor state of REPT's Algorithms 1 and 2.

A *processor* in the paper is an abstract worker: it owns a sampled edge
set ``E(i)`` and a handful of counters.  :class:`ProcessorCounters` is that
state; :class:`ProcessorGroup` owns the ``m`` (or fewer) processors that
share one hash function and advances them edge by edge, implementing the
``UpdateTriangleCNT`` / ``UpdateTrianglePairCNT`` procedures of the paper's
pseudocode.

Performance note
----------------
A literal transcription would, for every arriving edge, visit every
processor and intersect its neighbor sets — O(c) dictionary probes per edge
even though most processors store neither endpoint.  Because an update can
only occur on a processor where *both* endpoints already have at least one
stored edge, each group maintains a per-node index of the slots holding the
node; per edge we only visit the slots in the intersection of the two
endpoints' index sets.  This is an exact optimisation (identical counters),
not an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.hashing.base import EdgeHashFunction
from repro.types import EdgeTuple, NodeId, canonical_edge


@dataclass
class ProcessorCounters:
    """Counters and sampled edge set of one processor ``i``.

    Attributes mirror the paper's notation:

    * ``adjacency`` — the graph formed by the stored edge set ``E(i)``;
    * ``tau`` — ``τ(i)``, the number of semi-triangles observed;
    * ``tau_local`` — ``τ_v(i)`` per node;
    * ``edge_triangles`` — ``τ_(u,v)(i)``: for each stored edge, the number
      of semi-triangles in ``Δ(i)`` containing that edge (used to maintain
      the η counters);
    * ``eta`` / ``eta_local`` — ``η(i)`` and ``η_v(i)``.
    """

    adjacency: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    tau: int = 0
    tau_local: Dict[NodeId, int] = field(default_factory=dict)
    edge_triangles: Dict[EdgeTuple, int] = field(default_factory=dict)
    eta: int = 0
    eta_local: Dict[NodeId, int] = field(default_factory=dict)
    edges_stored: int = 0

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Return the stored neighbor set of ``node`` (empty if absent)."""
        return self.adjacency.get(node, _EMPTY)

    def store_edge(self, u: NodeId, v: NodeId, closing_triangles: int) -> None:
        """Insert edge ``(u, v)`` into ``E(i)``.

        ``closing_triangles`` is ``|N_u,v(i)|`` at insertion time, which
        initialises the per-edge triangle counter ``τ_(u,v)(i)``.
        """
        self.adjacency.setdefault(u, set()).add(v)
        self.adjacency.setdefault(v, set()).add(u)
        self.edge_triangles[canonical_edge(u, v)] = closing_triangles
        self.edges_stored += 1


_EMPTY: Set[NodeId] = frozenset()  # type: ignore[assignment]


class ProcessorGroup:
    """A group of processors sharing one edge-partition hash function.

    Parameters
    ----------
    hash_function:
        Maps each edge to a bucket in ``{0, ..., m-1}``.
    group_size:
        Number of processors (slots) actually present in this group; slots
        ``group_size .. m-1`` exist only virtually (edges hashed there are
        discarded), which is exactly the ``c ≤ m`` situation of Algorithm 1
        and the partial group of Algorithm 2.
    m:
        The hash range (inverse sampling probability).
    track_local:
        Maintain the per-node counters ``τ_v(i)``.
    track_eta:
        Maintain the pair counters ``η(i)`` / ``η_v(i)`` and the per-edge
        triangle counters they require.
    """

    def __init__(
        self,
        hash_function: EdgeHashFunction,
        group_size: int,
        m: int,
        track_local: bool = True,
        track_eta: bool = False,
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if group_size > m:
            raise ValueError("group_size cannot exceed the hash range m")
        if hash_function.buckets != m:
            raise ValueError(
                f"hash function has {hash_function.buckets} buckets, expected m={m}"
            )
        self.hash_function = hash_function
        self.group_size = group_size
        self.m = m
        self.track_local = track_local
        self.track_eta = track_eta
        self.processors: List[ProcessorCounters] = [
            ProcessorCounters() for _ in range(group_size)
        ]
        # node -> set of slots where the node has at least one stored edge.
        self._node_slots: Dict[NodeId, Set[int]] = {}

    # -- per-edge update ----------------------------------------------------

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        """Advance every processor of the group with the arriving edge."""
        slots_u = self._node_slots.get(u)
        slots_v = self._node_slots.get(v)
        closing_at_store = 0
        store_slot = self.hash_function.bucket(u, v)
        storeable = store_slot < self.group_size

        if slots_u and slots_v:
            candidates = slots_u & slots_v
            for slot in candidates:
                closed = self._update_processor(self.processors[slot], u, v)
                if storeable and slot == store_slot:
                    closing_at_store = closed

        if storeable:
            processor = self.processors[store_slot]
            already_stored = v in processor.neighbors(u)
            if not already_stored:
                processor.store_edge(u, v, closing_at_store if self.track_eta else 0)
                self._node_slots.setdefault(u, set()).add(store_slot)
                self._node_slots.setdefault(v, set()).add(store_slot)

    def _update_processor(self, processor: ProcessorCounters, u: NodeId, v: NodeId) -> int:
        """Apply UpdateTriangleCNT / UpdateTrianglePairCNT for one processor.

        Returns the number of semi-triangles closed by ``(u, v)`` on this
        processor, i.e. ``|N_u(i) ∩ N_v(i)|``.
        """
        neighbors_u = processor.neighbors(u)
        neighbors_v = processor.neighbors(v)
        if len(neighbors_u) > len(neighbors_v):
            neighbors_u, neighbors_v = neighbors_v, neighbors_u
        common = [w for w in neighbors_u if w in neighbors_v]
        closed = len(common)
        if not closed:
            return 0

        processor.tau += closed
        if self.track_local:
            local = processor.tau_local
            local[u] = local.get(u, 0) + closed
            local[v] = local.get(v, 0) + closed
            for w in common:
                local[w] = local.get(w, 0) + 1

        if self.track_eta:
            edge_triangles = processor.edge_triangles
            eta_local = processor.eta_local
            for w in common:
                key_uw = canonical_edge(u, w)
                key_vw = canonical_edge(v, w)
                count_uw = edge_triangles.get(key_uw, 0)
                count_vw = edge_triangles.get(key_vw, 0)
                pair_increment = count_uw + count_vw
                processor.eta += pair_increment
                if self.track_local:
                    eta_local[w] = eta_local.get(w, 0) + pair_increment
                    eta_local[u] = eta_local.get(u, 0) + count_uw
                    eta_local[v] = eta_local.get(v, 0) + count_vw
                edge_triangles[key_uw] = count_uw + 1
                edge_triangles[key_vw] = count_vw + 1
        return closed

    # -- aggregates ----------------------------------------------------------

    def tau_values(self) -> List[int]:
        """Return ``[τ(i)]`` for the processors of this group."""
        return [processor.tau for processor in self.processors]

    def eta_values(self) -> List[int]:
        """Return ``[η(i)]`` for the processors of this group."""
        return [processor.eta for processor in self.processors]

    def total_edges_stored(self) -> int:
        """Total number of edges stored across the group's processors."""
        return sum(processor.edges_stored for processor in self.processors)

    def local_tau_sums(self) -> Dict[NodeId, int]:
        """Return ``Σ_i τ_v(i)`` over this group's processors, per node."""
        sums: Dict[NodeId, int] = {}
        for processor in self.processors:
            for node, value in processor.tau_local.items():
                sums[node] = sums.get(node, 0) + value
        return sums

    def local_eta_sums(self) -> Dict[NodeId, int]:
        """Return ``Σ_i η_v(i)`` over this group's processors, per node."""
        sums: Dict[NodeId, int] = {}
        for processor in self.processors:
            for node, value in processor.eta_local.items():
                sums[node] = sums.get(node, 0) + value
        return sums
