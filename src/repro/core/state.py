"""Per-processor state of REPT's Algorithms 1 and 2.

A *processor* in the paper is an abstract worker: it owns a sampled edge
set ``E(i)`` and a handful of counters.  :class:`ProcessorCounters` is that
state; :class:`ProcessorGroup` owns the ``m`` (or fewer) processors that
share one hash function and advances them edge by edge, implementing the
``UpdateTriangleCNT`` / ``UpdateTrianglePairCNT`` procedures of the paper's
pseudocode.

Performance note
----------------
A literal transcription would, for every arriving edge, visit every
processor and intersect its neighbor sets — O(c) dictionary probes per edge
even though most processors store neither endpoint.  Because an update can
only occur on a processor where *both* endpoints already have at least one
stored edge, each group maintains a per-node index of the slots holding the
node; per edge we only visit the slots in the intersection of the two
endpoints' index sets.  This is an exact optimisation (identical counters),
not an approximation.

Mergeable chunk state
---------------------
The counters are *mergeable* across disjoint chunks of the stream, which is
what the chunked execution backends in :mod:`repro.core.parallel` exploit.
The key observation is that the **storing** process (which edges end up in
which processor's sampled edge set) depends only on the hash function and
the set of distinct edges seen — never on the counters.  A worker that is
handed (a) the stored-edge index as it stood at its chunk boundary (via
:meth:`ProcessorGroup.seed_adjacency`) and (b) its chunk of arrivals
therefore computes *exact* per-event closure counts, so ``τ`` and the
``τ_v`` merge by pure summation.

The pair counters are only slightly harder: every η increment reads the
per-edge counters ``τ_(u,w)(i)`` and ``τ_(v,w)(i)``, which accumulate across
chunks, but the increment is *linear* in those counters.  A worker that
starts its ``edge_triangles`` map at zero therefore under-counts each usage
of a stored edge as a wedge by exactly the edge's accumulated count from
earlier chunks, and :meth:`ProcessorCounters.merge` repairs this with the
closed-form correction ``Σ_key Δ_later[key] · τ_key(prefix)`` (the same
correction applies to ``η_v`` on the key's two endpoints).  The merge is
exact — every backend produces bit-identical counters — because all the
quantities involved are integers and the correction is an identity, not an
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.hashing.base import EdgeHashFunction
from repro.types import EdgeTuple, NodeId, canonical_edge

#: Picklable snapshot of one processor's state (see ProcessorCounters.snapshot).
ProcessorSnapshot = Dict[str, object]

#: Picklable snapshot of a whole group's state (see ProcessorGroup.snapshot).
GroupSnapshot = Dict[str, object]


@dataclass
class ProcessorCounters:
    """Counters and sampled edge set of one processor ``i``.

    Attributes mirror the paper's notation:

    * ``adjacency`` — the graph formed by the stored edge set ``E(i)``;
    * ``tau`` — ``τ(i)``, the number of semi-triangles observed;
    * ``tau_local`` — ``τ_v(i)`` per node;
    * ``edge_triangles`` — ``τ_(u,v)(i)``: for each stored edge, the number
      of semi-triangles in ``Δ(i)`` containing that edge (used to maintain
      the η counters);
    * ``eta`` / ``eta_local`` — ``η(i)`` and ``η_v(i)``.
    """

    adjacency: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    tau: int = 0
    tau_local: Dict[NodeId, int] = field(default_factory=dict)
    edge_triangles: Dict[EdgeTuple, int] = field(default_factory=dict)
    eta: int = 0
    eta_local: Dict[NodeId, int] = field(default_factory=dict)
    edges_stored: int = 0

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Return the stored neighbor set of ``node`` (empty if absent)."""
        return self.adjacency.get(node, _EMPTY)

    def store_edge(self, u: NodeId, v: NodeId, closing_triangles: int) -> None:
        """Insert edge ``(u, v)`` into ``E(i)``.

        ``closing_triangles`` is ``|N_u,v(i)|`` at insertion time, which
        initialises the per-edge triangle counter ``τ_(u,v)(i)``.
        """
        self.adjacency.setdefault(u, set()).add(v)
        self.adjacency.setdefault(v, set()).add(u)
        self.edge_triangles[canonical_edge(u, v)] = closing_triangles
        self.edges_stored += 1

    # -- chunked execution support -------------------------------------------

    def snapshot(self) -> ProcessorSnapshot:
        """Return a picklable copy of the full processor state."""
        return {
            "adjacency": {node: list(neigh) for node, neigh in self.adjacency.items()},
            "tau": self.tau,
            "tau_local": dict(self.tau_local),
            "edge_triangles": dict(self.edge_triangles),
            "eta": self.eta,
            "eta_local": dict(self.eta_local),
            "edges_stored": self.edges_stored,
        }

    @classmethod
    def restore(cls, snapshot: ProcessorSnapshot) -> "ProcessorCounters":
        """Rebuild a processor from :meth:`snapshot` output."""
        return cls(
            adjacency={node: set(neigh) for node, neigh in snapshot["adjacency"].items()},
            tau=snapshot["tau"],
            tau_local=dict(snapshot["tau_local"]),
            edge_triangles=dict(snapshot["edge_triangles"]),
            eta=snapshot["eta"],
            eta_local=dict(snapshot["eta_local"]),
            edges_stored=snapshot["edges_stored"],
        )

    def merge(self, later: "ProcessorCounters", track_local: bool = True) -> None:
        """Fold in the state of the same processor advanced over the *next* chunk.

        Contract: ``later`` must have been advanced, with all counters zeroed,
        over the stream chunk immediately following the one(s) this processor
        has seen, starting from this processor's stored-edge index (seeded via
        :meth:`ProcessorGroup.seed_adjacency`).  Under that contract the merge
        reproduces the counters of an uninterrupted run exactly:

        * ``τ``/``τ_v`` increments were computed against the true adjacency,
          so they sum directly;
        * each η increment in ``later`` read per-edge counters that were
          missing this prefix's contribution.  ``later.edge_triangles[key]``
          equals the number of times ``key`` served as a wedge edge during the
          chunk (its initialisation term only exists for edges first stored in
          the chunk, whose prefix count is zero), so the missing mass is
          ``Δ_later[key] · τ_key(prefix)`` — added to ``η`` and to ``η_v`` of
          both endpoints of ``key``.
        """
        for key, delta in later.edge_triangles.items():
            prior = self.edge_triangles.get(key, 0)
            if prior:
                correction = delta * prior
                self.eta += correction
                if track_local:
                    a, b = key
                    self.eta_local[a] = self.eta_local.get(a, 0) + correction
                    self.eta_local[b] = self.eta_local.get(b, 0) + correction
            self.edge_triangles[key] = prior + delta

        self.tau += later.tau
        self.eta += later.eta
        for node, value in later.tau_local.items():
            self.tau_local[node] = self.tau_local.get(node, 0) + value
        for node, value in later.eta_local.items():
            self.eta_local[node] = self.eta_local.get(node, 0) + value
        self.edges_stored += later.edges_stored
        for node, neighbors in later.adjacency.items():
            mine = self.adjacency.get(node)
            if mine is None:
                self.adjacency[node] = set(neighbors)
            else:
                mine |= neighbors


_EMPTY: Set[NodeId] = frozenset()  # type: ignore[assignment]


class ProcessorGroup:
    """A group of processors sharing one edge-partition hash function.

    Parameters
    ----------
    hash_function:
        Maps each edge to a bucket in ``{0, ..., m-1}``.
    group_size:
        Number of processors (slots) actually present in this group; slots
        ``group_size .. m-1`` exist only virtually (edges hashed there are
        discarded), which is exactly the ``c ≤ m`` situation of Algorithm 1
        and the partial group of Algorithm 2.
    m:
        The hash range (inverse sampling probability).
    track_local:
        Maintain the per-node counters ``τ_v(i)``.
    track_eta:
        Maintain the pair counters ``η(i)`` / ``η_v(i)`` and the per-edge
        triangle counters they require.
    """

    def __init__(
        self,
        hash_function: EdgeHashFunction,
        group_size: int,
        m: int,
        track_local: bool = True,
        track_eta: bool = False,
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if group_size > m:
            raise ValueError("group_size cannot exceed the hash range m")
        if hash_function.buckets != m:
            raise ValueError(
                f"hash function has {hash_function.buckets} buckets, expected m={m}"
            )
        self.hash_function = hash_function
        self.group_size = group_size
        self.m = m
        self.track_local = track_local
        self.track_eta = track_eta
        self.processors: List[ProcessorCounters] = [
            ProcessorCounters() for _ in range(group_size)
        ]
        # node -> set of slots where the node has at least one stored edge.
        self._node_slots: Dict[NodeId, Set[int]] = {}

    # -- per-edge update ----------------------------------------------------

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        """Advance every processor of the group with the arriving edge."""
        slots_u = self._node_slots.get(u)
        slots_v = self._node_slots.get(v)
        closing_at_store = 0
        store_slot = self.hash_function.bucket(u, v)
        storeable = store_slot < self.group_size

        if slots_u and slots_v:
            candidates = slots_u & slots_v
            for slot in candidates:
                closed = self._update_processor(self.processors[slot], u, v)
                if storeable and slot == store_slot:
                    closing_at_store = closed

        if storeable:
            processor = self.processors[store_slot]
            already_stored = v in processor.neighbors(u)
            if not already_stored:
                processor.store_edge(u, v, closing_at_store if self.track_eta else 0)
                self._node_slots.setdefault(u, set()).add(store_slot)
                self._node_slots.setdefault(v, set()).add(store_slot)

    def _update_processor(self, processor: ProcessorCounters, u: NodeId, v: NodeId) -> int:
        """Apply UpdateTriangleCNT / UpdateTrianglePairCNT for one processor.

        Returns the number of semi-triangles closed by ``(u, v)`` on this
        processor, i.e. ``|N_u(i) ∩ N_v(i)|``.
        """
        neighbors_u = processor.neighbors(u)
        neighbors_v = processor.neighbors(v)
        if len(neighbors_u) > len(neighbors_v):
            neighbors_u, neighbors_v = neighbors_v, neighbors_u
        common = [w for w in neighbors_u if w in neighbors_v]
        closed = len(common)
        if not closed:
            return 0

        processor.tau += closed
        if self.track_local:
            local = processor.tau_local
            local[u] = local.get(u, 0) + closed
            local[v] = local.get(v, 0) + closed
            for w in common:
                local[w] = local.get(w, 0) + 1

        if self.track_eta:
            edge_triangles = processor.edge_triangles
            eta_local = processor.eta_local
            for w in common:
                key_uw = canonical_edge(u, w)
                key_vw = canonical_edge(v, w)
                count_uw = edge_triangles.get(key_uw, 0)
                count_vw = edge_triangles.get(key_vw, 0)
                pair_increment = count_uw + count_vw
                processor.eta += pair_increment
                if self.track_local:
                    eta_local[w] = eta_local.get(w, 0) + pair_increment
                    eta_local[u] = eta_local.get(u, 0) + count_uw
                    eta_local[v] = eta_local.get(v, 0) + count_vw
                edge_triangles[key_uw] = count_uw + 1
                edge_triangles[key_vw] = count_vw + 1
        return closed

    # -- chunked execution support -------------------------------------------

    def snapshot(self) -> GroupSnapshot:
        """Return a picklable copy of the group's full state.

        The per-node slot index is not serialised — :meth:`restore` rebuilds
        it from the adjacencies.
        """
        return {
            "group_size": self.group_size,
            "m": self.m,
            "processors": [processor.snapshot() for processor in self.processors],
        }

    def restore(self, snapshot: GroupSnapshot) -> None:
        """Replace this group's state with :meth:`snapshot` output."""
        if snapshot["group_size"] != self.group_size or snapshot["m"] != self.m:
            raise ValueError(
                "snapshot shape mismatch: expected "
                f"(group_size={self.group_size}, m={self.m}), got "
                f"(group_size={snapshot['group_size']}, m={snapshot['m']})"
            )
        self.processors = [
            ProcessorCounters.restore(entry) for entry in snapshot["processors"]
        ]
        self._reindex_node_slots()

    def seed_adjacency(self, stored_edges: "List[tuple]") -> None:
        """Pre-load the stored-edge index as it stood at a chunk boundary.

        ``stored_edges`` is a sequence of ``(slot, u, v)`` records: the edges
        stored by earlier chunks and the processor slots holding them.  Only
        the adjacency (and the node-slot index) is populated — counters,
        per-edge triangle counts and ``edges_stored`` stay zero, so a group
        advanced from this state accumulates exactly one chunk's worth of
        counter deltas (the shape :meth:`merge` expects), while closure
        checks, the ``already_stored`` test and ``closing_at_store`` all see
        the true cross-chunk adjacency.
        """
        for slot, u, v in stored_edges:
            if not 0 <= slot < self.group_size:
                raise ValueError(f"stored edge ({u!r}, {v!r}) names invalid slot {slot}")
            processor = self.processors[slot]
            processor.adjacency.setdefault(u, set()).add(v)
            processor.adjacency.setdefault(v, set()).add(u)
            self._node_slots.setdefault(u, set()).add(slot)
            self._node_slots.setdefault(v, set()).add(slot)

    def merge(self, later: "ProcessorGroup") -> None:
        """Fold in a group advanced over the next chunk (see ProcessorCounters.merge).

        ``later`` must share this group's shape and hash function and must
        have been advanced from this group's adjacency (seeded, counters
        zero) over the stream chunk immediately following this group's.
        """
        self.merge_snapshot(later.snapshot())

    def merge_snapshot(self, snapshot: GroupSnapshot) -> None:
        """Fold in a chunk-state snapshot without materialising the other group."""
        if snapshot["group_size"] != self.group_size or snapshot["m"] != self.m:
            raise ValueError(
                "cannot merge groups of different shape: expected "
                f"(group_size={self.group_size}, m={self.m}), got "
                f"(group_size={snapshot['group_size']}, m={snapshot['m']})"
            )
        for slot, (processor, entry) in enumerate(
            zip(self.processors, snapshot["processors"])
        ):
            later = ProcessorCounters.restore(entry)
            processor.merge(later, track_local=self.track_local)
            # Incremental index update: only the incoming chunk's nodes can
            # gain this slot (a full rebuild per merge would dominate the
            # driver's merge phase on many-chunk runs).
            for node in later.adjacency:
                self._node_slots.setdefault(node, set()).add(slot)

    def _reindex_node_slots(self) -> None:
        """Rebuild the node -> slots index from the processor adjacencies."""
        index: Dict[NodeId, Set[int]] = {}
        for slot, processor in enumerate(self.processors):
            for node in processor.adjacency:
                index.setdefault(node, set()).add(slot)
        self._node_slots = index

    # -- aggregates ----------------------------------------------------------

    def tau_values(self) -> List[int]:
        """Return ``[τ(i)]`` for the processors of this group."""
        return [processor.tau for processor in self.processors]

    def eta_values(self) -> List[int]:
        """Return ``[η(i)]`` for the processors of this group."""
        return [processor.eta for processor in self.processors]

    def total_edges_stored(self) -> int:
        """Total number of edges stored across the group's processors."""
        return sum(processor.edges_stored for processor in self.processors)

    def local_tau_sums(self) -> Dict[NodeId, int]:
        """Return ``Σ_i τ_v(i)`` over this group's processors, per node."""
        sums: Dict[NodeId, int] = {}
        for processor in self.processors:
            for node, value in processor.tau_local.items():
                sums[node] = sums.get(node, 0) + value
        return sums

    def local_eta_sums(self) -> Dict[NodeId, int]:
        """Return ``Σ_i η_v(i)`` over this group's processors, per node."""
        sums: Dict[NodeId, int] = {}
        for processor in self.processors:
            for node, value in processor.eta_local.items():
                sums[node] = sums.get(node, 0) + value
        return sums
