"""Per-processor state of REPT's Algorithms 1 and 2.

A *processor* in the paper is an abstract worker: it owns a sampled edge
set ``E(i)`` and a handful of counters.  :class:`ProcessorCounters` is that
state; :class:`ProcessorGroup` owns the ``m`` (or fewer) processors that
share one hash function and advances them edge by edge, implementing the
``UpdateTriangleCNT`` / ``UpdateTrianglePairCNT`` procedures of the paper's
pseudocode.

Performance note
----------------
A literal transcription would, for every arriving edge, visit every
processor and intersect its neighbor sets — O(c) dictionary probes per edge
even though most processors store neither endpoint.  Because an update can
only occur on a processor where *both* endpoints already have at least one
stored edge, each group maintains a per-node *bitmask* of the slots holding
the node; per edge the candidate slots are one integer AND of the two
endpoints' masks.  This is an exact optimisation (identical counters), not
an approximation.

Two further exact optimisations serve the batched ingestion pipeline:

* node identifiers are interned to dense small ints on entry (see
  :mod:`repro.core.interning`), so every adjacency set, counter dict and
  bitmask probe operates on small ints; raw identifiers reappear only at
  the public boundaries (aggregates, snapshots, stored-edge records);
* :meth:`ProcessorGroup.process_encoded` consumes whole batches whose
  canonicalisation, hashing and first-occurrence flags were precomputed as
  array operations, dropping into per-edge Python only for the residual
  state updates.  It advances the counters through the same update rules as
  :meth:`ProcessorGroup.process_edge`, so both paths produce bit-identical
  state (asserted by the batch-equivalence tests).

Mergeable chunk state
---------------------
The counters are *mergeable* across disjoint chunks of the stream, which is
what the chunked execution backends in :mod:`repro.core.parallel` exploit.
The key observation is that the **storing** process (which edges end up in
which processor's sampled edge set) depends only on the hash function and
the set of distinct edges seen — never on the counters.  A worker that is
handed (a) the stored-edge index as it stood at its chunk boundary (via
:meth:`ProcessorGroup.seed_adjacency`) and (b) its chunk of arrivals
therefore computes *exact* per-event closure counts, so ``τ`` and the
``τ_v`` merge by pure summation.

The pair counters are only slightly harder: every η increment reads the
per-edge counters ``τ_(u,w)(i)`` and ``τ_(v,w)(i)``, which accumulate across
chunks, but the increment is *linear* in those counters.  A worker that
starts its ``edge_triangles`` map at zero therefore under-counts each usage
of a stored edge as a wedge by exactly the edge's accumulated count from
earlier chunks, and :meth:`ProcessorCounters.merge` repairs this with the
closed-form correction ``Σ_key Δ_later[key] · τ_key(prefix)`` (the same
correction applies to ``η_v`` on the key's two endpoints).  The merge is
exact — every backend produces bit-identical counters — because all the
quantities involved are integers and the correction is an identity, not an
approximation.

Shared mergeable-state abstraction
----------------------------------
Three consumers exploit that mergeability: the chunked execution backends
(:mod:`repro.core.parallel`), the estimator itself
(:class:`~repro.core.rept.ReptEstimator`), and the sliding-window monitor
(:mod:`repro.streaming.monitor`).  :class:`GroupStateSet` is the shared
abstraction they all build on: the complete counter state of one
:class:`~repro.core.config.ReptConfig` — every processor group, the shared
interning table and the stream-global first-occurrence set — with batch
ingestion, snapshot/merge and summarisation in one place.  The monitor
additionally uses the *pane delta* protocol
(:meth:`ProcessorGroup.take_pane_deltas` / :meth:`ProcessorGroup.merge_deltas`):
a live group keeps its stored-edge index while its counters are detached
and re-zeroed at every pane boundary, which leaves the group in exactly the
seeded-at-a-chunk-boundary state the merge contract expects — so a window
advances by folding one O(pane) delta instead of re-ingesting the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.combine import GroupSummary, combine_group_estimates
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.hashing.base import EdgeHashFunction
from repro.types import EdgeTuple, NodeId, canonical_edge

#: Picklable snapshot of one processor's state (see ProcessorCounters.snapshot).
ProcessorSnapshot = Dict[str, object]

#: Picklable snapshot of a whole group's state (see ProcessorGroup.snapshot).
GroupSnapshot = Dict[str, object]


@dataclass
class ProcessorCounters:
    """Counters and sampled edge set of one processor ``i``.

    Attributes mirror the paper's notation:

    * ``adjacency`` — the graph formed by the stored edge set ``E(i)``;
    * ``tau`` — ``τ(i)``, the number of semi-triangles observed;
    * ``tau_local`` — ``τ_v(i)`` per node;
    * ``edge_triangles`` — ``τ_(u,v)(i)``: for each stored edge, the number
      of semi-triangles in ``Δ(i)`` containing that edge (used to maintain
      the η counters);
    * ``eta`` / ``eta_local`` — ``η(i)`` and ``η_v(i)``.
    """

    adjacency: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    tau: int = 0
    tau_local: Dict[NodeId, int] = field(default_factory=dict)
    edge_triangles: Dict[EdgeTuple, int] = field(default_factory=dict)
    eta: int = 0
    eta_local: Dict[NodeId, int] = field(default_factory=dict)
    edges_stored: int = 0

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Return the stored neighbor set of ``node`` (empty if absent)."""
        return self.adjacency.get(node, _EMPTY)

    def store_edge(
        self, u: NodeId, v: NodeId, closing_triangles: int, track_pairs: bool = True
    ) -> None:
        """Insert edge ``(u, v)`` into ``E(i)``.

        ``closing_triangles`` is ``|N_u,v(i)|`` at insertion time, which
        initialises the per-edge triangle counter ``τ_(u,v)(i)``.  With
        ``track_pairs=False`` (groups that do not maintain the η counters)
        the per-edge counter is not materialised at all.
        """
        adjacency = self.adjacency
        neighbors = adjacency.get(u)
        if neighbors is None:
            adjacency[u] = {v}
        else:
            neighbors.add(v)
        neighbors = adjacency.get(v)
        if neighbors is None:
            adjacency[v] = {u}
        else:
            neighbors.add(u)
        if track_pairs:
            self.edge_triangles[canonical_edge(u, v)] = closing_triangles
        self.edges_stored += 1

    # -- chunked execution support -------------------------------------------

    def snapshot(self) -> ProcessorSnapshot:
        """Return a picklable copy of the full processor state."""
        return {
            "adjacency": {node: list(neigh) for node, neigh in self.adjacency.items()},
            "tau": self.tau,
            "tau_local": dict(self.tau_local),
            "edge_triangles": dict(self.edge_triangles),
            "eta": self.eta,
            "eta_local": dict(self.eta_local),
            "edges_stored": self.edges_stored,
        }

    @classmethod
    def restore(cls, snapshot: ProcessorSnapshot) -> "ProcessorCounters":
        """Rebuild a processor from :meth:`snapshot` output."""
        return cls(
            adjacency={node: set(neigh) for node, neigh in snapshot["adjacency"].items()},
            tau=snapshot["tau"],
            tau_local=dict(snapshot["tau_local"]),
            edge_triangles=dict(snapshot["edge_triangles"]),
            eta=snapshot["eta"],
            eta_local=dict(snapshot["eta_local"]),
            edges_stored=snapshot["edges_stored"],
        )

    def merge(self, later: "ProcessorCounters", track_local: bool = True) -> None:
        """Fold in the state of the same processor advanced over the *next* chunk.

        Contract: ``later`` must have been advanced, with all counters zeroed,
        over the stream chunk immediately following the one(s) this processor
        has seen, starting from this processor's stored-edge index (seeded via
        :meth:`ProcessorGroup.seed_adjacency`).  Under that contract the merge
        reproduces the counters of an uninterrupted run exactly:

        * ``τ``/``τ_v`` increments were computed against the true adjacency,
          so they sum directly;
        * each η increment in ``later`` read per-edge counters that were
          missing this prefix's contribution.  ``later.edge_triangles[key]``
          equals the number of times ``key`` served as a wedge edge during the
          chunk (its initialisation term only exists for edges first stored in
          the chunk, whose prefix count is zero), so the missing mass is
          ``Δ_later[key] · τ_key(prefix)`` — added to ``η`` and to ``η_v`` of
          both endpoints of ``key``.
        """
        for key, delta in later.edge_triangles.items():
            prior = self.edge_triangles.get(key, 0)
            if prior:
                correction = delta * prior
                self.eta += correction
                if track_local:
                    a, b = key
                    self.eta_local[a] = self.eta_local.get(a, 0) + correction
                    self.eta_local[b] = self.eta_local.get(b, 0) + correction
            self.edge_triangles[key] = prior + delta

        self.tau += later.tau
        self.eta += later.eta
        for node, value in later.tau_local.items():
            self.tau_local[node] = self.tau_local.get(node, 0) + value
        for node, value in later.eta_local.items():
            self.eta_local[node] = self.eta_local.get(node, 0) + value
        self.edges_stored += later.edges_stored
        for node, neighbors in later.adjacency.items():
            mine = self.adjacency.get(node)
            if mine is None:
                self.adjacency[node] = set(neighbors)
            else:
                mine |= neighbors


_EMPTY: Set[NodeId] = frozenset()  # type: ignore[assignment]


class ProcessorGroup:
    """A group of processors sharing one edge-partition hash function.

    Internally every node is interned to a dense int (see
    :mod:`repro.core.interning`); all public outputs — aggregates,
    snapshots, stored-edge records — speak raw node identifiers.

    Parameters
    ----------
    hash_function:
        Maps each edge to a bucket in ``{0, ..., m-1}``.
    group_size:
        Number of processors (slots) actually present in this group; slots
        ``group_size .. m-1`` exist only virtually (edges hashed there are
        discarded), which is exactly the ``c ≤ m`` situation of Algorithm 1
        and the partial group of Algorithm 2.
    m:
        The hash range (inverse sampling probability).
    track_local:
        Maintain the per-node counters ``τ_v(i)``.
    track_eta:
        Maintain the pair counters ``η(i)`` / ``η_v(i)`` and the per-edge
        triangle counters they require.
    interner:
        Node-interning table; an estimator shares one across its groups so
        encoded batches are valid for all of them.  A private table is
        created when omitted (standalone use).
    """

    def __init__(
        self,
        hash_function: EdgeHashFunction,
        group_size: int,
        m: int,
        track_local: bool = True,
        track_eta: bool = False,
        interner: Optional[NodeInterner] = None,
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if group_size > m:
            raise ValueError("group_size cannot exceed the hash range m")
        if hash_function.buckets != m:
            raise ValueError(
                f"hash function has {hash_function.buckets} buckets, expected m={m}"
            )
        self.hash_function = hash_function
        self.group_size = group_size
        self.m = m
        self.track_local = track_local
        self.track_eta = track_eta
        self.interner = interner if interner is not None else NodeInterner()
        self.processors: List[ProcessorCounters] = [
            ProcessorCounters() for _ in range(group_size)
        ]
        # dense node id -> bitmask of slots where the node has a stored edge.
        self._node_bits: Dict[int, int] = {}
        # Cached seen-pairs set handed to process_edges(seen=None) callers;
        # see _stored_pairs for the maintenance contract.
        self._pairs_cache: Optional[Set[Tuple[int, int]]] = None

    # -- per-edge update ----------------------------------------------------

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        """Advance every processor of the group with the arriving edge."""
        intern = self.interner.intern
        self._ingest(intern(u), intern(v), self.hash_function.bucket(u, v), None)

    def _ingest(self, iu: int, iv: int, slot: int, first: Optional[bool]) -> None:
        """Advance the group with one interned edge.

        ``slot`` is the edge's hash bucket; ``first`` is the precomputed
        first-occurrence flag of the canonical edge (None: derive it from
        the stored adjacency, the standalone path).
        """
        node_bits = self._node_bits
        bits_u = node_bits.get(iu, 0)
        bits_v = node_bits.get(iv, 0)
        storeable = slot < self.group_size
        closing_at_store = 0

        candidates = bits_u & bits_v
        if candidates:
            processors = self.processors
            update = self._update_processor
            while candidates:
                low = candidates & -candidates
                candidates -= low
                s = low.bit_length() - 1
                closed = update(processors[s], iu, iv)
                if storeable and s == slot:
                    closing_at_store = closed

        if storeable:
            processor = self.processors[slot]
            if first is None:
                neighbors = processor.adjacency.get(iu)
                first = neighbors is None or iv not in neighbors
            if first:
                track_eta = self.track_eta
                processor.store_edge(
                    iu, iv, closing_at_store if track_eta else 0, track_pairs=track_eta
                )
                bit = 1 << slot
                node_bits[iu] = bits_u | bit
                node_bits[iv] = bits_v | bit
                if self._pairs_cache is not None:
                    self._pairs_cache.add((iu, iv) if iu < iv else (iv, iu))

    # -- batched update ------------------------------------------------------

    def process_encoded(
        self,
        cu: Sequence[int],
        cv: Sequence[int],
        slots: Sequence[int],
        firsts: Sequence[bool],
    ) -> None:
        """Advance the group over a whole encoded batch.

        ``cu``/``cv`` are canonical interned id pairs (self-loops already
        dropped), ``slots`` this group's precomputed hash buckets (see
        :meth:`~repro.hashing.base.EdgeHashFunction.bucket_from_keys`) and
        ``firsts`` the stream-global first-occurrence flags from
        :meth:`~repro.core.interning.NodeInterner.encode_pairs`.  The loop
        applies exactly the update rules of :meth:`process_edge`; only the
        edges whose endpoints actually co-occur in a slot reach the closure
        logic, everything else is a handful of int operations.
        """
        node_bits = self._node_bits
        processors = self.processors
        group_size = self.group_size
        track_eta = self.track_eta
        apply_closure = self._apply_closure
        bits_get = node_bits.get
        # Hoisted per-slot structures: one list index instead of an
        # attribute chain on every probe and store.
        adjacencies = [processor.adjacency for processor in processors]
        stored_counts = [0] * group_size
        pairs_cache = self._pairs_cache
        # ``slot < group_size`` can only fail for a partial group; complete
        # groups (group_size == m) take a branch-free specialisation.
        complete = group_size == self.m
        for iu, iv, slot, first in zip(cu, cv, slots, firsts):
            bits_u = bits_get(iu, 0)
            bits_v = bits_get(iv, 0)
            closing_at_store = 0

            candidates = bits_u & bits_v
            if candidates:
                storeable = complete or slot < group_size
                while candidates:
                    low = candidates & -candidates
                    candidates -= low
                    s = low.bit_length() - 1
                    adjacency = adjacencies[s]
                    # Both endpoints have stored edges on this slot (that is
                    # what the bitmask intersection says), so the adjacency
                    # entries exist.  isdisjoint runs in C with no set
                    # allocation, so the common case — nothing closes —
                    # costs a single early-exit probe.
                    neighbors_u = adjacency[iu]
                    neighbors_v = adjacency[iv]
                    if not neighbors_u.isdisjoint(neighbors_v):
                        closed = apply_closure(
                            processors[s], iu, iv, neighbors_u & neighbors_v
                        )
                        if storeable and s == slot:
                            closing_at_store = closed

            if first and (complete or slot < group_size):
                adjacency = adjacencies[slot]
                neighbors = adjacency.get(iu)
                if neighbors is None:
                    adjacency[iu] = {iv}
                else:
                    neighbors.add(iv)
                neighbors = adjacency.get(iv)
                if neighbors is None:
                    adjacency[iv] = {iu}
                else:
                    neighbors.add(iu)
                if track_eta:
                    processors[slot].edge_triangles[
                        (iu, iv) if iu < iv else (iv, iu)
                    ] = closing_at_store
                stored_counts[slot] += 1
                bit = 1 << slot
                node_bits[iu] = bits_u | bit
                node_bits[iv] = bits_v | bit
                if pairs_cache is not None:
                    pairs_cache.add((iu, iv) if iu < iv else (iv, iu))
        for slot, count in enumerate(stored_counts):
            if count:
                processors[slot].edges_stored += count

    def process_edges(self, edges, seen: Optional[Set[Tuple[int, int]]] = None) -> None:
        """Standalone batched ingestion for one group.

        Encodes ``edges`` through this group's interner, hashes the batch
        vectorially and advances the counters via :meth:`process_encoded` —
        bit-identical to per-edge :meth:`process_edge` calls.

        ``seen`` carries first-occurrence state across calls (the id-ordered
        interned pairs already consumed); when omitted it is derived from
        the stored adjacency, which is exact even after
        :meth:`seed_adjacency` (an edge is stored iff it was seen and its
        slot is real, and unstoreable edges never consult the flag).
        """
        if seen is None:
            seen = self._stored_pairs()
        interner = self.interner
        cu, cv, firsts, _ = interner.encode_pairs(edges, seen)
        if not cu:
            return
        slots = self.hash_function.bucket_from_keys(
            interner.edge_key_array(cu, cv)
        ).tolist()
        self.process_encoded(cu, cv, slots, firsts)

    def _stored_pairs(self) -> Set[Tuple[int, int]]:
        """Return the cached seen-pairs set covering every stored edge.

        The cache is derived once (O(stored edges)) and maintained
        incrementally: every store adds its id-ordered pair, and the cold
        mutators (restore/merge/seed) invalidate it.  Because callers use
        the returned set as a live first-occurrence ``seen`` set, it may
        also accumulate *unstoreable* seen pairs — harmless, since an
        edge's slot is fixed by the hash, so unstoreable edges never
        consult their flag and storeable edges are stored exactly on their
        first arrival (making "stored" and "seen" coincide for them).
        """
        cache = self._pairs_cache
        if cache is None:
            cache = self._derive_stored_pairs()
            self._pairs_cache = cache
        return cache

    def _derive_stored_pairs(self) -> Set[Tuple[int, int]]:
        """Rebuild the id-ordered interned pairs of every stored edge."""
        seen: Set[Tuple[int, int]] = set()
        for processor in self.processors:
            for iu, neighbors in processor.adjacency.items():
                for iv in neighbors:
                    if iu < iv:
                        seen.add((iu, iv))
        return seen

    def _update_processor(self, processor: ProcessorCounters, u: int, v: int) -> int:
        """Apply UpdateTriangleCNT / UpdateTrianglePairCNT for one processor.

        ``u``/``v`` are interned ids.  Returns the number of semi-triangles
        closed by ``(u, v)`` on this processor, i.e. ``|N_u(i) ∩ N_v(i)|``.
        """
        common = processor.neighbors(u) & processor.neighbors(v)
        if not common:
            return 0
        return self._apply_closure(processor, u, v, common)

    def _apply_closure(
        self, processor: ProcessorCounters, u: int, v: int, common: Set[int]
    ) -> int:
        """Credit the semi-triangles closed by ``(u, v)`` via ``common``.

        ``common`` is the (non-empty) set of shared stored neighbors on this
        processor; every per-``w`` update touches distinct keys, so the
        iteration order of the set does not affect any counter.
        """
        closed = len(common)
        processor.tau += closed
        if self.track_local:
            local = processor.tau_local
            local[u] = local.get(u, 0) + closed
            local[v] = local.get(v, 0) + closed
            for w in common:
                local[w] = local.get(w, 0) + 1

        if self.track_eta:
            edge_triangles = processor.edge_triangles
            eta_local = processor.eta_local
            track_local = self.track_local
            for w in common:
                key_uw = (u, w) if u < w else (w, u)
                key_vw = (v, w) if v < w else (w, v)
                count_uw = edge_triangles.get(key_uw, 0)
                count_vw = edge_triangles.get(key_vw, 0)
                pair_increment = count_uw + count_vw
                processor.eta += pair_increment
                if track_local:
                    eta_local[w] = eta_local.get(w, 0) + pair_increment
                    eta_local[u] = eta_local.get(u, 0) + count_uw
                    eta_local[v] = eta_local.get(v, 0) + count_vw
                edge_triangles[key_uw] = count_uw + 1
                edge_triangles[key_vw] = count_vw + 1
        return closed

    # -- chunked execution support -------------------------------------------

    def snapshot(self) -> GroupSnapshot:
        """Return a picklable copy of the group's full state.

        Snapshots are *externalized*: all keys are raw node identifiers and
        pair keys are canonical edges, so a snapshot taken in one process
        (with its own interning order) restores or merges exactly in any
        other.  The per-node slot index is not serialised — :meth:`restore`
        rebuilds it from the adjacencies.
        """
        nodes = self.interner.nodes
        return {
            "group_size": self.group_size,
            "m": self.m,
            "processors": [
                _externalize_processor(processor, nodes) for processor in self.processors
            ],
        }

    def restore(self, snapshot: GroupSnapshot) -> None:
        """Replace this group's state with :meth:`snapshot` output."""
        if snapshot["group_size"] != self.group_size or snapshot["m"] != self.m:
            raise ValueError(
                "snapshot shape mismatch: expected "
                f"(group_size={self.group_size}, m={self.m}), got "
                f"(group_size={snapshot['group_size']}, m={snapshot['m']})"
            )
        intern = self.interner.intern
        self.processors = [
            _internalize_processor(entry, intern) for entry in snapshot["processors"]
        ]
        self._reindex_node_bits()
        self._pairs_cache = None

    def seed_adjacency(self, stored_edges: Sequence[Tuple[int, NodeId, NodeId]]) -> None:
        """Pre-load the stored-edge index as it stood at a chunk boundary.

        ``stored_edges`` is a sequence of ``(slot, u, v)`` records: the edges
        stored by earlier chunks and the processor slots holding them.  Only
        the adjacency (and the node-slot index) is populated — counters,
        per-edge triangle counts and ``edges_stored`` stay zero, so a group
        advanced from this state accumulates exactly one chunk's worth of
        counter deltas (the shape :meth:`merge` expects), while closure
        checks, the ``already_stored`` test and ``closing_at_store`` all see
        the true cross-chunk adjacency.
        """
        intern = self.interner.intern
        node_bits = self._node_bits
        group_size = self.group_size
        pairs_cache = self._pairs_cache
        for slot, u, v in stored_edges:
            if not 0 <= slot < group_size:
                raise ValueError(f"stored edge ({u!r}, {v!r}) names invalid slot {slot}")
            iu = intern(u)
            iv = intern(v)
            adjacency = self.processors[slot].adjacency
            neighbors = adjacency.get(iu)
            if neighbors is None:
                adjacency[iu] = {iv}
            else:
                neighbors.add(iv)
            neighbors = adjacency.get(iv)
            if neighbors is None:
                adjacency[iv] = {iu}
            else:
                neighbors.add(iu)
            bit = 1 << slot
            node_bits[iu] = node_bits.get(iu, 0) | bit
            node_bits[iv] = node_bits.get(iv, 0) | bit
            if pairs_cache is not None:
                pairs_cache.add((iu, iv) if iu < iv else (iv, iu))

    def merge(self, later: "ProcessorGroup") -> None:
        """Fold in a group advanced over the next chunk (see ProcessorCounters.merge).

        ``later`` must share this group's shape and hash function and must
        have been advanced from this group's adjacency (seeded, counters
        zero) over the stream chunk immediately following this group's.
        ``later`` may use a different interning table — the snapshot
        externalizes its state.
        """
        self.merge_snapshot(later.snapshot())

    def merge_snapshot(self, snapshot: GroupSnapshot) -> None:
        """Fold in a chunk-state snapshot without materialising the other group."""
        if snapshot["group_size"] != self.group_size or snapshot["m"] != self.m:
            raise ValueError(
                "cannot merge groups of different shape: expected "
                f"(group_size={self.group_size}, m={self.m}), got "
                f"(group_size={snapshot['group_size']}, m={snapshot['m']})"
            )
        intern = self.interner.intern
        node_bits = self._node_bits
        for slot, (processor, entry) in enumerate(
            zip(self.processors, snapshot["processors"])
        ):
            later = _internalize_processor(entry, intern)
            processor.merge(later, track_local=self.track_local)
            # Incremental index update: only the incoming chunk's nodes can
            # gain this slot (a full rebuild per merge would dominate the
            # driver's merge phase on many-chunk runs).
            bit = 1 << slot
            for node in later.adjacency:
                node_bits[node] = node_bits.get(node, 0) | bit
        self._pairs_cache = None

    # -- pane-delta protocol (windowed monitoring) ----------------------------

    def take_pane_deltas(
        self, new_stored: Sequence[Tuple[int, int, int]]
    ) -> List[ProcessorCounters]:
        """Detach the counters accumulated since the last call as per-slot deltas.

        ``new_stored`` lists the ``(slot, iu, iv)`` records (interned ids,
        id-ordered or canonical — only set membership matters) of the edges
        stored since the previous boundary; the caller collects them from
        the first-occurrence flags it already computes per batch.  The
        returned :class:`ProcessorCounters` carry the pane's counter deltas
        plus an adjacency holding *only* the pane-new stored edges.

        After the call this group keeps its full stored-edge index (and node
        bitmasks) but has all counters zeroed — exactly the state
        :meth:`seed_adjacency` would produce at this boundary, so the next
        pane accumulates one pane's worth of deltas, the shape
        :meth:`ProcessorCounters.merge` expects.
        """
        per_slot_adjacency: List[Dict[int, Set[int]]] = [
            {} for _ in self.processors
        ]
        for slot, iu, iv in new_stored:
            adjacency = per_slot_adjacency[slot]
            neighbors = adjacency.get(iu)
            if neighbors is None:
                adjacency[iu] = {iv}
            else:
                neighbors.add(iv)
            neighbors = adjacency.get(iv)
            if neighbors is None:
                adjacency[iv] = {iu}
            else:
                neighbors.add(iu)
        deltas: List[ProcessorCounters] = []
        for slot, processor in enumerate(self.processors):
            deltas.append(
                ProcessorCounters(
                    adjacency=per_slot_adjacency[slot],
                    tau=processor.tau,
                    tau_local=processor.tau_local,
                    edge_triangles=processor.edge_triangles,
                    eta=processor.eta,
                    eta_local=processor.eta_local,
                    edges_stored=processor.edges_stored,
                )
            )
            processor.tau = 0
            processor.tau_local = {}
            processor.edge_triangles = {}
            processor.eta = 0
            processor.eta_local = {}
            processor.edges_stored = 0
        return deltas

    def merge_deltas(self, deltas: Sequence[ProcessorCounters]) -> None:
        """Fold per-slot pane deltas from a group sharing this group's interner.

        The counterpart of :meth:`merge_snapshot` for deltas produced by
        :meth:`take_pane_deltas` on a live group that shares this group's
        interning table: keys are dense ids already, so no
        externalize/internalize round trip is paid.  Applies the same exact
        η cross-chunk correction through :meth:`ProcessorCounters.merge`.
        """
        if len(deltas) != len(self.processors):
            raise ValueError(
                f"expected {len(self.processors)} per-slot deltas, got {len(deltas)}"
            )
        node_bits = self._node_bits
        track_local = self.track_local
        for slot, (processor, delta) in enumerate(zip(self.processors, deltas)):
            processor.merge(delta, track_local=track_local)
            bit = 1 << slot
            for node in delta.adjacency:
                node_bits[node] = node_bits.get(node, 0) | bit
        self._pairs_cache = None

    def externalize_deltas(
        self, deltas: Sequence[ProcessorCounters]
    ) -> GroupSnapshot:
        """Turn pane deltas into a raw-keyed :data:`GroupSnapshot`.

        The result is a genuine snapshot — mergeable anywhere via
        :meth:`merge_snapshot` — whose adjacency covers only the pane-new
        stored edges, so its size is O(pane), not O(stream prefix).
        """
        return externalize_delta_snapshot(
            self.group_size, self.m, self.interner.nodes, deltas
        )

    def _reindex_node_bits(self) -> None:
        """Rebuild the node -> slot-bitmask index from the processor adjacencies."""
        index: Dict[int, int] = {}
        for slot, processor in enumerate(self.processors):
            bit = 1 << slot
            for node in processor.adjacency:
                index[node] = index.get(node, 0) | bit
        self._node_bits = index

    # -- aggregates ----------------------------------------------------------

    def summarise(self, is_complete: bool) -> GroupSummary:
        """Detach the counters into a plain, picklable ``GroupSummary``.

        Local and η aggregations only run when the group actually tracks
        them — untracked runs skip the dict passes entirely.
        """
        return GroupSummary(
            group_size=self.group_size,
            is_complete=is_complete,
            tau_sum=float(sum(self.tau_values())),
            eta_sum=float(sum(self.eta_values())) if self.track_eta else 0.0,
            local_tau=self.local_tau_sums(as_float=True) if self.track_local else {},
            local_eta=(
                self.local_eta_sums(as_float=True)
                if self.track_local and self.track_eta
                else {}
            ),
            edges_stored=self.total_edges_stored(),
        )

    def tau_values(self) -> List[int]:
        """Return ``[τ(i)]`` for the processors of this group."""
        return [processor.tau for processor in self.processors]

    def eta_values(self) -> List[int]:
        """Return ``[η(i)]`` for the processors of this group."""
        return [processor.eta for processor in self.processors]

    def total_edges_stored(self) -> int:
        """Total number of edges stored across the group's processors."""
        return sum(processor.edges_stored for processor in self.processors)

    def local_tau_sums(self, as_float: bool = False) -> "Dict[NodeId, Union[int, float]]":
        """Return ``Σ_i τ_v(i)`` over this group's processors, per (raw) node.

        Values are ints by default; ``as_float=True`` accumulates float
        values directly (exact for counts below 2**53), saving the summary
        layer a second conversion pass.
        """
        return self._local_sums("tau_local", as_float)

    def local_eta_sums(self, as_float: bool = False) -> "Dict[NodeId, Union[int, float]]":
        """Return ``Σ_i η_v(i)`` over this group's processors, per (raw) node."""
        return self._local_sums("eta_local", as_float)

    def _local_sums(self, attribute: str, as_float: bool) -> "Dict[NodeId, Union[int, float]]":
        zero = 0.0 if as_float else 0
        sums: Dict[int, int] = {}
        for processor in self.processors:
            for node, value in getattr(processor, attribute).items():
                sums[node] = sums.get(node, zero) + value
        nodes = self.interner.nodes
        return {nodes[node]: value for node, value in sums.items()}

    # -- raw-keyed introspection ----------------------------------------------

    def stored_edges(self) -> List[Tuple[int, NodeId, NodeId]]:
        """Return every stored edge as raw ``(slot, u, v)`` records.

        Endpoints are in canonical order; record order is unspecified.
        """
        nodes = self.interner.nodes
        records: List[Tuple[int, NodeId, NodeId]] = []
        for slot, processor in enumerate(self.processors):
            for iu, neighbors in processor.adjacency.items():
                for iv in neighbors:
                    if iu < iv:
                        cu, cv = canonical_edge(nodes[iu], nodes[iv])
                        records.append((slot, cu, cv))
        return records

    def stored_neighbors(self, slot: int, node: NodeId) -> Set[NodeId]:
        """Return the raw stored neighbor set of ``node`` on processor ``slot``."""
        dense = self.interner.id_of(node)
        if dense is None:
            return set()
        neighbors = self.processors[slot].adjacency.get(dense)
        if not neighbors:
            return set()
        nodes = self.interner.nodes
        return {nodes[iv] for iv in neighbors}


# -- snapshot translation ------------------------------------------------------


def _externalize_processor(
    processor: ProcessorCounters, nodes: List[NodeId]
) -> ProcessorSnapshot:
    """Translate an interned processor state into a raw-keyed snapshot."""
    return {
        "adjacency": {
            nodes[iu]: [nodes[iv] for iv in neighbors]
            for iu, neighbors in processor.adjacency.items()
        },
        "tau": processor.tau,
        "tau_local": {nodes[iu]: value for iu, value in processor.tau_local.items()},
        "edge_triangles": {
            canonical_edge(nodes[a], nodes[b]): value
            for (a, b), value in processor.edge_triangles.items()
        },
        "eta": processor.eta,
        "eta_local": {nodes[iu]: value for iu, value in processor.eta_local.items()},
        "edges_stored": processor.edges_stored,
    }


def externalize_delta_snapshot(
    group_size: int,
    m: int,
    nodes: List[NodeId],
    deltas: Sequence[ProcessorCounters],
) -> GroupSnapshot:
    """Raw-keyed :data:`GroupSnapshot` from per-slot (interned) pane deltas.

    Standalone so delta holders (the monitor's pane ring) can externalize
    without keeping a reference to the originating
    :class:`ProcessorGroup` — only the group shape and the interner's
    append-only id→node table are needed, and the table is shared
    monitor-wide rather than per-window state.
    """
    return {
        "group_size": group_size,
        "m": m,
        "processors": [_externalize_processor(delta, nodes) for delta in deltas],
    }


def first_flags(
    seen: Set[Tuple[int, int]], cu: Sequence[int], cv: Sequence[int]
) -> List[bool]:
    """Stream-global first-occurrence flags of encoded canonical id pairs.

    The standalone counterpart of the flags
    :meth:`~repro.core.interning.NodeInterner.encode_pairs` computes inline:
    given an already-encoded batch, flag each record whose undirected edge
    (id-ordered key) is new to ``seen``, updating ``seen`` in place.  Used
    by consumers that share one encoded batch across several independent
    first-occurrence scopes (the windowed monitor's overlapping windows).
    """
    flags: List[bool] = []
    append = flags.append
    add = seen.add
    size = len(seen)
    for iu, iv in zip(cu, cv):
        add((iu, iv) if iu < iv else (iv, iu))
        new_size = len(seen)
        append(new_size != size)
        size = new_size
    return flags


def ingest_edge_batches(
    group: ProcessorGroup,
    edges: Sequence[EdgeTuple],
    seen: Optional[Set[Tuple[int, int]]] = None,
    batch_edges: int = 65536,
) -> None:
    """Drive one group over ``edges`` through the batched pipeline.

    Splits the sequence into bounded chunks so the transient encode arrays
    stay small without giving up the batch amortisation; ``seen`` carries
    first-occurrence state across chunks (derived from the stored adjacency
    when omitted — exact even after :meth:`ProcessorGroup.seed_adjacency`).
    Shared by the parallel workers and any standalone group consumer.
    """
    if seen is None:
        seen = group._stored_pairs()
    for start in range(0, len(edges), batch_edges):
        group.process_edges(edges[start : start + batch_edges], seen=seen)


@dataclass
class EncodedBatch:
    """One batch of records encoded once for every group of a config.

    ``cu``/``cv`` are canonical interned id pairs (self-loops dropped),
    ``slots`` holds each group's hash buckets for the batch (hash seeds are
    derived from the config, so one encoding serves every
    :class:`GroupStateSet` of that config sharing the same interner), and
    ``n_records`` counts all input records including dropped self-loops.
    First-occurrence flags are deliberately *not* part of the encoding —
    they are scope-local (each consumer derives them from its own ``seen``
    set via :func:`first_flags`).
    """

    cu: List[int]
    cv: List[int]
    slots: List[List[int]]
    n_records: int


def _native_batch_columns(batch: EncodedBatch):
    """Memoised int64/uint8 column views of an encoded batch.

    The monitor feeds one :class:`EncodedBatch` to many overlapping
    windows; converting the shared columns once per batch (cached on the
    batch object) keeps the native kernels from paying a list->array
    round trip per window.
    """
    cached = getattr(batch, "_native_columns", None)
    if cached is None:
        cached = (
            np.asarray(batch.cu, np.int64),
            np.asarray(batch.cv, np.int64),
            [np.asarray(slots, np.int64) for slots in batch.slots],
        )
        batch._native_columns = cached
    return cached


class GroupStateSet:
    """The complete mergeable counter state of one REPT configuration.

    Owns the processor groups described by a
    :class:`~repro.core.config.ReptConfig`, the interning table shared by
    all of them and the stream-global first-occurrence set.  This is the
    abstraction shared by :class:`~repro.core.rept.ReptEstimator` (one
    state set advanced in process), the chunked execution backends (state
    sets folded from per-chunk snapshots) and the windowed monitor (one
    live + one accumulator state set per open window).

    Parameters
    ----------
    config:
        Validated REPT parameters; hash seeds derive from it, so two state
        sets built from the same config are hash-compatible (their encoded
        batches and slot assignments agree).
    interner:
        Optional shared interning table.  Consumers that exchange
        *interned* data between state sets (encoded batches, pane deltas)
        must share one; when omitted a private table is created.
    hash_functions:
        Optional pre-built hash functions (one per group), letting many
        state sets of the same config share the table-backed functions
        instead of rebuilding them; must match the config's seeds.
    kernel:
        Optional override of the config's ingestion-kernel request
        (``"auto"``/``"python"``/``"native"``/provider names).  The request
        is resolved once here — :attr:`kernel` holds the resolved label
        (``"python"``, ``"cc"`` or ``"numba"``), which is also recorded in
        estimate metadata.
    """

    def __init__(
        self,
        config: ReptConfig,
        interner: Optional[NodeInterner] = None,
        hash_functions: Optional[Sequence[EdgeHashFunction]] = None,
        kernel: Optional[str] = None,
    ) -> None:
        # Local import: the hashing package depends only on repro.hashing
        # internals, but importing it lazily keeps this module importable
        # from anywhere in the package without ordering constraints.
        from repro.hashing import make_hash_function

        self.config = config
        self.interner = interner if interner is not None else NodeInterner()
        self.seen: Set[Tuple[int, int]] = set()
        sizes = config.group_sizes()
        if hash_functions is None:
            seeds = config.group_hash_seeds()
            hash_functions = [
                make_hash_function(config.hash_kind, buckets=config.m, seed=seeds[i])
                for i in range(len(sizes))
            ]
        elif len(hash_functions) != len(sizes):
            raise ValueError(
                f"expected {len(sizes)} hash functions, got {len(hash_functions)}"
            )
        from repro.core.kernel import resolve_kernel

        requested = kernel if kernel is not None else getattr(config, "kernel", "auto")
        self.kernel: str = resolve_kernel(requested, max(sizes))
        self._native = self.kernel != "python"
        if self._native:
            from repro.core.adjacency import NativeProcessorGroup

            self.groups: List[ProcessorGroup] = [
                NativeProcessorGroup(
                    hash_function=hash_functions[index],
                    group_size=size,
                    m=config.m,
                    track_local=config.track_local,
                    track_eta=bool(config.track_eta),
                    interner=self.interner,
                    provider=self.kernel,
                )
                for index, size in enumerate(sizes)
            ]
        else:
            self.groups = [
                ProcessorGroup(
                    hash_function=hash_functions[index],
                    group_size=size,
                    m=config.m,
                    track_local=config.track_local,
                    track_eta=bool(config.track_eta),
                    interner=self.interner,
                )
                for index, size in enumerate(sizes)
            ]

    # -- ingestion -----------------------------------------------------------

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        """Advance every group with one raw edge (scalar path)."""
        if u == v:
            return
        intern = self.interner.intern
        iu = intern(u)
        iv = intern(v)
        self.seen.add((iu, iv) if iu < iv else (iv, iu))
        for group in self.groups:
            group.process_edge(u, v)

    def process_edges(self, edges: Iterable[EdgeTuple]) -> int:
        """Advance every group over a raw batch; returns records consumed.

        Canonicalisation, interning and hashing run once as array
        operations shared by all groups — bit-identical to per-edge
        :meth:`process_edge` calls.
        """
        cu, cv, firsts, n_records = self.interner.encode_pairs(edges, self.seen)
        if cu:
            edge_keys = self.interner.edge_key_array(cu, cv)
            if self._native:
                # One list->array conversion shared by every group; slot
                # arrays go to the kernels without a tolist round trip.
                cu = np.asarray(cu, np.int64)
                cv = np.asarray(cv, np.int64)
                firsts = np.asarray(firsts, np.uint8)
                for group in self.groups:
                    slots = group.hash_function.bucket_from_keys(edge_keys)
                    group.process_encoded(cu, cv, slots, firsts)
            else:
                for group in self.groups:
                    slots = group.hash_function.bucket_from_keys(edge_keys).tolist()
                    group.process_encoded(cu, cv, slots, firsts)
        return n_records

    def ingest_stream(
        self, edges: Sequence[EdgeTuple], batch_edges: int = 65536
    ) -> int:
        """Consume a whole materialised stream in bounded batches."""
        total = 0
        for start in range(0, len(edges), batch_edges):
            total += self.process_edges(edges[start : start + batch_edges])
        return total

    # -- shared-encoding ingestion (windowed monitor) ------------------------

    def encode(self, edges: Iterable[EdgeTuple]) -> EncodedBatch:
        """Encode a batch once for every state set of this config.

        Does *not* touch this state set's counters or ``seen`` — the batch
        is a pure function of the interner and the config's hash seeds, so
        any state set sharing the interner can :meth:`ingest_encoded` it.
        """
        cu, cv, _firsts, n_records = self.interner.encode_pairs(edges, None)
        if not cu:
            return EncodedBatch([], [], [[] for _ in self.groups], n_records)
        edge_keys = self.interner.edge_key_array(cu, cv)
        slots = [
            group.hash_function.bucket_from_keys(edge_keys).tolist()
            for group in self.groups
        ]
        return EncodedBatch(cu, cv, slots, n_records)

    def ingest_encoded(
        self,
        batch: EncodedBatch,
        collect_stored: bool = False,
        firsts: Optional[Sequence[bool]] = None,
    ) -> Optional[List[List[Tuple[int, int, int]]]]:
        """Advance every group over a shared encoded batch.

        First-occurrence flags come from *this* state set's ``seen`` set, so
        several state sets can consume the same :class:`EncodedBatch` with
        independent dedup scopes.  A caller owning its own dedup scope (the
        windowed monitor's shared arrival index) may pass precomputed
        ``firsts`` instead — then ``seen`` is neither consulted nor updated.
        With ``collect_stored=True`` the per-group ``(slot, iu, iv)``
        records stored by this batch are returned — the bookkeeping
        :meth:`ProcessorGroup.take_pane_deltas` needs.
        """
        if not batch.cu:
            return [[] for _ in self.groups] if collect_stored else None
        if firsts is None:
            firsts = first_flags(self.seen, batch.cu, batch.cv)
        stored: Optional[List[List[Tuple[int, int, int]]]] = None
        if collect_stored:
            stored = []
        if self._native:
            cu_a, cv_a, slots_arrays = _native_batch_columns(batch)
            firsts_a = np.asarray(firsts, np.uint8)
            for group, slots_a in zip(self.groups, slots_arrays):
                group.process_encoded(cu_a, cv_a, slots_a, firsts_a)
                if stored is not None:
                    idx = np.flatnonzero(
                        (firsts_a != 0) & (slots_a < group.group_size)
                    )
                    stored.append(
                        [
                            (int(slots_a[i]), int(cu_a[i]), int(cv_a[i]))
                            for i in idx
                        ]
                    )
            return stored
        for group, slots in zip(self.groups, batch.slots):
            group.process_encoded(batch.cu, batch.cv, slots, firsts)
            if stored is not None:
                group_size = group.group_size
                stored.append(
                    [
                        (slot, iu, iv)
                        for iu, iv, slot, first in zip(
                            batch.cu, batch.cv, slots, firsts
                        )
                        if first and slot < group_size
                    ]
                )
        return stored

    # -- pane-delta protocol --------------------------------------------------

    def take_pane_deltas(
        self, new_stored: Sequence[Sequence[Tuple[int, int, int]]]
    ) -> List[List[ProcessorCounters]]:
        """Detach every group's pane counters (see ProcessorGroup.take_pane_deltas)."""
        return [
            group.take_pane_deltas(records)
            for group, records in zip(self.groups, new_stored)
        ]

    def merge_pane_deltas(
        self, deltas: Sequence[Sequence[ProcessorCounters]]
    ) -> None:
        """Fold per-group pane deltas from a state set sharing this interner."""
        for group, group_deltas in zip(self.groups, deltas):
            group.merge_deltas(group_deltas)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> List[GroupSnapshot]:
        """Externalized snapshots of every group (picklable, raw-keyed)."""
        return [group.snapshot() for group in self.groups]

    def merge_snapshots(self, snapshots: Sequence[GroupSnapshot]) -> None:
        """Fold one per-group snapshot list (e.g. one chunk's states)."""
        if len(snapshots) != len(self.groups):
            raise ValueError(
                f"expected {len(self.groups)} group snapshots, got {len(snapshots)}"
            )
        for group, snapshot in zip(self.groups, snapshots):
            group.merge_snapshot(snapshot)

    # -- durable state --------------------------------------------------------

    def portable_state(self) -> Dict[str, object]:
        """The complete state in raw-keyed (interner-independent) form.

        Extends :meth:`snapshot` with the stream-global first-occurrence
        set, externalized to raw node pairs — everything a fresh process
        needs to continue the stream bit-identically.  (The ``seen`` set is
        in principle reconstructible from the snapshots' adjacencies, but
        only via a subtle storability argument; serialising it explicitly
        keeps recovery auditable.)  The result is picklable and checkpoint-
        friendly; restore with :meth:`restore_portable`.
        """
        nodes = self.interner.nodes
        return {
            "snapshots": self.snapshot(),
            "seen": [(nodes[iu], nodes[iv]) for iu, iv in self.seen],
        }

    def restore_portable(self, state: Dict[str, object]) -> None:
        """Replace this state set's contents with :meth:`portable_state` output.

        The receiving state set must be freshly built from the same config
        (group shapes are validated by :meth:`ProcessorGroup.restore`).
        Interning order may differ from the originating process — slot
        assignment keys on raw node identity, so the restored run is
        bit-identical regardless.
        """
        snapshots = state["snapshots"]
        if len(snapshots) != len(self.groups):
            raise ValueError(
                f"expected {len(self.groups)} group snapshots, got {len(snapshots)}"
            )
        for group, snapshot in zip(self.groups, snapshots):
            group.restore(snapshot)
        intern = self.interner.intern
        self.seen = set()
        add = self.seen.add
        for u, v in state["seen"]:
            iu = intern(u)
            iv = intern(v)
            add((iu, iv) if iu < iv else (iv, iu))

    # -- aggregates -----------------------------------------------------------

    def summaries(self) -> List[GroupSummary]:
        """Per-group :class:`GroupSummary` with the config's completeness flags."""
        uses_groups = self.config.uses_groups
        m = self.config.m
        return [
            group.summarise(uses_groups and group.group_size == m)
            for group in self.groups
        ]

    def estimate(self, edges_processed: int):
        """Combine the current counters into a TriangleEstimate."""
        config = self.config
        estimate = combine_group_estimates(
            self.summaries(),
            m=config.m,
            c=config.c,
            edges_processed=edges_processed,
            track_local=config.track_local,
            eta_tracked=bool(config.track_eta),
        )
        estimate.metadata["kernel"] = self.kernel
        return estimate

    def total_edges_stored(self) -> int:
        """Total edges currently stored across all groups."""
        return sum(group.total_edges_stored() for group in self.groups)


def _internalize_processor(entry: ProcessorSnapshot, intern) -> ProcessorCounters:
    """Rebuild an interned processor from a raw-keyed snapshot."""
    edge_triangles: Dict[EdgeTuple, int] = {}
    for (a, b), value in entry["edge_triangles"].items():
        ia = intern(a)
        ib = intern(b)
        edge_triangles[(ia, ib) if ia < ib else (ib, ia)] = value
    return ProcessorCounters(
        adjacency={
            intern(node): {intern(other) for other in neighbors}
            for node, neighbors in entry["adjacency"].items()
        },
        tau=entry["tau"],
        tau_local={intern(node): value for node, value in entry["tau_local"].items()},
        edge_triangles=edge_triangles,
        eta=entry["eta"],
        eta_local={intern(node): value for node, value in entry["eta_local"].items()},
        edges_stored=entry["edges_stored"],
    )
