"""Configuration object for the REPT estimator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, derive_seed


@dataclass
class ReptConfig:
    """Validated parameters of a REPT run.

    Parameters
    ----------
    m:
        Inverse sampling probability: each processor stores ``p = 1/m`` of
        the stream's edges on average.  The paper uses ``m ∈ {2, 3, ...}``;
        ``m = 1`` degenerates to exact counting and is accepted for testing.
    c:
        Number of processors.  ``c ≤ m`` selects Algorithm 1, ``c > m``
        selects Algorithm 2 (processor groups).
    seed:
        Master seed; hash functions receive independently spawned children.
    hash_kind:
        ``"splitmix"`` (default) or ``"tabulation"``.
    track_local:
        Maintain per-node estimates ``τ̂_v`` (needed for Figures 5–6 and the
        local-count applications; costs extra dictionaries).
    track_eta:
        Maintain the η counters (``η(i)``, ``η_v(i)``).  Required when
        ``c > m`` with ``c mod m != 0`` (the Graybill–Deal weights need
        ``η̂``); optional otherwise but useful for diagnostics.  ``None``
        (default) means "exactly when required".  An explicit ``False`` is
        force-resolved to ``True`` in the partial-group regime: honouring it
        would silently plug ``η̂ = 0`` into the Graybill–Deal variances and
        corrupt the combined estimate.  Estimates record whether η was
        actually tracked in ``metadata["eta_tracked"]``.
    kernel:
        Ingestion-kernel request: ``"auto"`` (default — use a compiled
        kernel when one is available and every group fits its slot-bitmask
        limit, else the pure-Python path), ``"python"`` (force the dict/set
        reference), ``"native"`` (require *some* compiled kernel; raises if
        none is available), or a provider pin (``"cc"``/``"numba"``).  All
        kernels are bit-identical; estimates record the resolved label in
        ``metadata["kernel"]``.  The ``REPRO_KERNEL`` environment variable
        constrains what "available" means (see :mod:`repro.core.kernel`).
    """

    m: int
    c: int
    seed: SeedLike = None
    hash_kind: str = "splitmix"
    track_local: bool = True
    track_eta: Optional[bool] = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        # Local import: repro.core.kernel depends only on repro.exceptions,
        # but keeping it out of module scope avoids import-order coupling.
        from repro.core.kernel import KERNEL_CHOICES

        if not isinstance(self.m, int) or self.m < 1:
            raise ConfigurationError(f"m must be a positive integer, got {self.m!r}")
        if not isinstance(self.c, int) or self.c < 1:
            raise ConfigurationError(f"c must be a positive integer, got {self.c!r}")
        if self.hash_kind not in ("splitmix", "tabulation"):
            raise ConfigurationError(
                f"hash_kind must be 'splitmix' or 'tabulation', got {self.hash_kind!r}"
            )
        if self.kernel not in KERNEL_CHOICES:
            raise ConfigurationError(
                f"kernel must be one of {KERNEL_CHOICES}, got {self.kernel!r}"
            )
        if self.seed is None:
            # Resolve the seed once so every driver backend (serial, thread,
            # process) derives identical hash functions for this config.
            self.seed = int(np.random.SeedSequence().entropy % (2**63))
        if self.track_eta is None:
            self.track_eta = self.requires_eta
        elif not self.track_eta and self.requires_eta:
            # A partial group exists (c > m, c mod m != 0): the Graybill-Deal
            # combination needs η̂, and running without the η counters would
            # silently substitute η̂ = 0 into the plug-in variances.
            self.track_eta = True

    @property
    def probability(self) -> float:
        """The per-processor edge sampling probability ``p = 1/m``."""
        return 1.0 / self.m

    @property
    def uses_groups(self) -> bool:
        """Whether Algorithm 2 (``c > m``) applies."""
        return self.c > self.m

    @property
    def num_complete_groups(self) -> int:
        """``c₁ = ⌊c/m⌋`` when ``c > m``; 0 for Algorithm 1."""
        return self.c // self.m if self.uses_groups else 0

    @property
    def partial_group_size(self) -> int:
        """``c₂ = c mod m`` when ``c > m``; equals ``c`` for Algorithm 1."""
        return self.c % self.m if self.uses_groups else self.c

    @property
    def requires_eta(self) -> bool:
        """Whether the final combination needs the η counters."""
        return self.uses_groups and self.partial_group_size != 0

    def group_sizes(self) -> List[int]:
        """Return the sizes of the processor groups, in group order.

        Algorithm 1 uses a single group of ``c`` processors; Algorithm 2
        uses ``c₁`` complete groups of ``m`` plus, when ``c₂ ≠ 0``, one
        partial group of ``c₂`` processors.
        """
        if not self.uses_groups:
            return [self.c]
        sizes = [self.m] * self.num_complete_groups
        if self.partial_group_size:
            sizes.append(self.partial_group_size)
        return sizes

    def group_hash_seeds(self) -> List[int]:
        """Return one deterministic integer hash seed per processor group.

        Derived from the (resolved) master seed so that every driver —
        single-threaded estimator, thread pool, process pool — constructs
        identical hash functions and therefore identical estimates.
        """
        return [
            derive_seed(self.seed, "rept-group-hash", index)
            for index in range(len(self.group_sizes()))
        ]

    def describe(self) -> str:
        """One-line human-readable description used in experiment reports."""
        algorithm = "Alg.2" if self.uses_groups else "Alg.1"
        return (
            f"REPT({algorithm}, p=1/{self.m}, c={self.c}, "
            f"groups={self.group_sizes()}, hash={self.hash_kind}, "
            f"kernel={self.kernel})"
        )
