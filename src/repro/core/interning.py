"""Node interning: arbitrary hashable node identifiers → dense integers.

The hot structures of the REPT state (:mod:`repro.core.state`) key on node
identities for every arriving edge.  Arbitrary hashables — strings, tuples,
large ints — pay full object hashing and comparison cost on each probe; a
:class:`NodeInterner` assigns every distinct node a *dense* small-int id on
first appearance, so adjacency sets, counter dicts and the per-node slot
bitmasks all operate on small ints instead.

The interner also memoises each node's stable 64-bit hash key (the same
``stable_node_key`` the scalar hash path computes per call), exposed as a
NumPy array: the batched ingestion pipeline gathers per-edge canonical key
pairs with two fancy-index reads and hands them to the vectorized hash
layer (:meth:`~repro.hashing.base.EdgeHashFunction.bucket_from_keys`).

Interned ids are an internal representation only — every public surface of
the estimators (estimates, summaries, snapshots) speaks raw node
identifiers, so interning is invisible to callers and to the cross-backend
equivalence guarantees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.hashing.base import _GOLDEN64, _stable_node_key
from repro.types import EdgeTuple, NodeId


class NodeInterner:
    """Bidirectional NodeId ↔ dense-int table with memoised hash keys.

    Ids are assigned by first appearance, starting at 0.  The table only
    grows; it is shared by every :class:`~repro.core.state.ProcessorGroup`
    of one estimator so all groups agree on node identities.
    """

    __slots__ = ("_ids", "nodes", "_keys", "_key_array", "_key_array_len")

    def __init__(self) -> None:
        self._ids: Dict[NodeId, int] = {}
        #: Dense id -> original node identifier.
        self.nodes: List[NodeId] = []
        # Python-int keys (append-only); the uint64 array view is rebuilt
        # lazily when the table has grown since the last batch.
        self._keys: List[int] = []
        self._key_array: np.ndarray = np.empty(0, dtype=np.uint64)
        self._key_array_len = 0

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._ids

    def intern(self, node: NodeId) -> int:
        """Return the dense id of ``node``, assigning one on first sight."""
        ids = self._ids
        dense = ids.get(node)
        if dense is None:
            dense = len(self.nodes)
            ids[node] = dense
            self.nodes.append(node)
            self._keys.append(_stable_node_key(node))
        return dense

    def node_of(self, dense: int) -> NodeId:
        """Return the original identifier for a dense id."""
        return self.nodes[dense]

    def id_of(self, node: NodeId) -> Optional[int]:
        """Return the dense id of ``node`` without interning (None if unseen)."""
        return self._ids.get(node)

    def key_array(self) -> np.ndarray:
        """Stable 64-bit hash keys indexed by dense id (``uint64``)."""
        if self._key_array_len != len(self._keys):
            self._key_array = np.array(self._keys, dtype=np.uint64)
            self._key_array_len = len(self._keys)
        return self._key_array

    # -- batch encoding ------------------------------------------------------

    def encode_pairs(
        self,
        pairs: Iterable[EdgeTuple],
        seen: Optional[Set[Tuple[int, int]]] = None,
    ):
        """Intern and canonicalise a batch of raw edge pairs in one pass.

        Returns ``(cu, cv, firsts, n_records)`` where ``cu``/``cv`` are
        parallel lists of dense ids in *canonical* orientation (matching
        :func:`repro.types.canonical_edge` on the raw identifiers — the
        orientation the edge hash is defined over), self-loops are dropped,
        and ``n_records`` counts every input record including the dropped
        loops (the ``edges_processed`` contract).

        When ``seen`` is given it is used (and updated in place) to flag
        each surviving record's first occurrence: ``firsts[k]`` is True iff
        the canonical edge had not been seen before.  Because an edge always
        hashes to the same slot, "seen before" is exactly the per-slot
        ``already_stored`` test of the storing process, hoisted out of the
        per-group loops.  With ``seen=None``, ``firsts`` is returned as
        ``None``.
        """
        ids = self._ids
        nodes = self.nodes
        keys = self._keys
        cu: List[int] = []
        cv: List[int] = []
        cu_append = cu.append
        cv_append = cv.append
        firsts: Optional[List[bool]] = None
        if seen is not None:
            firsts = []
            firsts_append = firsts.append
            seen_add = seen.add
            seen_size = len(seen)
        n_records = 0
        for u, v in pairs:
            n_records += 1
            if u == v:
                continue
            iu = ids.get(u)
            if iu is None:
                iu = len(nodes)
                ids[u] = iu
                nodes.append(u)
                keys.append(_stable_node_key(u))
            iv = ids.get(v)
            if iv is None:
                iv = len(nodes)
                ids[v] = iv
                nodes.append(v)
                keys.append(_stable_node_key(v))
            # Canonical orientation mirrors repro.types.canonical_edge.
            try:
                flip = not (u <= v)
            except TypeError:
                flip = (str(u), repr(u)) > (str(v), repr(v))
            if flip:
                iu, iv = iv, iu
            cu_append(iu)
            cv_append(iv)
            if seen is not None:
                # Membership keys are id-ordered (not canonical-raw order):
                # interning is injective, so id order identifies the
                # undirected edge, and id comparison is cheapest.  The
                # size-delta trick tests and inserts with a single probe.
                seen_add((iu, iv) if iu < iv else (iv, iu))
                new_size = len(seen)
                firsts_append(new_size != seen_size)
                seen_size = new_size
        return cu, cv, firsts, n_records

    def edge_key_array(self, cu: List[int], cv: List[int]) -> np.ndarray:
        """Canonical 64-bit edge keys for encoded id pairs (``uint64``).

        Equals the scalar ``EdgeHashFunction._edge_key`` of the raw pairs;
        seed-independent, so one array serves every processor group.
        """
        node_keys = self.key_array()
        cu_idx = np.array(cu, dtype=np.intp)
        cv_idx = np.array(cv, dtype=np.intp)
        return node_keys[cu_idx] * np.uint64(_GOLDEN64) + node_keys[cv_idx]
