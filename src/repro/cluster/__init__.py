"""Elastic shard runtime: live migration of processor-group shards.

One shard = one processor group of a :class:`~repro.core.config.ReptConfig`.
The :class:`ShardMap` owns the versioned shard → worker assignment with
deterministic minimal-movement rebalancing; :mod:`repro.cluster.worker`
hosts shards in worker processes behind an ordered pipe protocol; and the
:class:`ElasticCoordinator` routes sequence-numbered batches, detects
worker death and hang, and migrates live shards (restore point + bounded
WAL replay) so estimates stay bit-identical to the serial driver through
kills, joins, and rebalances.
"""

from repro.cluster.coordinator import ElasticCoordinator
from repro.cluster.shard_map import ShardMap
from repro.cluster.worker import ShardState, worker_main

__all__ = [
    "ElasticCoordinator",
    "ShardMap",
    "ShardState",
    "worker_main",
]
