"""Failure-aware elastic coordination of processor-group shards.

The :class:`ElasticCoordinator` runs one REPT estimation across a dynamic
pool of worker processes, each hosting a subset of the configuration's
processor groups (see :mod:`repro.cluster.worker`).  Every submitted batch
is sequence-numbered, appended to a bounded WAL
(:class:`~repro.durability.wal.BatchWAL`), and routed to each shard's
current owner under the shard map's epoch.  Because every shard consumes
the *full* stream, per-shard counters are independent of placement — the
final estimate is bit-identical to the serial driver no matter how many
times shards moved.

Failure model, in timeline order:

1. **detect** — a worker that closes its pipe (death, ``SIGKILL``,
   ``os._exit``) raises ``EOFError``/``BrokenPipeError`` at the next
   interaction; a worker that stops answering is caught by
   ``conn.poll(worker_timeout)`` (hang).  Error replies (a fault raised
   inside a command handler) are treated the same way: the worker's state
   can no longer be trusted.
2. **migrate** — the dead worker leaves the shard map (epoch bump); each
   orphaned shard is rebuilt on the deterministically-chosen survivor from
   its best *restore point*: the in-memory portable snapshot of the last
   snapshot round, else the shard's durable checkpoint
   (``<base>/shard-NNNN/``), else fresh state.
3. **replay** — the WAL suffix after the restore point is re-routed to the
   rebuilt shards only; the per-shard ``applied_seq`` guard makes replay
   idempotent, so overshooting (replaying a batch the restore point
   already covers, or one the normal routing loop also delivers) is
   harmless.

Membership is elastic in both directions: :meth:`ElasticCoordinator.add_worker`
live-migrates shards onto a joining worker (snapshot on the donor → restore
on the joiner → drop on the donor), and :meth:`ElasticCoordinator.remove_worker`
drains a worker gracefully.  Degradation is *gradual*: failures shrink the
pool one worker at a time, and only when the pool is empty do shards fall
back to inline hosting in the coordinator process (``degraded`` metadata).
Typed failures are never silent — ``MembershipError`` /
``ShardMigrationError`` are raised to the caller *and* counted in the
estimate metadata (``membership_errors`` / ``migration_errors``).

Fault-injection sites: ``cluster-route`` (coordinator, before each batch
send; retried under the routing :class:`RetryPolicy`) and
``cluster-migrate`` (coordinator, before placing shards on a migration
target; retried, then the target is treated as failed).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.shard_map import ShardMap
from repro.cluster.worker import ShardState, _encode_batch, worker_main
from repro.core.combine import combine_group_estimates
from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.durability.checkpoint import CheckpointManager, shard_checkpoint_dir
from repro.durability.retry import RetryPolicy, call_with_retry
from repro.durability.wal import BatchWAL
from repro.exceptions import CheckpointError, MembershipError, ShardMigrationError
from repro.testing.faults import InjectedFault, maybe_fail


class _WorkerDown(Exception):
    """Internal: worker ``worker_id`` can no longer be trusted (``reason``)."""

    def __init__(self, worker_id: int, reason: str) -> None:
        super().__init__(f"worker {worker_id} down: {reason}")
        self.worker_id = worker_id
        self.reason = reason


@dataclass
class _WorkerHandle:
    worker_id: int
    process: "multiprocessing.process.BaseProcess"
    conn: object
    outstanding: int = 0


_COUNTER_KEYS = (
    "worker_deaths",
    "worker_joins",
    "worker_removals",
    "shard_migrations",
    "routing_retries",
    "snapshot_rounds",
    "checkpoint_failures",
    "membership_errors",
    "migration_errors",
)


class ElasticCoordinator:
    """Route one REPT stream across an elastic pool of shard workers.

    Parameters
    ----------
    config:
        Validated REPT parameters; one shard per processor group.
    num_workers:
        Initial pool size.  0 starts fully inline (degraded from birth) —
        useful for tests, not the intended production mode.
    worker_timeout:
        Seconds to wait for a worker reply before declaring it hung.
    retry:
        Routing/migration retry policy (transient injected failures);
        worker death is never retried — it triggers migration instead.
    snapshot_every:
        Snapshot-round cadence in batches; also the WAL truncation cadence,
        so it bounds replay cost after a failure.
    wal_capacity:
        Retained-suffix bound; exceeding it forces a snapshot round.
    max_inflight:
        Unacknowledged batches tolerated per worker before routing blocks
        on acks (the drain window a migration must wait for).
    checkpoint_base:
        Optional directory for durable per-shard checkpoints
        (``<base>/shard-NNNN/``); snapshots stay purely in memory when
        omitted.
    """

    def __init__(
        self,
        config: ReptConfig,
        num_workers: int = 2,
        *,
        worker_timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        snapshot_every: int = 8,
        wal_capacity: int = 64,
        max_inflight: int = 8,
        checkpoint_base: Optional[str] = None,
    ) -> None:
        if num_workers < 0:
            raise MembershipError(f"num_workers must be >= 0, got {num_workers}")
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.config = config
        self.num_shards = len(config.group_sizes())
        self.worker_timeout = worker_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.snapshot_every = snapshot_every
        self.max_inflight = max_inflight
        self.checkpoint_base = checkpoint_base
        use_fork = "fork" in multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context("fork" if use_fork else None)
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._seq = 0
        self._records = 0
        self._closed = False
        self.wal = BatchWAL(capacity=wal_capacity)
        #: shard id -> (applied_seq, portable payload) of the newest snapshot.
        self._restore_points: Dict[int, Tuple[int, Dict[str, object]]] = {}
        self._inline: Dict[int, ShardState] = {}
        self._inline_interner = NodeInterner()
        self.counters: Dict[str, int] = {key: 0 for key in _COUNTER_KEYS}
        for _ in range(num_workers):
            self._spawn()
        self.shard_map = ShardMap(self.num_shards, list(self._workers))
        if self._workers:
            for worker_id, shard_ids in self.shard_map.by_worker().items():
                handle = self._workers[worker_id]
                for shard_id in shard_ids:
                    self._command(handle, ("assign", shard_id, None))
        else:
            for shard_id in range(self.num_shards):
                self._inline[shard_id] = ShardState(
                    config, shard_id, self._inline_interner
                )

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self) -> "ElasticCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker gracefully (terminate the unresponsive ones)."""
        if self._closed:
            return
        self._closed = True
        for worker_id in list(self._workers):
            handle = self._workers.get(worker_id)
            if handle is None:
                continue
            try:
                self._command(handle, ("stop",))
            except _WorkerDown:
                pass
            self._dispose(worker_id)

    # -- worker plumbing -------------------------------------------------------

    def _spawn(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, worker_id, self.config),
            daemon=True,
            name=f"rept-shard-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        self._workers[worker_id] = _WorkerHandle(worker_id, process, parent_conn)
        return worker_id

    def _dispose(self, worker_id: int) -> None:
        handle = self._workers.pop(worker_id, None)
        if handle is None:
            return
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)

    def _send(self, handle: _WorkerHandle, message: tuple) -> None:
        try:
            handle.conn.send(message)
        except (OSError, ValueError) as exc:
            raise _WorkerDown(handle.worker_id, f"send failed: {exc}") from exc
        handle.outstanding += 1

    def _read_reply(self, handle: _WorkerHandle) -> tuple:
        try:
            if not handle.conn.poll(self.worker_timeout):
                raise _WorkerDown(
                    handle.worker_id,
                    f"no reply within worker_timeout={self.worker_timeout}s (hang)",
                )
            reply = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerDown(handle.worker_id, f"pipe closed: {exc}") from exc
        handle.outstanding -= 1
        if reply[0] == "error":
            raise _WorkerDown(handle.worker_id, f"command failed: {reply[1]}")
        return reply

    def _drain(self, handle: _WorkerHandle) -> None:
        while handle.outstanding:
            self._read_reply(handle)

    def _command(self, handle: _WorkerHandle, message: tuple) -> tuple:
        """Send one command and return *its* reply (replies are ordered)."""
        self._send(handle, message)
        reply: tuple = ()
        while handle.outstanding:
            reply = self._read_reply(handle)
        return reply

    def flush(self) -> None:
        """Harvest every outstanding ack (handling failures found en route)."""
        for worker_id in list(self._workers):
            handle = self._workers.get(worker_id)
            if handle is None or not handle.outstanding:
                continue
            try:
                self._drain(handle)
            except _WorkerDown as down:
                self._handle_worker_failure(down.worker_id, down.reason)

    # -- observability ---------------------------------------------------------

    def worker_ids(self) -> List[int]:
        """Live worker ids, sorted (the shard map's membership view)."""
        return self.shard_map.workers

    def worker_pid(self, worker_id: int) -> int:
        """OS pid of a live worker — the chaos drills' SIGKILL target."""
        handle = self._workers.get(worker_id)
        if handle is None or handle.process.pid is None:
            raise MembershipError(f"worker {worker_id} is not running")
        return handle.process.pid

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL a worker without telling the coordinator (chaos helper).

        The death is *not* handled here — it surfaces at the next routing
        or drain interaction, exactly like an external kill would.
        """
        os.kill(self.worker_pid(worker_id), signal.SIGKILL)

    # -- ingestion -------------------------------------------------------------

    def submit(self, edges: Sequence) -> int:
        """Route one batch to every shard; returns records submitted.

        Counts every record (self-loops and duplicates included), matching
        the serial driver's ``edges_processed`` contract.
        """
        if self._closed:
            raise MembershipError("coordinator is closed")
        batch = list(edges)
        self._seq += 1
        seq = self._seq
        self._records += len(batch)
        self.wal.append(seq, batch)
        self._route(seq, batch)
        if seq % self.snapshot_every == 0 or self.wal.over_capacity:
            self._snapshot_round()
        return len(batch)

    def _route(self, seq: int, batch: list) -> None:
        for worker_id in list(self.shard_map.workers):
            handle = self._workers.get(worker_id)
            shard_ids = self.shard_map.shards_of(worker_id)
            if handle is None or not shard_ids:
                continue
            try:
                self._send_batch(handle, seq, shard_ids, batch)
            except _WorkerDown as down:
                # Migration replays the WAL suffix — which includes this
                # batch — onto the survivors, so the batch is still
                # delivered exactly once per shard.
                self._handle_worker_failure(down.worker_id, down.reason)
        if self._inline:
            self._apply_inline(seq, batch)

    def _send_batch(
        self, handle: _WorkerHandle, seq: int, shard_ids: List[int], batch: list
    ) -> None:
        def attempt() -> None:
            maybe_fail("cluster-route", worker=handle.worker_id, seq=seq)
            self._send(
                handle, ("batch", seq, self.shard_map.epoch, shard_ids, batch)
            )

        call_with_retry(
            attempt,
            self.retry,
            retry_on=(InjectedFault, OSError),
            on_retry=self._count_routing_retry,
        )
        while handle.outstanding > self.max_inflight:
            self._read_reply(handle)

    def _count_routing_retry(self, attempt: int, exc: BaseException) -> None:
        self.counters["routing_retries"] += 1

    def _apply_inline(self, seq: int, batch: list) -> None:
        cu, cv, edge_keys = _encode_batch(self._inline_interner, batch)
        for shard in self._inline.values():
            shard.apply_encoded(seq, cu, cv, edge_keys)

    # -- snapshots / durability ------------------------------------------------

    def _snapshot_round(self) -> None:
        """Refresh every shard's restore point, then truncate the WAL."""
        for worker_id in list(self.shard_map.workers):
            handle = self._workers.get(worker_id)
            shard_ids = self.shard_map.shards_of(worker_id)
            if handle is None or not shard_ids:
                continue
            try:
                _, portables = self._command(handle, ("snapshot", shard_ids))
            except _WorkerDown as down:
                self._handle_worker_failure(down.worker_id, down.reason)
                continue
            for shard_id, portable in portables.items():
                self._adopt_restore_point(shard_id, portable)
        for shard_id, shard in self._inline.items():
            self._adopt_restore_point(shard_id, shard.portable())
        if len(self._restore_points) == self.num_shards:
            self.wal.truncate_through(
                min(seq for seq, _ in self._restore_points.values())
            )
        self.counters["snapshot_rounds"] += 1

    def _adopt_restore_point(
        self, shard_id: int, portable: Dict[str, object]
    ) -> None:
        applied_seq = int(portable["applied_seq"])
        known = self._restore_points.get(shard_id)
        if known is not None and known[0] > applied_seq:
            return
        self._restore_points[shard_id] = (applied_seq, portable)
        if self.checkpoint_base is not None:
            try:
                manager = CheckpointManager(
                    shard_checkpoint_dir(self.checkpoint_base, shard_id), keep=2
                )
                manager.save(
                    portable,
                    stream_offset=applied_seq,
                    meta={
                        "shard_id": shard_id,
                        "m": self.config.m,
                        "c": self.config.c,
                        "seed": self.config.seed,
                    },
                )
            except CheckpointError:
                # Durability is belt-and-braces on top of the in-memory
                # restore point; a failed disk write must not fail routing.
                self.counters["checkpoint_failures"] += 1

    def _restore_point(self, shard_id: int) -> Tuple[int, Optional[Dict[str, object]]]:
        known = self._restore_points.get(shard_id)
        if known is not None:
            return known
        if self.checkpoint_base is not None:
            manager = CheckpointManager(
                shard_checkpoint_dir(self.checkpoint_base, shard_id), keep=2
            )
            report = manager.recover()
            checkpoint = report.checkpoint
            if checkpoint is not None and checkpoint.meta.get("shard_id") == shard_id:
                return (int(checkpoint.stream_offset), checkpoint.payload)
        return (0, None)

    # -- failure handling / migration ------------------------------------------

    def _handle_worker_failure(self, worker_id: int, reason: str) -> None:
        self._dispose(worker_id)
        if worker_id not in self.shard_map.workers:
            return  # already handled (double detection on one worker)
        self.counters["worker_deaths"] += 1
        moves = self.shard_map.remove_worker(worker_id)
        self._migrate(moves)

    def _migrate(self, moves: Dict[int, Optional[int]]) -> None:
        """Rebuild each moved shard on its new owner and replay the WAL suffix."""
        by_target: Dict[Optional[int], List[int]] = {}
        for shard_id, target in sorted(moves.items()):
            by_target.setdefault(target, []).append(shard_id)
        for target in sorted(by_target, key=lambda t: (t is None, t)):
            shard_ids = by_target[target]
            if target is None:
                for shard_id in shard_ids:
                    self._restore_inline(shard_id)
                self.counters["shard_migrations"] += len(shard_ids)
                continue
            handle = self._workers.get(target)
            if handle is None:
                raise ShardMigrationError(
                    f"shard map names worker {target} but it has no process"
                )
            try:
                self._place_shards(handle, shard_ids)
            except _WorkerDown as down:
                # The target itself failed: its removal re-orphans these
                # shards (the map already assigned them to it) plus its own,
                # and recursion places them on the remaining pool.
                self._handle_worker_failure(down.worker_id, down.reason)
                continue
            self.counters["shard_migrations"] += len(shard_ids)

    def _place_shards(self, handle: _WorkerHandle, shard_ids: List[int]) -> None:
        restores = {sid: self._restore_point(sid) for sid in shard_ids}
        min_seq = min(seq for seq, _ in restores.values())
        try:
            entries = self.wal.entries_after(min_seq)
        except LookupError as exc:
            self.counters["migration_errors"] += 1
            raise ShardMigrationError(
                f"cannot migrate shards {shard_ids} to worker "
                f"{handle.worker_id}: {exc}"
            ) from exc

        def attempt() -> None:
            maybe_fail("cluster-migrate", worker=handle.worker_id)

        try:
            call_with_retry(
                attempt,
                self.retry,
                retry_on=(InjectedFault, OSError),
                on_retry=self._count_routing_retry,
            )
        except (InjectedFault, OSError) as exc:
            self.counters["migration_errors"] += 1
            raise _WorkerDown(
                handle.worker_id, f"migration retries exhausted: {exc}"
            ) from exc
        for shard_id in shard_ids:
            self._command(handle, ("assign", shard_id, restores[shard_id][1]))
        epoch = self.shard_map.epoch
        for entry in entries:
            self._send(handle, ("batch", entry.seq, epoch, shard_ids, entry.batch))
            while handle.outstanding > self.max_inflight:
                self._read_reply(handle)
        self._drain(handle)

    def _restore_inline(self, shard_id: int) -> None:
        seq, portable = self._restore_point(shard_id)
        shard = ShardState(self.config, shard_id, self._inline_interner)
        if portable is not None:
            shard.restore(portable)
        try:
            entries = self.wal.entries_after(seq)
        except LookupError as exc:
            self.counters["migration_errors"] += 1
            raise ShardMigrationError(
                f"cannot host shard {shard_id} inline: {exc}"
            ) from exc
        for entry in entries:
            shard.apply_raw(entry.seq, entry.batch)
        self._inline[shard_id] = shard

    # -- membership ------------------------------------------------------------

    def add_worker(self) -> int:
        """Spawn a worker and live-migrate its fair share of shards onto it."""
        if self._closed:
            raise MembershipError("coordinator is closed")
        self.flush()
        worker_id = self._spawn()
        try:
            moves = self.shard_map.add_worker(worker_id)
        except MembershipError:
            self.counters["membership_errors"] += 1
            self._dispose(worker_id)
            raise
        # Freshen the restore points of the moving shards from their donors
        # (a live migration must carry current state, not the last snapshot
        # round's), then place them through the normal migration machinery.
        donors: Dict[Optional[int], List[int]] = {}
        for shard_id, (donor, _target) in moves.items():
            donors.setdefault(donor, []).append(shard_id)
        for donor, shard_ids in donors.items():
            if donor is None:
                for shard_id in shard_ids:
                    shard = self._inline.get(shard_id)
                    if shard is not None:
                        self._adopt_restore_point(shard_id, shard.portable())
                continue
            donor_handle = self._workers.get(donor)
            if donor_handle is None:
                continue
            try:
                _, portables = self._command(donor_handle, ("snapshot", shard_ids))
            except _WorkerDown as down:
                self._handle_worker_failure(down.worker_id, down.reason)
                continue
            for shard_id, portable in portables.items():
                self._adopt_restore_point(shard_id, portable)
        # Recompute from the map: donor failures above may have re-homed
        # some shards already.
        placement = {
            shard_id: self.shard_map.owner(shard_id)
            for shard_id in moves
            if self.shard_map.owner(shard_id) == worker_id
        }
        self._migrate(placement)
        # Release the moved shards on their (still live) donors.
        for donor, shard_ids in donors.items():
            if donor is None:
                for shard_id in shard_ids:
                    self._inline.pop(shard_id, None)
                continue
            donor_handle = self._workers.get(donor)
            if donor_handle is None:
                continue
            try:
                self._command(donor_handle, ("drop", shard_ids))
            except _WorkerDown as down:
                self._handle_worker_failure(down.worker_id, down.reason)
        self.counters["worker_joins"] += 1
        return worker_id

    def remove_worker(self, worker_id: int) -> None:
        """Gracefully retire a worker, migrating its shards off first.

        Refuses (``MembershipError``) to remove an unknown worker or the
        last live one — worker *death* degrades to inline hosting, but an
        operator-requested removal of the final worker is almost certainly
        a mistake.
        """
        if worker_id not in self.shard_map.workers:
            self.counters["membership_errors"] += 1
            raise MembershipError(f"worker {worker_id} is not a member")
        if len(self.shard_map.workers) == 1:
            self.counters["membership_errors"] += 1
            raise MembershipError(
                "refusing to remove the last live worker; "
                "shard hosting would become inline-only"
            )
        self.flush()
        handle = self._workers.get(worker_id)
        shard_ids = self.shard_map.shards_of(worker_id)
        if handle is not None and shard_ids:
            try:
                _, portables = self._command(handle, ("snapshot", shard_ids))
            except _WorkerDown as down:
                self._handle_worker_failure(down.worker_id, down.reason)
                return
            for shard_id, portable in portables.items():
                self._adopt_restore_point(shard_id, portable)
        if handle is not None:
            try:
                self._command(handle, ("stop",))
            except _WorkerDown:
                pass
        self._dispose(worker_id)
        moves = self.shard_map.remove_worker(worker_id)
        self._migrate(moves)
        self.counters["worker_removals"] += 1

    # -- aggregates ------------------------------------------------------------

    def estimate(self):
        """Combine every shard's counters into the global TriangleEstimate.

        Read-only with respect to shard state; failures discovered while
        gathering are recovered (migrate + replay) and the gather restarts,
        so the returned estimate always covers every submitted batch.
        """
        self.flush()
        for _ in range(self.num_shards + len(self._workers) + 2):
            summaries = {
                shard_id: shard.summary()
                for shard_id, shard in self._inline.items()
            }
            failed = False
            for worker_id in list(self.shard_map.workers):
                handle = self._workers.get(worker_id)
                if handle is None:
                    continue
                try:
                    _, per_shard = self._command(handle, ("summaries",))
                except _WorkerDown as down:
                    self._handle_worker_failure(down.worker_id, down.reason)
                    failed = True
                    break
                for shard_id, (_applied_seq, summary) in per_shard.items():
                    if shard_id in self.shard_map.shards_of(worker_id):
                        summaries[shard_id] = summary
            if not failed:
                break
        else:
            raise ShardMigrationError(
                "could not gather a consistent summary round: "
                "workers kept failing"
            )
        missing = [s for s in range(self.num_shards) if s not in summaries]
        if missing:
            raise ShardMigrationError(f"no live replica of shards {missing}")
        ordered = [summaries[shard_id] for shard_id in range(self.num_shards)]
        estimate = combine_group_estimates(
            ordered,
            m=self.config.m,
            c=self.config.c,
            edges_processed=self._records,
            track_local=self.config.track_local,
            eta_tracked=bool(self.config.track_eta),
        )
        estimate.metadata.update(
            {key: float(value) for key, value in self.counters.items()}
        )
        estimate.metadata["workers"] = float(len(self.shard_map.workers))
        estimate.metadata["shard_map_epoch"] = float(self.shard_map.epoch)
        estimate.metadata["inline_shards"] = float(len(self._inline))
        estimate.metadata["degraded"] = 1.0 if self._inline else 0.0
        # The coordinator's own resolution; remote hosts re-resolve locally
        # but all kernels are bit-identical, so one label describes the run.
        from repro.core.kernel import resolve_kernel

        estimate.metadata["kernel"] = resolve_kernel(
            getattr(self.config, "kernel", "auto"), max(self.config.group_sizes())
        )
        return estimate

    # -- portable state (service engine) ---------------------------------------

    def portable_state(self) -> Dict[str, object]:
        """Cluster state in :meth:`GroupStateSet.portable_state` format.

        All shards share one ``seen`` set by construction (each consumes
        the full stream), so the result is interchangeable with a serial
        state set's — a checkpoint taken from the cluster restores into a
        serial engine and vice versa.
        """
        self.flush()
        # A worker failing mid-round leaves its shards' restore points one
        # snapshot behind (migration replayed the live state, but the
        # *recorded* point is the older one) — re-run the round until every
        # shard reports the same applied offset.
        for _ in range(self.num_shards + 2):
            self._snapshot_round()
            offsets = {
                seq for seq, _ in (
                    self._restore_points[s] for s in range(self.num_shards)
                )
            }
            if len(offsets) == 1:
                break
        else:
            raise ShardMigrationError(
                f"shards disagree on applied offsets {sorted(offsets)}; "
                "snapshot rounds kept tearing"
            )
        portables = [self._restore_points[s][1] for s in range(self.num_shards)]
        return {
            "snapshots": [portable["snapshot"] for portable in portables],
            "seen": list(portables[0]["seen"]),
        }

    def restore_portable(
        self, state: Dict[str, object], edges_processed: Optional[int] = None
    ) -> None:
        """Adopt a portable state (from this cluster or a serial state set)."""
        snapshots = state["snapshots"]
        if len(snapshots) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} group snapshots, got {len(snapshots)}"
            )
        self.flush()
        seen = list(state["seen"])
        for shard_id in range(self.num_shards):
            portable = {
                "shard_id": shard_id,
                "applied_seq": self._seq,
                "snapshot": snapshots[shard_id],
                "seen": seen,
            }
            self._restore_points[shard_id] = (self._seq, portable)
            owner = self.shard_map.owner(shard_id)
            if owner is None:
                shard = ShardState(self.config, shard_id, self._inline_interner)
                shard.restore(portable)
                self._inline[shard_id] = shard
            else:
                handle = self._workers[owner]
                try:
                    self._command(handle, ("assign", shard_id, portable))
                except _WorkerDown as down:
                    self._handle_worker_failure(down.worker_id, down.reason)
        self.wal.truncate_through(self.wal.last_seq)
        if edges_processed is not None:
            self._records = int(edges_processed)
