"""Versioned shard-to-worker assignment with deterministic rebalancing.

A *shard* is one processor group of a REPT configuration — the natural
migration unit, because each group's counters are a deterministic function
of (stream, group hash seed, group size) alone, independent of every other
group.  The :class:`ShardMap` owns the pure bookkeeping: which worker owns
which shard, under which *epoch* (a version number bumped on every
membership change so stale routing decisions are detectable), and how the
assignment changes when workers join or leave.

Rebalancing is deterministic and minimal-movement:

* the initial placement round-robins shard ids over sorted worker ids;
* a **join** steals the highest-numbered shard from the currently
  most-loaded worker (ties broken by smallest worker id) until the new
  worker is within one shard of the donors — no shard moves between two
  surviving workers;
* a **leave** hands each orphaned shard (in shard-id order) to the
  currently least-loaded survivor (ties broken by smallest worker id);
  when the last worker leaves, shards become unowned (``owner`` is None)
  and the coordinator degrades to inline execution.

Every mutation returns the exact move list so the coordinator can migrate
precisely the shards that changed hands, and nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import MembershipError


class ShardMap:
    """Assignment of ``num_shards`` shard ids to a dynamic worker set."""

    def __init__(self, num_shards: int, worker_ids: List[int]) -> None:
        if num_shards < 1:
            raise MembershipError(f"need at least one shard, got {num_shards}")
        if len(set(worker_ids)) != len(worker_ids):
            raise MembershipError(f"duplicate worker ids in {worker_ids}")
        self.num_shards = num_shards
        self.epoch = 1
        self._workers = sorted(worker_ids)
        self._assignment: Dict[int, Optional[int]] = {}
        if self._workers:
            for shard in range(num_shards):
                self._assignment[shard] = self._workers[shard % len(self._workers)]
        else:
            for shard in range(num_shards):
                self._assignment[shard] = None

    # -- queries -------------------------------------------------------------

    @property
    def workers(self) -> List[int]:
        """Live worker ids, sorted."""
        return list(self._workers)

    def owner(self, shard: int) -> Optional[int]:
        """The worker owning ``shard`` (None = unowned, pool is empty)."""
        try:
            return self._assignment[shard]
        except KeyError:
            raise MembershipError(
                f"unknown shard {shard} (map has {self.num_shards})"
            ) from None

    def shards_of(self, worker_id: int) -> List[int]:
        """Shard ids owned by ``worker_id``, sorted."""
        return sorted(
            shard for shard, owner in self._assignment.items() if owner == worker_id
        )

    def assignment(self) -> Dict[int, Optional[int]]:
        """A copy of the full shard → worker mapping."""
        return dict(self._assignment)

    def by_worker(self) -> Dict[int, List[int]]:
        """Routing view: worker id → sorted shard ids (unowned excluded)."""
        routes: Dict[int, List[int]] = {worker: [] for worker in self._workers}
        for shard in range(self.num_shards):
            owner = self._assignment[shard]
            if owner is not None:
                routes[owner].append(shard)
        return routes

    def _loads(self) -> Dict[int, int]:
        loads = {worker: 0 for worker in self._workers}
        for owner in self._assignment.values():
            if owner in loads:
                loads[owner] += 1
        return loads

    # -- membership changes --------------------------------------------------

    def add_worker(self, worker_id: int) -> Dict[int, Tuple[Optional[int], int]]:
        """Admit ``worker_id``; returns ``{shard: (donor, worker_id)}`` moves.

        Donor is None for shards that were unowned (the pool was empty).
        Bumps the epoch even when nothing moves — membership itself changed.
        """
        if worker_id in self._workers:
            raise MembershipError(f"worker {worker_id} is already a member")
        self._workers = sorted(self._workers + [worker_id])
        moves: Dict[int, Tuple[Optional[int], int]] = {}
        for shard in range(self.num_shards):
            if self._assignment[shard] is None:
                self._assignment[shard] = worker_id
                moves[shard] = (None, worker_id)
        while True:
            loads = self._loads()
            peak = max(loads.values())
            if loads[worker_id] >= peak - 1:
                break
            donor = min(w for w, load in loads.items() if load == peak)
            shard = max(self.shards_of(donor))
            self._assignment[shard] = worker_id
            moves[shard] = (donor, worker_id)
        self.epoch += 1
        return moves

    def remove_worker(self, worker_id: int) -> Dict[int, Optional[int]]:
        """Retire ``worker_id``; returns ``{orphan shard: new owner}``.

        New owner is None when the last worker left — the coordinator is
        then responsible for hosting the shards inline.
        """
        if worker_id not in self._workers:
            raise MembershipError(f"worker {worker_id} is not a member")
        orphans = self.shards_of(worker_id)
        self._workers = [w for w in self._workers if w != worker_id]
        for shard in orphans:
            self._assignment[shard] = None
        moves: Dict[int, Optional[int]] = {}
        for shard in orphans:
            if self._workers:
                loads = self._loads()
                # Orphans placed so far count toward load, levelling as we go.
                trough = min(loads[w] for w in self._workers)
                target: Optional[int] = min(
                    w for w in self._workers if loads[w] == trough
                )
            else:
                target = None
            self._assignment[shard] = target
            moves[shard] = target
        self.epoch += 1
        return moves
