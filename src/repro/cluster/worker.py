"""Shard-hosting worker runtime for the elastic coordinator.

One worker process hosts any number of :class:`ShardState` objects — each
a single processor group plus its own stream-global first-occurrence set —
and serves an ordered command protocol over a ``multiprocessing`` pipe.
Because every shard's counters depend only on (stream, group hash seed,
group size), a shard computes the same bits on any worker, and a shard
restored from its portable snapshot continues bit-identically even though
the receiving worker's interning order differs (slot assignment keys on
raw node identity throughout).

Idempotence is the replay contract: every batch carries a routing sequence
number, every shard remembers ``applied_seq``, and :meth:`ShardState.apply_encoded`
skips batches at or below it.  The coordinator can therefore replay a WAL
suffix after migration without double-counting, whatever the shard's exact
restore point was.

The command protocol (one pipe per worker, strictly ordered replies):

====================================  =========================================
command                               reply
====================================  =========================================
``("assign", shard_id, portable)``    ``("ok", "assign", shard_id)``
``("batch", seq, epoch, ids, edges)`` ``("ack", seq, epoch, applied_ids)``
``("snapshot", ids)``                 ``("snapshots", {id: portable})``
``("drop", ids)``                     ``("ok", "drop", ids)``
``("summaries",)``                    ``("summaries", {id: (seq, summary)})``
``("ping",)``                         ``("pong", worker_id, shard_ids)``
``("stop",)``                         ``("bye", worker_id)`` then exit
====================================  =========================================

Fault-injection sites ``cluster-worker-batch`` (keys: worker, seq) and
``cluster-worker-snapshot`` (key: worker) let chaos drills kill, hang, or
fail a worker at the two state-bearing moments.  Any exception inside a
command handler is reported as ``("error", message)`` — the coordinator
treats that worker as failed and migrates its shards.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.config import ReptConfig
from repro.core.interning import NodeInterner
from repro.core.state import first_flags
from repro.testing.faults import maybe_fail


class ShardState:
    """One migratable processor-group shard hosted on a worker.

    Parameters
    ----------
    config:
        The REPT configuration; the shard's hash seed and group size are
        derived from it by ``shard_id``, so any process building a
        ShardState from the same config computes identical counters.
    shard_id:
        Group index in ``config.group_sizes()`` — the stable identity the
        shard keeps across migrations.
    interner:
        The hosting worker's shared interning table (private when omitted).
    """

    def __init__(
        self,
        config: ReptConfig,
        shard_id: int,
        interner: Optional[NodeInterner] = None,
    ) -> None:
        from repro.hashing import make_hash_function

        sizes = config.group_sizes()
        if not 0 <= shard_id < len(sizes):
            raise ValueError(
                f"shard_id {shard_id} out of range for {len(sizes)} groups"
            )
        self.config = config
        self.shard_id = shard_id
        self.interner = interner if interner is not None else NodeInterner()
        hash_function = make_hash_function(
            config.hash_kind,
            buckets=config.m,
            seed=config.group_hash_seeds()[shard_id],
        )
        # Kernel resolution happens here, in the hosting process: compiled
        # handles do not travel, and all kernels are bit-identical, so a
        # shard may migrate between differently-resolved hosts freely.
        from repro.core.adjacency import make_processor_group

        self.group = make_processor_group(
            hash_function=hash_function,
            group_size=sizes[shard_id],
            m=config.m,
            track_local=config.track_local,
            track_eta=bool(config.track_eta),
            interner=self.interner,
            kernel=getattr(config, "kernel", "auto"),
        )
        #: First-occurrence scope.  Per-shard (not per-worker!) so the flags
        #: survive migration: a shard's ``seen`` travels in its portable
        #: state, while the other shards on the same worker keep their own.
        self.seen: Set[Tuple[int, int]] = set()
        self.applied_seq = 0

    # -- ingestion ------------------------------------------------------------

    def apply_encoded(self, seq: int, cu, cv, edge_keys) -> bool:
        """Advance the shard with one encoded batch; False = already applied.

        ``cu``/``cv``/``edge_keys`` come from one per-worker encoding of the
        raw batch (shared across all shards the worker hosts); first flags
        and hash buckets are derived per shard.  The sequence guard makes
        WAL replay after migration idempotent.
        """
        if seq <= self.applied_seq:
            return False
        if cu:
            slots = self.group.hash_function.bucket_from_keys(edge_keys).tolist()
            firsts = first_flags(self.seen, cu, cv)
            self.group.process_encoded(cu, cv, slots, firsts)
        self.applied_seq = seq
        return True

    def apply_raw(self, seq: int, edges: Sequence) -> bool:
        """Encode and apply one raw batch (inline-host and test convenience)."""
        cu, cv, _firsts, _n = self.interner.encode_pairs(edges, None)
        edge_keys = self.interner.edge_key_array(cu, cv) if cu else None
        return self.apply_encoded(seq, cu, cv, edge_keys)

    # -- migration ------------------------------------------------------------

    def portable(self) -> Dict[str, object]:
        """Raw-keyed, picklable state: everything a migration must carry."""
        nodes = self.interner.nodes
        return {
            "shard_id": self.shard_id,
            "applied_seq": self.applied_seq,
            "snapshot": self.group.snapshot(),
            "seen": [(nodes[iu], nodes[iv]) for iu, iv in self.seen],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`portable` payload produced on any worker."""
        if state["shard_id"] != self.shard_id:
            raise ValueError(
                f"portable state is for shard {state['shard_id']}, "
                f"this is shard {self.shard_id}"
            )
        self.group.restore(state["snapshot"])
        intern = self.interner.intern
        self.seen = set()
        add = self.seen.add
        for u, v in state["seen"]:
            iu = intern(u)
            iv = intern(v)
            add((iu, iv) if iu < iv else (iv, iu))
        self.applied_seq = int(state["applied_seq"])

    # -- aggregates -----------------------------------------------------------

    def summary(self):
        """Raw-keyed :class:`~repro.core.combine.GroupSummary` for this shard."""
        is_complete = (
            self.config.uses_groups and self.group.group_size == self.config.m
        )
        return self.group.summarise(is_complete)


def _encode_batch(interner: NodeInterner, edges: Sequence):
    cu, cv, _firsts, _n = interner.encode_pairs(edges, None)
    edge_keys = interner.edge_key_array(cu, cv) if cu else None
    return cu, cv, edge_keys


def worker_main(conn, worker_id: int, config: ReptConfig) -> None:
    """Blocking command loop of one shard-hosting worker process."""
    interner = NodeInterner()
    shards: Dict[int, ShardState] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        try:
            if op == "assign":
                _, shard_id, portable = message
                shard = ShardState(config, shard_id, interner)
                if portable is not None:
                    shard.restore(portable)
                shards[shard_id] = shard
                conn.send(("ok", "assign", shard_id))
            elif op == "batch":
                _, seq, epoch, shard_ids, edges = message
                maybe_fail("cluster-worker-batch", worker=worker_id, seq=seq)
                cu, cv, edge_keys = _encode_batch(interner, edges)
                applied = [
                    shard_id
                    for shard_id in shard_ids
                    if shards[shard_id].apply_encoded(seq, cu, cv, edge_keys)
                ]
                conn.send(("ack", seq, epoch, applied))
            elif op == "snapshot":
                _, shard_ids = message
                maybe_fail("cluster-worker-snapshot", worker=worker_id)
                conn.send(
                    (
                        "snapshots",
                        {sid: shards[sid].portable() for sid in shard_ids},
                    )
                )
            elif op == "drop":
                _, shard_ids = message
                for shard_id in shard_ids:
                    shards.pop(shard_id, None)
                conn.send(("ok", "drop", list(shard_ids)))
            elif op == "summaries":
                conn.send(
                    (
                        "summaries",
                        {
                            shard_id: (shard.applied_seq, shard.summary())
                            for shard_id, shard in shards.items()
                        },
                    )
                )
            elif op == "ping":
                conn.send(("pong", worker_id, sorted(shards)))
            elif op == "stop":
                conn.send(("bye", worker_id))
                break
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except SystemExit:
            raise
        except BaseException as exc:
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except OSError:
                break
    try:
        conn.close()
    except OSError:
        pass
