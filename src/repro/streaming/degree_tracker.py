"""One-pass degree and wedge-count tracking.

Clustering-coefficient applications need the wedge count ``Σ_v C(d_v, 2)``
next to the (estimated) triangle count.  Degrees are cheap to maintain
exactly in one pass — one counter per node — so this tracker runs alongside
any estimator and provides the exact denominators without a second pass
over the stream.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.types import EdgeTuple, NodeId, canonical_edge


class DegreeTracker:
    """Exact degree, node and wedge counting over a stream.

    Duplicate observations of the same undirected edge are ignored (the
    aggregate graph is simple), which requires remembering the distinct
    edge set — the same Θ(|E|) memory the exact triangle counter uses.  For
    a memory-bounded variant feed the tracker a deduplicated stream instead.
    """

    def __init__(self) -> None:
        self._degrees: Dict[NodeId, int] = {}
        self._seen_edges = set()
        self.edges_processed = 0

    def process_edge(self, u: NodeId, v: NodeId) -> None:
        """Observe one stream edge."""
        self.edges_processed += 1
        if u == v:
            return
        key = canonical_edge(u, v)
        if key in self._seen_edges:
            return
        self._seen_edges.add(key)
        self._degrees[u] = self._degrees.get(u, 0) + 1
        self._degrees[v] = self._degrees.get(v, 0) + 1

    def process_stream(self, edges: Iterable[EdgeTuple]) -> "DegreeTracker":
        """Observe every edge of ``edges``; returns self for chaining."""
        for u, v in edges:
            self.process_edge(u, v)
        return self

    # -- queries -------------------------------------------------------------

    def degree(self, node: NodeId) -> int:
        """Exact degree of ``node`` in the aggregate graph (0 if unseen)."""
        return self._degrees.get(node, 0)

    def degrees(self) -> Dict[NodeId, int]:
        """Mapping node -> exact degree (a copy)."""
        return dict(self._degrees)

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes observed."""
        return len(self._degrees)

    @property
    def num_distinct_edges(self) -> int:
        """Number of distinct undirected edges observed."""
        return len(self._seen_edges)

    @property
    def num_wedges(self) -> int:
        """Exact wedge count ``Σ_v C(d_v, 2)`` of the aggregate graph."""
        return sum(d * (d - 1) // 2 for d in self._degrees.values())

    @property
    def max_degree(self) -> int:
        """Largest degree observed (0 for an empty stream)."""
        return max(self._degrees.values(), default=0)
