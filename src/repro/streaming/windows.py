"""Time-interval windowing of timestamped edge streams.

The paper motivates interval-based analysis: "Π is a network packet stream
collected on a router in a time interval (e.g., one hour in a day), and one
wants to compute global and local triangle counts for each interval."
:class:`TimeWindowedStream` slices a timestamped record sequence into
fixed-width windows, each of which is an ordinary :class:`EdgeStream` that
any estimator in this library can consume.

Boundary semantics
------------------
Every interval in this module is **half-open**: window ``k`` covers
``[origin + k·w, origin + (k+1)·w)``.  A record whose timestamp equals a
window's right edge belongs to the *next* window — including the final
one: when bounds are derived from the data, a record landing exactly on
the last window's right edge gets a fresh window of its own rather than
being silently dropped (regression-tested).  When explicit bounds are
given, records outside the covered span follow the ``out_of_range``
policy — never a silent drop.

This class slices a *materialised* record sequence, so out-of-order
delivery is handled by sorting.  The streaming counterpart — watermarks,
bounded lateness, merge-based window advance — lives in
:class:`repro.streaming.monitor.WindowedTriangleMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.streaming.edge_stream import EdgeStream
from repro.types import NodeId

#: Accepted ``out_of_range`` policies: fail loudly, or drop with a count.
OUT_OF_RANGE_POLICIES = ("raise", "drop")


@dataclass(frozen=True)
class TimestampedRecord:
    """One observed interaction: an edge plus a real-valued timestamp."""

    u: NodeId
    v: NodeId
    time: float


class TimeWindowedStream:
    """Slice timestamped records into consecutive fixed-width windows.

    Parameters
    ----------
    records:
        Iterable of :class:`TimestampedRecord` (or ``(u, v, time)`` tuples).
        Records are sorted by time internally, so out-of-order delivery is
        tolerated.
    window_seconds:
        Width of each window.
    name:
        Base name for the produced window streams.
    origin:
        Left edge of window 0.  Default: the earliest record's timestamp.
        Pass an absolute origin (e.g. the top of the hour) to align windows
        to wall-clock boundaries.
    end:
        Explicit right edge of the covered span.  Default: derived so every
        record is covered.  With an explicit ``end``, the covered span is
        ``[origin, origin + ceil((end - origin)/w)·w)`` — the final window
        may extend past ``end`` when the width does not divide the span —
        and records outside it follow ``out_of_range``.
    out_of_range:
        What to do with records outside the covered span when explicit
        bounds are given: ``"raise"`` (default) raises :class:`ValueError`,
        ``"drop"`` discards them and counts them in
        :attr:`records_out_of_range`.  Bounds derived from the data cover
        every record, so the policy never fires in that case.
    """

    def __init__(
        self,
        records: Iterable,
        window_seconds: float,
        name: str = "windowed",
        origin: Optional[float] = None,
        end: Optional[float] = None,
        out_of_range: str = "raise",
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if out_of_range not in OUT_OF_RANGE_POLICIES:
            raise ValueError(
                f"out_of_range must be one of {OUT_OF_RANGE_POLICIES}, "
                f"got {out_of_range!r}"
            )
        normalised: List[TimestampedRecord] = []
        for record in records:
            if isinstance(record, TimestampedRecord):
                normalised.append(record)
            else:
                u, v, time = record
                normalised.append(TimestampedRecord(u, v, float(time)))
        normalised.sort(key=lambda r: r.time)
        self.window_seconds = float(window_seconds)
        self.name = name
        self.out_of_range = out_of_range
        #: Records discarded by the ``"drop"`` policy (explicit bounds only).
        self.records_out_of_range = 0

        if origin is None:
            origin = normalised[0].time if normalised else 0.0
        self.origin = float(origin)
        if end is not None:
            if end <= self.origin:
                raise ValueError(
                    f"end ({end}) must be greater than origin ({self.origin})"
                )
            width = self.window_seconds
            span = float(end) - self.origin
            num_windows = int(span // width) + (1 if span % width else 0)
            self._num_windows = max(1, num_windows)
            self._explicit_bounds = True
        else:
            self._num_windows = 0  # derived lazily from the records below
            self._explicit_bounds = False

        self._records = self._filter_in_range(normalised)
        if not self._explicit_bounds:
            if self._records:
                last = self._records[-1].time
                self._num_windows = int((last - self.origin) // self.window_seconds) + 1
            else:
                self._num_windows = 0

    def _filter_in_range(
        self, records: List[TimestampedRecord]
    ) -> List[TimestampedRecord]:
        """Apply the half-open span check (explicit bounds or explicit origin)."""
        if not records:
            return records
        width = self.window_seconds
        origin = self.origin
        limit = (
            origin + self._num_windows * width if self._explicit_bounds else None
        )
        kept: List[TimestampedRecord] = []
        for record in records:
            below = record.time < origin
            above = limit is not None and record.time >= limit
            if below or above:
                if self.out_of_range == "raise":
                    bound = (
                        f"[{origin}, {limit})"
                        if limit is not None
                        else f"[{origin}, ∞)"
                    )
                    raise ValueError(
                        f"record ({record.u!r}, {record.v!r}) at t={record.time} "
                        f"falls outside the half-open covered span {bound}"
                    )
                self.records_out_of_range += 1
                continue
            kept.append(record)
        return kept

    def __len__(self) -> int:
        """Number of windows in the covered span (0 when empty and unbounded)."""
        return self._num_windows

    def records(self) -> List[TimestampedRecord]:
        """The in-range records, sorted by timestamp."""
        return list(self._records)

    def _buckets(
        self, width: float, count: int
    ) -> List[List[Tuple[NodeId, NodeId]]]:
        """Assign records to ``count`` half-open intervals of ``width``.

        Self-loops are dropped (they carry no triangle information).
        """
        origin = self.origin
        last = count - 1
        buckets: List[List[Tuple[NodeId, NodeId]]] = [[] for _ in range(count)]
        for record in self._records:
            index = int((record.time - origin) // width)
            if index > last:
                # Guards float pathology only: an in-range record (t < the
                # covered span's right edge) whose floor-division rounds up.
                index = last
            if record.u != record.v:
                buckets[index].append((record.u, record.v))
        return buckets

    def windows(self) -> Iterator[Tuple[float, float, EdgeStream]]:
        """Yield ``(window_start, window_end, stream)`` triples in time order.

        Windows are half-open ``[start, end)``.  Empty windows are still
        yielded (with empty streams) so downstream per-interval series stay
        aligned with time.
        """
        width = self.window_seconds
        origin = self.origin
        for index, edges in enumerate(self._buckets(width, self._num_windows)):
            start = origin + index * width
            yield (
                start,
                start + width,
                EdgeStream(edges, name=f"{self.name}[{index}]", validate=False),
            )

    def panes(
        self, pane_seconds: Optional[float] = None
    ) -> Iterator[Tuple[float, float, EdgeStream]]:
        """Yield pane-aligned ``(start, end, stream)`` triples in time order.

        Panes are half-open intervals of ``pane_seconds`` (default: the
        window width) aligned at :attr:`origin`, covering the same span as
        :meth:`windows`; a sliding-window consumer re-assembles windows
        from consecutive panes (see
        :class:`repro.streaming.monitor.WindowedTriangleMonitor`).
        ``pane_seconds`` must evenly divide the window width so pane edges
        line up with window edges.
        """
        width = self.window_seconds
        if pane_seconds is None:
            pane_seconds = width
        pane_seconds = float(pane_seconds)
        if pane_seconds <= 0:
            raise ValueError("pane_seconds must be positive")
        ratio = width / pane_seconds
        panes_per_window = int(round(ratio))
        if panes_per_window < 1 or abs(ratio - panes_per_window) > 1e-9:
            raise ValueError(
                f"pane_seconds ({pane_seconds}) must evenly divide "
                f"window_seconds ({width})"
            )
        count = self._num_windows * panes_per_window
        origin = self.origin
        for index, edges in enumerate(self._buckets(pane_seconds, count)):
            start = origin + index * pane_seconds
            yield (
                start,
                start + pane_seconds,
                EdgeStream(edges, name=f"{self.name}.pane[{index}]", validate=False),
            )

    def window_streams(self) -> List[EdgeStream]:
        """Return just the per-window edge streams, in time order."""
        return [stream for _, _, stream in self.windows()]
