"""Time-interval windowing of timestamped edge streams.

The paper motivates interval-based analysis: "Π is a network packet stream
collected on a router in a time interval (e.g., one hour in a day), and one
wants to compute global and local triangle counts for each interval."
:class:`TimeWindowedStream` slices a timestamped record sequence into
fixed-width windows, each of which is an ordinary :class:`EdgeStream` that
any estimator in this library can consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.streaming.edge_stream import EdgeStream
from repro.types import NodeId


@dataclass(frozen=True)
class TimestampedRecord:
    """One observed interaction: an edge plus a real-valued timestamp."""

    u: NodeId
    v: NodeId
    time: float


class TimeWindowedStream:
    """Slice timestamped records into consecutive fixed-width windows.

    Parameters
    ----------
    records:
        Iterable of :class:`TimestampedRecord` (or ``(u, v, time)`` tuples).
        Records are sorted by time internally, so out-of-order delivery is
        tolerated.
    window_seconds:
        Width of each window.
    name:
        Base name for the produced window streams.
    """

    def __init__(
        self,
        records: Iterable,
        window_seconds: float,
        name: str = "windowed",
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        normalised: List[TimestampedRecord] = []
        for record in records:
            if isinstance(record, TimestampedRecord):
                normalised.append(record)
            else:
                u, v, time = record
                normalised.append(TimestampedRecord(u, v, float(time)))
        normalised.sort(key=lambda r: r.time)
        self._records = normalised
        self.window_seconds = float(window_seconds)
        self.name = name

    def __len__(self) -> int:
        """Number of windows spanned by the records (0 when empty)."""
        if not self._records:
            return 0
        start = self._records[0].time
        end = self._records[-1].time
        return int((end - start) // self.window_seconds) + 1

    def windows(self) -> Iterator[Tuple[float, float, EdgeStream]]:
        """Yield ``(window_start, window_end, stream)`` triples in time order.

        Self-loops are dropped from the produced streams since they carry no
        triangle information.  Empty windows are still yielded (with empty
        streams) so downstream per-interval series stay aligned with time.
        """
        if not self._records:
            return
        origin = self._records[0].time
        width = self.window_seconds
        buckets: List[List[Tuple[NodeId, NodeId]]] = [[] for _ in range(len(self))]
        for record in self._records:
            index = int((record.time - origin) // width)
            if record.u != record.v:
                buckets[index].append((record.u, record.v))
        for index, edges in enumerate(buckets):
            start = origin + index * width
            yield (
                start,
                start + width,
                EdgeStream(edges, name=f"{self.name}[{index}]", validate=False),
            )

    def window_streams(self) -> List[EdgeStream]:
        """Return just the per-window edge streams, in time order."""
        return [stream for _, _, stream in self.windows()]
