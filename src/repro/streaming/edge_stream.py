"""The :class:`EdgeStream` abstraction.

An :class:`EdgeStream` is a *replayable* finite sequence of undirected
edges.  Estimators consume it edge by edge; the experiment harness replays
the same stream for every method and trial so that comparisons are
apples-to-apples (the paper fixes the stream and varies only the sampling
randomness).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import StreamFormatError
from repro.graph.adjacency import AdjacencyGraph
from repro.types import EdgeTuple, NodeId, canonical_edge


def edge_columns(edges: Sequence[EdgeTuple]):
    """Split an edge list into parallel endpoint columns ``(us, vs)``.

    All-``int`` streams (the common case) come back as ``int64`` NumPy
    arrays — a compact binary-buffer representation that pickles to worker
    processes far cheaper than a list of tuples.  Anything else (strings,
    mixed types, ints beyond 64 bits) falls back to plain lists.
    ``zip(us, vs)`` replays the stream in order either way; the int64
    round-trip via ``ndarray.tolist()`` returns equal Python ints, so
    hashing and interning see identical node identifiers.
    """
    us: List[NodeId] = []
    vs: List[NodeId] = []
    for u, v in edges:
        us.append(u)
        vs.append(v)
    if all(type(u) is int for u in us) and all(type(v) is int for v in vs):
        try:
            return np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)
        except OverflowError:
            pass
    return us, vs


class EdgeStream:
    """A finite, replayable sequence of undirected edges.

    Parameters
    ----------
    edges:
        The edges in arrival order.  The constructor materialises them into
        a list so the stream can be iterated any number of times.
    name:
        Optional human-readable name (dataset name), used in reports.
    validate:
        If ``True`` (default), self-loops raise :class:`StreamFormatError`.
        Duplicate edges are allowed — the aggregate graph collapses them —
        because real streams contain re-observed edges.

    Attributes
    ----------
    validated:
        Whether this stream is *known* to be free of self-loops: either the
        constructor checked (``validate=True``), or the stream was derived
        from a checked/loop-free source (slices, prefixes and filters of a
        validated stream, streams built from an :class:`AdjacencyGraph`).
        Derivations propagate the flag so a slice of an *unvalidated* stream
        is re-checked instead of silently carrying self-loops into
        estimators.
    """

    def __init__(
        self,
        edges: Iterable[EdgeTuple],
        name: Optional[str] = None,
        validate: bool = True,
    ) -> None:
        materialised: List[EdgeTuple] = []
        for index, (u, v) in enumerate(edges):
            if validate and u == v:
                raise StreamFormatError(
                    f"stream record {index} is a self-loop ({u!r}); "
                    "use drop_self_loops() to clean the input first"
                )
            materialised.append((u, v))
        self._edges = materialised
        self.name = name
        self.validated = bool(validate)

    # -- sequence protocol --------------------------------------------------

    def __iter__(self) -> Iterator[EdgeTuple]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # Skip re-validation only when the parent is itself known
            # loop-free; a slice of an unvalidated stream must be checked.
            child = EdgeStream(
                self._edges[index], name=self.name, validate=not self.validated
            )
            child.validated = True
            return child
        return self._edges[index]

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"EdgeStream({len(self._edges)} edges{label})"

    # -- views ----------------------------------------------------------------

    def edges(self) -> List[EdgeTuple]:
        """Return the underlying edge list (a copy)."""
        return list(self._edges)

    def enumerate(self) -> Iterator[tuple]:
        """Yield ``(t, (u, v))`` with 1-based stream positions ``t``."""
        for t, edge in enumerate(self._edges, start=1):
            yield t, edge

    def iter_batches(self, batch_size: int) -> Iterator[List[EdgeTuple]]:
        """Yield consecutive chunks of at most ``batch_size`` edges.

        The chunks partition the stream in order; estimators feed them to
        :meth:`~repro.baselines.base.StreamingTriangleEstimator.process_edges`
        (``process_stream(..., batch_size=...)`` does exactly that).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        edges = self._edges
        for start in range(0, len(edges), batch_size):
            yield edges[start : start + batch_size]

    def as_columns(self):
        """Return the stream as two parallel endpoint columns ``(us, vs)``.

        When every endpoint is a plain ``int`` fitting 64 bits the columns
        are ``int64`` NumPy arrays (compact, cheap to pickle to worker
        processes); otherwise they are plain lists.  Either way
        ``zip(us, vs)`` replays the stream in order.
        """
        return edge_columns(self._edges)

    def distinct_edges(self) -> List[EdgeTuple]:
        """Return the distinct canonical edges in first-arrival order."""
        seen = set()
        result: List[EdgeTuple] = []
        for u, v in self._edges:
            key = canonical_edge(u, v)
            if key not in seen:
                seen.add(key)
                result.append(key)
        return result

    def nodes(self) -> List[NodeId]:
        """Return the distinct nodes in first-appearance order."""
        seen = set()
        result: List[NodeId] = []
        for u, v in self._edges:
            for node in (u, v):
                if node not in seen:
                    seen.add(node)
                    result.append(node)
        return result

    @property
    def num_distinct_edges(self) -> int:
        """Number of distinct undirected edges in the stream."""
        return len(self.distinct_edges())

    def to_graph(self) -> AdjacencyGraph:
        """Return the aggregate graph ``G = (V, E)`` of the stream."""
        graph = AdjacencyGraph()
        for u, v in self._edges:
            graph.add_edge(u, v)
        return graph

    # -- derivation -------------------------------------------------------------

    def map(self, fn: Callable[[EdgeTuple], EdgeTuple], name: Optional[str] = None) -> "EdgeStream":
        """Return a new stream with ``fn`` applied to every edge.

        The result is *unvalidated* regardless of this stream's status:
        ``fn`` may map distinct endpoints onto the same node.
        """
        return EdgeStream(
            (fn(edge) for edge in self._edges), name=name or self.name, validate=False
        )

    def filter(self, predicate: Callable[[EdgeTuple], bool], name: Optional[str] = None) -> "EdgeStream":
        """Return a new stream containing only edges where ``predicate`` holds.

        Filtering cannot introduce self-loops, so the child inherits this
        stream's :attr:`validated` status.
        """
        child = EdgeStream(
            (edge for edge in self._edges if predicate(edge)),
            name=name or self.name,
            validate=False,
        )
        child.validated = self.validated
        return child

    def prefix(self, count: int) -> "EdgeStream":
        """Return the stream consisting of the first ``count`` edges."""
        if count < 0:
            raise ValueError("count must be non-negative")
        child = EdgeStream(
            self._edges[:count], name=self.name, validate=not self.validated
        )
        child.validated = True
        return child

    def concat(self, other: "EdgeStream") -> "EdgeStream":
        """Return the concatenation of this stream and ``other``.

        The result is validated exactly when both inputs are.
        """
        child = EdgeStream(self._edges + other.edges(), name=self.name, validate=False)
        child.validated = self.validated and other.validated
        return child

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Sequence[EdgeTuple], name: Optional[str] = None) -> "EdgeStream":
        """Build a stream from a sequence of ``(u, v)`` pairs."""
        return cls(pairs, name=name)

    @classmethod
    def from_graph(cls, graph: AdjacencyGraph, name: Optional[str] = None) -> "EdgeStream":
        """Build a stream that replays the edges of ``graph`` in canonical order.

        The ordering is deterministic (sorted by the string form of the
        canonical edge) so results are reproducible; use
        :func:`repro.streaming.transforms.shuffle_stream` for a random order.
        """
        edges = sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
        stream = cls(edges, name=name, validate=False)
        # AdjacencyGraph rejects self-loops, so the stream is loop-free by
        # construction.
        stream.validated = True
        return stream
