"""Edge-list file writers (the mirror image of the readers).

Alongside the one-shot :func:`write_edge_list` this module provides
:class:`JsonlEdgeLogWriter`, an append-mode newline-delimited-JSON record
log with explicit flush/fsync.  The estimation service uses it as a
per-tenant replay/audit log: every delivered frame is appended as it is
ingested, ``flush(sync=True)`` makes the log durable at checkpoint
boundaries, and :func:`repro.streaming.readers.iter_jsonl_records` reads it
back — including recovering cleanly from the torn final line a crash can
leave behind (``on_bad_record="skip"``).
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import IO, Iterable, Optional, Sequence, Union

from repro.types import EdgeTuple

PathLike = Union[str, Path]


def write_edge_list(
    edges: Iterable[EdgeTuple],
    path: PathLike,
    delimiter: str = "\t",
    header: str = "",
) -> int:
    """Write edges to a plain-text (optionally gzipped) edge-list file.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs in stream order.
    path:
        Destination; ``.gz`` suffix triggers gzip compression.
    delimiter:
        Field separator (tab by default, matching SNAP-style files).
    header:
        Optional comment header written as ``# <header>``.

    Returns
    -------
    int
        The number of edges written.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    count = 0
    with opener(path, "wt", encoding="utf-8") as handle:  # type: ignore[operator]
        if header:
            handle.write(f"# {header}\n")
        for u, v in edges:
            handle.write(f"{u}{delimiter}{v}\n")
            count += 1
    return count


class JsonlEdgeLogWriter:
    """Append-mode newline-delimited-JSON edge/record log.

    Each record is one JSON array per line — ``[u, v]`` for plain edges,
    ``[u, v, t]`` for timestamped records — chosen over objects because the
    arrays round-trip node identifiers (ints or strings) exactly and stay
    compact at service ingest rates.  The file is opened in append mode, so
    a recovered process continues the same log; a crash can at worst leave
    one torn final line, which
    :func:`repro.streaming.readers.iter_jsonl_records` recovers from under
    ``on_bad_record="skip"``/``"quarantine"``.

    Durability is explicit, not per-record: :meth:`append` buffers through
    the underlying file object, :meth:`flush` pushes to the OS, and
    ``flush(sync=True)`` adds an ``fsync`` — the service calls the latter at
    checkpoint boundaries so the audit log is never behind the checkpoint
    it accompanies.

    Usable as a context manager; :meth:`close` flushes (without fsync).
    """

    def __init__(self, path: PathLike, sync_on_flush: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync_on_flush = sync_on_flush
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")
        #: Records appended through this writer instance (not the file total).
        self.records_written = 0

    def append(self, u, v, t: Optional[float] = None) -> None:
        """Append one record (buffered; call :meth:`flush` for durability)."""
        record = [u, v] if t is None else [u, v, float(t)]
        self._require_open().write(json.dumps(record) + "\n")
        self.records_written += 1

    def append_batch(self, records: Sequence) -> int:
        """Append ``(u, v)`` or ``(u, v, t)`` tuples; returns the count."""
        handle = self._require_open()
        dumps = json.dumps
        count = 0
        for record in records:
            handle.write(dumps(list(record)) + "\n")
            count += 1
        self.records_written += count
        return count

    def flush(self, sync: Optional[bool] = None) -> None:
        """Flush buffered records to the OS; ``sync=True`` adds an fsync.

        ``sync=None`` follows the constructor's ``sync_on_flush`` default.
        """
        handle = self._require_open()
        handle.flush()
        if self.sync_on_flush if sync is None else sync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        """Flush (no fsync) and close; idempotent."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def _require_open(self) -> IO[str]:
        if self._handle is None:
            raise ValueError(f"JSONL log {self.path} is closed")
        return self._handle

    def __enter__(self) -> "JsonlEdgeLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
