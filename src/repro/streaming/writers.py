"""Edge-list file writers (the mirror image of the readers)."""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Union

from repro.types import EdgeTuple

PathLike = Union[str, Path]


def write_edge_list(
    edges: Iterable[EdgeTuple],
    path: PathLike,
    delimiter: str = "\t",
    header: str = "",
) -> int:
    """Write edges to a plain-text (optionally gzipped) edge-list file.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs in stream order.
    path:
        Destination; ``.gz`` suffix triggers gzip compression.
    delimiter:
        Field separator (tab by default, matching SNAP-style files).
    header:
        Optional comment header written as ``# <header>``.

    Returns
    -------
    int
        The number of edges written.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    count = 0
    with opener(path, "wt", encoding="utf-8") as handle:  # type: ignore[operator]
        if header:
            handle.write(f"# {header}\n")
        for u, v in edges:
            handle.write(f"{u}{delimiter}{v}\n")
            count += 1
    return count
