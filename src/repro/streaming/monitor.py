"""Sliding-window triangle monitoring with merge-based window advance.

The paper's headline deployment is interval-based traffic monitoring: a
router observes a packet stream and wants global/local triangle counts
*per time interval*.  :class:`~repro.streaming.windows.TimeWindowedStream`
serves that workload offline by slicing a materialised trace;
:class:`WindowedTriangleMonitor` serves it online: timestamped records are
ingested once, windows (tumbling or sliding) are assembled from fixed-width
**panes**, and advancing a window never re-ingests retained panes.

Architecture
------------
Time is divided into half-open panes of ``pane_seconds`` aligned at the
monitor's origin.  Window ``w`` covers the ``K = window/pane`` panes
starting at pane ``w · s`` (``s = slide/pane``); tumbling windows are the
``s = K`` special case.  Each window in flight is a *chain* built on the
shared mergeable-state abstraction of :mod:`repro.core.state`:

* a **live** :class:`~repro.core.state.GroupStateSet` ingests the window's
  records as they arrive;
* at every pane boundary the live counters are detached as an O(pane)
  *pane delta* (:meth:`~repro.core.state.ProcessorGroup.take_pane_deltas`)
  — the live groups keep their stored-edge index, so they remain in
  exactly the seeded-at-a-chunk-boundary state the merge contract expects —
  and folded into an **accumulator** state set with the exact η cross-chunk
  correction (:meth:`~repro.core.state.ProcessorCounters.merge`);
* a bounded **ring** of externalized pane-delta snapshots is retained for
  per-pane attribution and diagnostics.

Because every chain of one monitor shares the configuration's hash seeds
and one interning table, each arriving batch is canonicalised, interned
and hashed **once** (:meth:`~repro.core.state.GroupStateSet.encode`) and
every open window consumes the same :class:`~repro.core.state.EncodedBatch`
with its own first-occurrence scope — the per-record cost of window overlap
is only the residual counter updates, not the full pipeline.  Closing a
window drops its chain in O(1); no retained pane is ever re-ingested.

Estimates are **bit-identical** to re-ingesting each emitted window's
records from scratch with :class:`~repro.core.rept.ReptEstimator` (the
monitor property tests assert exact equality).  Non-mergeable estimators
(the exact counter, TRIÈST, …) plug in through ``estimator_factory``: each
window then owns one incrementally-fed estimator — still no re-ingestion
on advance, at the cost of one estimator instance per open window.

Out-of-order input is handled with a watermark: records may arrive up to
``allowed_lateness`` seconds behind the maximum timestamp seen.  A pane is
*sealed* once the watermark passes its right edge (sealing the last pane of
a window emits that window's result); records for sealed panes follow
``late_policy`` — dropped-and-counted by default, never silently lost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import StreamingTriangleEstimator, TriangleEstimate
from repro.core.config import ReptConfig
from repro.exceptions import ConfigurationError
from repro.core.state import (
    EncodedBatch,
    GroupSnapshot,
    GroupStateSet,
    externalize_delta_snapshot,
)
from repro.streaming.windows import TimestampedRecord
from repro.types import EdgeTuple, NodeId
from repro.utils.rng import derive_seed

#: Accepted policies for records older than the watermark allows.
LATE_POLICIES = ("drop", "raise")

#: Builds a fresh estimator for one window; receives a per-window seed.
EstimatorFactory = Callable[[int], StreamingTriangleEstimator]


class PaneDelta:
    """One retained pane of one window: counters detached at the boundary.

    :attr:`snapshots` holds one externalized
    :data:`~repro.core.state.GroupSnapshot` per processor group whose
    adjacency covers only the pane-new stored edges — a genuine mergeable
    snapshot of O(pane) size, foldable anywhere via
    :meth:`~repro.core.state.ProcessorGroup.merge_snapshot`.
    Externalization (interned ids → raw node identifiers) is deferred to
    first access so the monitor's hot path never pays for snapshots nobody
    reads; the shared interning table is append-only, which is what makes
    late translation safe.  A delta holds only the group *shapes*, the
    monitor-wide id→node table and its own O(pane) counters — never the
    window's live groups — so retaining closed-window results does not pin
    per-window adjacency state.

    Attribution note: records admitted late (within ``allowed_lateness``)
    are booked into the pane a window is assembling when they *arrive*;
    window totals and estimates are unaffected (the merge is split-point
    agnostic), only this diagnostic per-pane breakdown follows arrival
    rather than event time.
    """

    __slots__ = ("pane", "records", "_shapes", "_nodes", "_deltas", "_snapshots")

    def __init__(self, pane: int, records: int, shapes, nodes, deltas) -> None:
        self.pane = pane
        self.records = records
        self._shapes = shapes
        self._nodes = nodes
        self._deltas = deltas
        self._snapshots: Optional[Tuple[GroupSnapshot, ...]] = None

    @property
    def snapshots(self) -> Tuple[GroupSnapshot, ...]:
        """Externalized per-group snapshots of this pane's deltas (cached)."""
        if self._snapshots is None:
            self._snapshots = tuple(
                externalize_delta_snapshot(group_size, m, self._nodes, group_deltas)
                for (group_size, m), group_deltas in zip(self._shapes, self._deltas)
            )
        return self._snapshots

    @property
    def tau_delta(self) -> int:
        """Summed semi-triangle increments of this pane (diagnostics)."""
        return sum(
            counters.tau for group_deltas in self._deltas for counters in group_deltas
        )


@dataclass(frozen=True)
class MonitorWindowResult:
    """Per-interval output of the monitor.

    ``complete`` is False only for windows emitted by :meth:`flush` whose
    span had not been fully observed when the stream ended.  ``replay``
    (audit mode) carries the window's records in the exact order the
    window ingested them — re-running any estimator over it reproduces
    ``estimate`` bit for bit.
    """

    index: int
    start: float
    end: float
    records: int
    estimate: TriangleEstimate
    complete: bool = True
    replay: Optional[List[EdgeTuple]] = None
    pane_deltas: Optional[Tuple[PaneDelta, ...]] = None


class _MergeableReptChain:
    """One in-flight window of the REPT engine.

    The **live** state set ingests the window's records as they arrive.
    With the pane ring enabled, every pane boundary detaches the live
    counters as an O(pane) delta (the live groups keep their stored-edge
    index — exactly the seeded chunk-boundary state of the merge contract)
    and folds it into the **accumulator** with the exact η correction; the
    final estimate then comes from the accumulator.  With the ring
    disabled the live counters are simply left cumulative and serve the
    estimate directly — same counters, one fewer bookkeeping pass per
    record.  Both paths are bit-identical to from-scratch re-ingestion.
    """

    __slots__ = (
        "live",
        "acc",
        "start_pane",
        "end_pane",
        "current_pane",
        "records",
        "pane_records",
        "_pane_stored",
        "ring",
        "replay",
    )

    def __init__(
        self,
        config: ReptConfig,
        interner,
        hash_functions,
        start_pane: int,
        end_pane: int,
        record_replay: bool,
        maintain_ring: bool,
    ) -> None:
        self.live = GroupStateSet(config, interner=interner, hash_functions=hash_functions)
        self.start_pane = start_pane
        self.end_pane = end_pane
        self.current_pane = start_pane
        self.records = 0
        self.pane_records = 0
        self.replay: Optional[List[EdgeTuple]] = [] if record_replay else None
        if maintain_ring:
            self.acc: Optional[GroupStateSet] = GroupStateSet(
                config, interner=interner, hash_functions=hash_functions
            )
            self._pane_stored: Optional[List[List[Tuple[int, int, int]]]] = [
                [] for _ in self.live.groups
            ]
            self.ring: List[PaneDelta] = []
        else:
            self.acc = None
            self._pane_stored = None
            self.ring = []

    def ingest(
        self,
        pane: int,
        batch: EncodedBatch,
        raw_edges: Sequence[EdgeTuple],
        firsts: Optional[Sequence[bool]] = None,
    ) -> None:
        """Advance the window over one shared encoded pane bucket.

        ``firsts`` carries the window-scoped first-occurrence flags the
        monitor derives once per batch from its shared arrival index (see
        :meth:`WindowedTriangleMonitor._record_arrivals`); the chain's own
        ``live.seen`` set then stays empty.  ``None`` falls back to the
        chain-local dedup scope (bit-identical, one set pass per chain).
        """
        if self._pane_stored is None:
            self.live.ingest_encoded(batch, firsts=firsts)
        else:
            self._roll_to(pane)
            stored = self.live.ingest_encoded(
                batch, collect_stored=True, firsts=firsts
            )
            if stored is not None:
                for bucket, new in zip(self._pane_stored, stored):
                    bucket.extend(new)
        self.records += batch.n_records
        self.pane_records += batch.n_records
        if self.replay is not None:
            self.replay.extend(raw_edges)

    def _roll_to(self, pane: int) -> None:
        while self.current_pane < pane:
            self._roll()

    def _roll(self) -> None:
        """Advance one pane boundary: detach the live counters as an O(pane)
        delta, keep it in the ring and fold it into the accumulator."""
        deltas = self.live.take_pane_deltas(self._pane_stored)
        if self.pane_records:
            self.ring.append(
                PaneDelta(
                    pane=self.current_pane,
                    records=self.pane_records,
                    shapes=[(g.group_size, g.m) for g in self.live.groups],
                    nodes=self.live.interner.nodes,
                    deltas=deltas,
                )
            )
        self.acc.merge_pane_deltas(deltas)
        self._pane_stored = [[] for _ in self.live.groups]
        self.pane_records = 0
        self.current_pane += 1

    def finalize(self) -> Tuple[int, TriangleEstimate]:
        if self.acc is not None:
            if self.pane_records:
                self._roll()
            state = self.acc
        else:
            state = self.live
        estimate = state.estimate(self.records)
        estimate.metadata["algorithm"] = 2.0 if state.config.uses_groups else 1.0
        return self.records, estimate


class _EstimatorChain:
    """One in-flight window fed to a factory-built streaming estimator."""

    __slots__ = ("estimator", "replay")

    def __init__(self, factory: EstimatorFactory, seed: int, record_replay: bool) -> None:
        self.estimator = factory(seed)
        self.replay: Optional[List[EdgeTuple]] = [] if record_replay else None

    def ingest(self, pane: int, edges: Sequence[EdgeTuple]) -> None:
        self.estimator.process_edges(edges)
        if self.replay is not None:
            self.replay.extend(edges)

    def finalize(self) -> Tuple[int, TriangleEstimate]:
        return self.estimator.edges_processed, self.estimator.estimate()


class WindowedTriangleMonitor:
    """Serve per-interval triangle estimates over a timestamped stream.

    Parameters
    ----------
    window_seconds:
        Width of each reported window.
    slide_seconds:
        Stride between window starts (default: ``window_seconds`` —
        tumbling).  Must not exceed the window width and must be an integer
        multiple of the pane width.
    pane_seconds:
        Pane granularity (default: ``slide_seconds``).  Must evenly divide
        both the window and the slide.
    config:
        REPT parameters — selects the merge-based engine (shared encoding,
        O(pane) advance).  Mutually exclusive with ``estimator_factory``.
    estimator_factory:
        ``(seed) -> estimator`` building a fresh
        :class:`~repro.baselines.base.StreamingTriangleEstimator` per
        window (exact counter, TRIÈST, …).  Windows are fed incrementally —
        no re-ingestion — but overlapping windows each own an instance.
    seed:
        Master seed; window ``w`` derives ``derive_seed(seed,
        "monitor-window", w)`` for its factory estimator.
    origin:
        Left edge of pane 0.  Default: the first ingested batch's minimum
        timestamp minus ``allowed_lateness``, so every record the
        watermark admits maps to a non-negative pane — bounded
        out-of-order delivery is never dropped as pre-origin.  With an
        explicit origin, records before it are governed by
        ``late_policy`` like any sealed-pane record.
    allowed_lateness:
        How far (seconds) a record may lag the maximum timestamp seen
        before its pane is sealed.  0 (default) expects in-order panes.
    late_policy:
        ``"drop"`` (default) discards records for sealed panes and counts
        them in :attr:`late_records`; ``"raise"`` fails loudly.
    keep_pane_deltas:
        Maintain the ring of per-pane delta snapshots on each REPT chain
        (surfaced in :attr:`MonitorWindowResult.pane_deltas` and
        :meth:`open_pane_deltas`), assembling window estimates by merging
        pane deltas into an accumulator.  ``False`` skips the per-pane roll
        machinery entirely and serves estimates from the live counters —
        identical values, leaner hot path.
    record_replay:
        Audit mode: every result carries the window's records in exact
        ingestion order (memory O(window) — testing and debugging).

    All interval bounds are half-open ``[start, end)``, matching
    :class:`~repro.streaming.windows.TimeWindowedStream`.
    """

    def __init__(
        self,
        window_seconds: float,
        slide_seconds: Optional[float] = None,
        pane_seconds: Optional[float] = None,
        config: Optional[ReptConfig] = None,
        estimator_factory: Optional[EstimatorFactory] = None,
        seed: int = 0,
        origin: Optional[float] = None,
        allowed_lateness: float = 0.0,
        late_policy: str = "drop",
        keep_pane_deltas: bool = True,
        record_replay: bool = False,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if slide_seconds is None:
            slide_seconds = window_seconds
        if slide_seconds <= 0 or slide_seconds > window_seconds:
            raise ConfigurationError(
                "slide_seconds must be in (0, window_seconds] "
                f"(got slide={slide_seconds}, window={window_seconds})"
            )
        if pane_seconds is None:
            pane_seconds = slide_seconds
        if pane_seconds <= 0:
            raise ConfigurationError("pane_seconds must be positive")
        self.window_seconds = float(window_seconds)
        self.slide_seconds = float(slide_seconds)
        self.pane_seconds = float(pane_seconds)
        self._window_panes = self._exact_multiple(
            window_seconds, pane_seconds, "window_seconds", "pane_seconds"
        )
        self._slide_panes = self._exact_multiple(
            slide_seconds, pane_seconds, "slide_seconds", "pane_seconds"
        )
        if (config is None) == (estimator_factory is None):
            raise ConfigurationError(
                "exactly one of config (merge-based REPT engine) or "
                "estimator_factory must be given"
            )
        if late_policy not in LATE_POLICIES:
            raise ConfigurationError(
                f"late_policy must be one of {LATE_POLICIES}, got {late_policy!r}"
            )
        if allowed_lateness < 0 or not math.isfinite(allowed_lateness):
            raise ConfigurationError("allowed_lateness must be finite and >= 0")
        self.config = config
        self.estimator_factory = estimator_factory
        self.seed = seed
        self.allowed_lateness = float(allowed_lateness)
        self.late_policy = late_policy
        self.keep_pane_deltas = keep_pane_deltas
        self.record_replay = record_replay

        #: Results of every closed window, in window order.
        self.results: List[MonitorWindowResult] = []
        #: Records discarded by the ``"drop"`` late policy.
        self.late_records = 0

        self._origin: Optional[float] = None if origin is None else float(origin)
        self._watermark = float("-inf")
        self._sealed_before = 0  # first pane index not yet sealed
        self._next_close_index = 0  # windows close strictly in index order
        self._max_pane_seen = -1
        self._chains: Dict[int, object] = {}
        #: Shared arrival index of the REPT engine: canonical interned edge
        #: -> bitmask of the panes it has arrived in, rebased so bit 0 is
        #: pane ``_dedup_base`` (the first pane an open window can cover).
        #: One pass over each encoded batch updates it, and every
        #: overlapping window derives its first-occurrence flags from the
        #: recorded prior masks — the chains' own ``seen`` sets stay empty.
        self._edge_panes: Dict[Tuple[int, int], int] = {}
        self._dedup_base = 0
        if config is not None:
            # Template state: owns the interning table and the (possibly
            # table-backed) hash functions every chain of this monitor
            # shares; its counters never advance.
            self._template = GroupStateSet(config)
            self._hash_functions = [
                group.hash_function for group in self._template.groups
            ]
        else:
            self._template = None
            self._hash_functions = None

    @staticmethod
    def _exact_multiple(total: float, unit: float, total_name: str, unit_name: str) -> int:
        ratio = float(total) / float(unit)
        count = int(round(ratio))
        if count < 1 or abs(ratio - count) > 1e-9:
            raise ConfigurationError(
                f"{unit_name} ({unit}) must evenly divide {total_name} ({total})"
            )
        return count

    # -- ingestion -------------------------------------------------------------

    def ingest(self, records: Iterable) -> List[MonitorWindowResult]:
        """Consume timestamped records; returns windows closed by this call.

        ``records`` is an iterable of :class:`TimestampedRecord` or
        ``(u, v, time)`` tuples; see :meth:`ingest_columns` for the
        columnar fast path.
        """
        us: List[NodeId] = []
        vs: List[NodeId] = []
        ts: List[float] = []
        for record in records:
            if isinstance(record, TimestampedRecord):
                us.append(record.u)
                vs.append(record.v)
                ts.append(record.time)
            else:
                u, v, time = record
                us.append(u)
                vs.append(v)
                ts.append(float(time))
        return self.ingest_columns(us, vs, ts)

    def ingest_columns(
        self, us: Sequence[NodeId], vs: Sequence[NodeId], ts: Sequence[float]
    ) -> List[MonitorWindowResult]:
        """Columnar ingestion: parallel endpoint/timestamp sequences.

        Pane routing runs vectorially over the timestamp column; records
        are then delivered to the open windows pane-bucket by pane-bucket
        (stable order within a bucket).
        """
        times = np.asarray(ts, dtype=np.float64)
        if times.size == 0:
            return []
        if not np.isfinite(times).all():
            raise ValueError("timestamps must be finite")
        if isinstance(us, np.ndarray):
            us = us.tolist()  # interner and hash layers key on exact types
        if isinstance(vs, np.ndarray):
            vs = vs.tolist()
        if len(us) != times.size or len(vs) != times.size:
            raise ValueError("us, vs and ts must have equal lengths")
        if self._origin is None:
            # Back the derived origin off by the lateness allowance: any
            # record the watermark still admits then maps to pane >= 0, so
            # bounded out-of-order delivery is never dropped as pre-origin.
            self._origin = float(times.min()) - self.allowed_lateness

        pane_index = np.floor_divide(times - self._origin, self.pane_seconds).astype(
            np.int64
        )
        order = np.argsort(pane_index, kind="stable")
        sorted_panes = pane_index[order]
        run_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_panes)) + 1)
        )
        run_ends = np.concatenate((run_starts[1:], [sorted_panes.size]))
        for start, stop in zip(run_starts, run_ends):
            pane = int(sorted_panes[start])
            indices = order[start:stop]
            if pane < self._sealed_before:
                if self.late_policy == "raise":
                    raise ValueError(
                        f"{stop - start} record(s) arrived for sealed pane {pane} "
                        f"(sealed before {self._sealed_before}; "
                        f"allowed_lateness={self.allowed_lateness})"
                    )
                self.late_records += stop - start
                continue
            edges = [(us[i], vs[i]) for i in indices]
            self._route(pane, edges)

        self._watermark = max(
            self._watermark, float(times.max()) - self.allowed_lateness
        )
        return self._seal_up_to_watermark()

    def _route(self, pane: int, edges: List[EdgeTuple]) -> None:
        """Deliver one pane bucket to every open window covering the pane."""
        if pane > self._max_pane_seen:
            self._max_pane_seen = pane
        slide = self._slide_panes
        lowest = pane - self._window_panes + 1
        first_window = -(-lowest // slide) if lowest > 0 else 0  # ceil, >= 0
        # Closed is closed: after a flush, records for already-emitted
        # windows only feed the still-open ones.
        if first_window < self._next_close_index:
            first_window = self._next_close_index
        last_window = pane // slide
        if first_window > last_window:
            # Every window covering this pane has already closed; the
            # records feed nothing (and need no arrival-index entry — no
            # remaining window's pane span can include this pane).
            return
        if self._template is not None:
            batch = self._template.encode(edges)
            priors = self._record_arrivals(pane, batch)
            for window in range(first_window, last_window + 1):
                firsts = self._window_firsts(window, priors)
                self._rept_chain(window).ingest(pane, batch, edges, firsts)
        else:
            for window in range(first_window, last_window + 1):
                self._factory_chain(window).ingest(pane, edges)

    def _record_arrivals(
        self, pane: int, batch: EncodedBatch
    ) -> Optional[List[int]]:
        """Fold one encoded pane bucket into the shared arrival index.

        Returns each record's *prior* pane mask — the panes the edge had
        already arrived in before this record, captured before the current
        pane's bit is set so in-batch duplicates are flagged non-first.
        ``None`` for an empty batch (every record was a self-loop).
        """
        if not batch.cu:
            return None
        offset = pane - self._dedup_base
        bit = 1 << offset
        index = self._edge_panes
        priors: List[int] = []
        append = priors.append
        for iu, iv in zip(batch.cu, batch.cv):
            key = (iu, iv) if iu < iv else (iv, iu)
            prior = index.get(key, 0)
            append(prior)
            index[key] = prior | bit
        return priors

    def _window_firsts(
        self, window: int, priors: Optional[List[int]]
    ) -> Optional[List[bool]]:
        """Window-scoped first-occurrence flags from recorded prior masks.

        A record is first-in-window exactly when no prior arrival fell in
        any pane of the window's span — one mask test per record, shared
        with every other window through the arrival index.
        """
        if priors is None:
            return None
        start = window * self._slide_panes
        wmask = ((1 << self._window_panes) - 1) << (start - self._dedup_base)
        return [(prior & wmask) == 0 for prior in priors]

    def _rept_chain(self, window: int) -> _MergeableReptChain:
        chain = self._chains.get(window)
        if chain is None:
            start_pane = window * self._slide_panes
            chain = _MergeableReptChain(
                self.config,
                self._template.interner,
                self._hash_functions,
                start_pane,
                start_pane + self._window_panes,
                self.record_replay,
                self.keep_pane_deltas,
            )
            self._chains[window] = chain
        return chain

    def _factory_chain(self, window: int) -> _EstimatorChain:
        chain = self._chains.get(window)
        if chain is None:
            chain = _EstimatorChain(
                self.estimator_factory,
                derive_seed(self.seed, "monitor-window", window),
                self.record_replay,
            )
            self._chains[window] = chain
        return chain

    # -- sealing ---------------------------------------------------------------

    def advance_watermark(self, time: float) -> List[MonitorWindowResult]:
        """Advance event time without records; returns windows this closes.

        An explicit event-time tick (e.g. an idle stream, or a driver that
        knows a pane's arrivals are complete).  ``allowed_lateness`` is
        honoured exactly as for record timestamps.  Advancing across a
        window's final pane boundary performs **no re-ingestion of retained
        panes**: the pending pane's counters are detached as an O(pane)
        delta, folded into the window's accumulator with the exact η
        correction, and the estimate is combined from the merged summaries.
        The watermark never moves backwards.
        """
        time = float(time)
        if not math.isfinite(time):
            raise ValueError("watermark time must be finite")
        self._watermark = max(self._watermark, time - self.allowed_lateness)
        if self._origin is None:
            return []
        return self._seal_up_to_watermark()

    def _pane_end(self, pane: int) -> float:
        return self._origin + (pane + 1) * self.pane_seconds

    def _seal_up_to_watermark(self) -> List[MonitorWindowResult]:
        closed: List[MonitorWindowResult] = []
        if self._origin is None or not math.isfinite(self._watermark):
            return closed
        # First pane the watermark does NOT seal (pane p is sealed iff
        # origin + (p+1)·w <= watermark).
        target = int((self._watermark - self._origin) // self.pane_seconds)
        # Walk pane-by-pane only across the span whose windows can hold
        # data (a window ending after pane max_seen + K - 1 starts after
        # every observed pane); beyond it every window is empty, so
        # fast-forward arithmetically — a far-future tick must not spin
        # pane-by-pane or materialise unbounded empty results.
        emit_limit = self._max_pane_seen + self._window_panes - 1
        while self._sealed_before < target:
            pane = self._sealed_before
            if pane > emit_limit:
                self._sealed_before = target
                break
            self._sealed_before = pane + 1
            last_of_window = pane - self._window_panes + 1
            if last_of_window >= 0 and last_of_window % self._slide_panes == 0:
                window = last_of_window // self._slide_panes
                # Closed is closed: flush() may already have emitted this
                # window without advancing the pane seal, and a service
                # timer may tick the watermark again afterwards — never
                # emit the same window index twice.
                if window >= self._next_close_index:
                    closed.append(self._close_window(window, True))
        return closed

    def _close_window(self, window: int, complete: bool) -> MonitorWindowResult:
        chain = self._chains.pop(window, None)
        start = self._origin + window * self._slide_panes * self.pane_seconds
        replay: Optional[List[EdgeTuple]] = [] if self.record_replay else None
        pane_deltas: Optional[Tuple[PaneDelta, ...]] = None
        if chain is None:
            # An empty window: emit the zero estimate so per-interval series
            # stay aligned with time.
            if self._template is not None:
                acc = GroupStateSet(
                    self.config,
                    interner=self._template.interner,
                    hash_functions=self._hash_functions,
                )
                estimate = acc.estimate(0)
                estimate.metadata["algorithm"] = (
                    2.0 if self.config.uses_groups else 1.0
                )
            else:
                estimate = self.estimator_factory(
                    derive_seed(self.seed, "monitor-window", window)
                ).estimate()
            records = 0
        else:
            records, estimate = chain.finalize()
            if chain.replay is not None:
                replay = chain.replay
            if isinstance(chain, _MergeableReptChain) and self.keep_pane_deltas:
                pane_deltas = tuple(chain.ring)
        result = MonitorWindowResult(
            index=window,
            start=start,
            end=start + self.window_seconds,
            records=records,
            estimate=estimate,
            complete=complete,
            replay=replay,
            pane_deltas=pane_deltas,
        )
        self.results.append(result)
        self._next_close_index = window + 1
        self._rebase_arrival_index()
        return result

    def _rebase_arrival_index(self) -> None:
        """Shift the arrival index down to the earliest still-open window.

        Panes below ``_next_close_index * _slide_panes`` can never fall in
        an open window's span again, so their bits are shifted out and
        fully-expired edges are dropped — the index stays bounded by the
        open-window pane span regardless of stream length.
        """
        new_base = self._next_close_index * self._slide_panes
        shift = new_base - self._dedup_base
        if shift <= 0:
            return
        self._dedup_base = new_base
        index = self._edge_panes
        if not index:
            return
        expired = []
        for key, mask in index.items():
            mask >>= shift
            if mask:
                index[key] = mask
            else:
                expired.append(key)
        for key in expired:
            del index[key]

    def flush(self) -> List[MonitorWindowResult]:
        """Close every remaining window (stream end).

        Emits, in index order, every window whose span had started by the
        last observed pane; windows whose final pane was never observed are
        marked ``complete=False``.
        """
        if self._origin is None or self._max_pane_seen < 0:
            return []
        closed: List[MonitorWindowResult] = []
        last_window = self._max_pane_seen // self._slide_panes
        for window in range(self._next_close_index, last_window + 1):
            last_pane = window * self._slide_panes + self._window_panes - 1
            closed.append(self._close_window(window, last_pane <= self._max_pane_seen))
        return closed

    # -- introspection ---------------------------------------------------------

    @property
    def watermark(self) -> float:
        """Current watermark (−inf before any record)."""
        return self._watermark

    def open_window_indices(self) -> List[int]:
        """Indices of the windows currently holding state, ascending."""
        return sorted(self._chains)

    def open_pane_deltas(self) -> Dict[int, Tuple[PaneDelta, ...]]:
        """The retained pane-delta rings of the open REPT windows."""
        return {
            window: tuple(chain.ring)
            for window, chain in sorted(self._chains.items())
            if isinstance(chain, _MergeableReptChain)
        }
