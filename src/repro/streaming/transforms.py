"""Stream transforms: cleaning and re-ordering operations.

Real edge streams contain self-loops, duplicate observations and arbitrary
node labels; these helpers normalise them.  All transforms return a *new*
:class:`EdgeStream` and never mutate their input.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.streaming.edge_stream import EdgeStream
from repro.types import NodeId, canonical_edge
from repro.utils.rng import SeedLike, as_random_source


def drop_self_loops(stream: EdgeStream) -> EdgeStream:
    """Return a stream with all ``u == v`` records removed."""
    cleaned = EdgeStream(
        ((u, v) for u, v in stream if u != v), name=stream.name, validate=False
    )
    cleaned.validated = True
    return cleaned


def deduplicate_edges(stream: EdgeStream) -> EdgeStream:
    """Return a stream keeping only the first occurrence of each undirected edge.

    The relative order of first occurrences is preserved, so the η values of
    the deduplicated stream match those of the original stream's aggregate
    graph under the same arrival order.
    """
    seen = set()

    def _first_occurrences():
        for u, v in stream:
            key = canonical_edge(u, v)
            if key not in seen:
                seen.add(key)
                yield (u, v)

    deduplicated = EdgeStream(_first_occurrences(), name=stream.name, validate=False)
    deduplicated.validated = stream.validated
    return deduplicated


def relabel_nodes(
    stream: EdgeStream, mapping: Optional[Dict[NodeId, int]] = None
) -> EdgeStream:
    """Return a stream with node identifiers replaced by dense integers.

    Parameters
    ----------
    stream:
        The input stream.
    mapping:
        Optional explicit mapping.  When omitted, nodes are numbered
        ``0, 1, 2, ...`` in order of first appearance.
    """
    if mapping is None:
        mapping = {}
        for u, v in stream:
            for node in (u, v):
                if node not in mapping:
                    mapping[node] = len(mapping)
    return EdgeStream(
        ((mapping[u], mapping[v]) for u, v in stream), name=stream.name, validate=False
    )


def shuffle_stream(stream: EdgeStream, seed: SeedLike = None) -> EdgeStream:
    """Return a stream with the edge arrival order randomly permuted.

    Note that shuffling changes ``η`` (which depends on which edge of each
    triangle arrives last) while leaving ``τ`` untouched; the experiments
    fix one shuffle per dataset so all methods see the same order.
    """
    edges = stream.edges()
    as_random_source(seed).shuffle(edges)
    shuffled = EdgeStream(edges, name=stream.name, validate=False)
    shuffled.validated = stream.validated
    return shuffled


def subsample_stream(
    stream: EdgeStream, probability: float, seed: SeedLike = None
) -> EdgeStream:
    """Return a stream keeping each record independently with ``probability``.

    This is a *workload-reduction* tool (e.g. building a smaller test
    stream), not an estimator; the streaming estimators do their own
    sampling internally.
    """
    if not 0 <= probability <= 1:
        raise ValueError("probability must be in [0, 1]")
    rng = as_random_source(seed)
    kept = [edge for edge in stream if rng.random() < probability]
    subsampled = EdgeStream(kept, name=stream.name, validate=False)
    subsampled.validated = stream.validated
    return subsampled
