"""Edge-stream substrate: the sequence-of-edges abstraction ``Π``.

The paper's input model is an undirected graph stream, i.e. a finite
sequence of edges observed one at a time.  :class:`EdgeStream` is that
sequence, plus the plumbing a real deployment needs:

* file readers/writers for common edge-list formats;
* transforms (de-duplication, self-loop removal, node relabelling,
  deterministic shuffling, sub-sampling);
* time-interval windowing for the traffic-monitoring use case the paper's
  introduction motivates (counting triangles per hour of a packet stream);
* the sliding-window monitor serving per-interval estimates online with
  merge-based window advance (no re-ingestion of retained panes).
"""

from repro.streaming.edge_stream import EdgeStream
from repro.streaming.readers import (
    iter_jsonl_records,
    parse_edge_line,
    read_edge_list,
    read_jsonl_records,
)
from repro.streaming.writers import JsonlEdgeLogWriter, write_edge_list
from repro.streaming.transforms import (
    deduplicate_edges,
    drop_self_loops,
    relabel_nodes,
    shuffle_stream,
    subsample_stream,
)
from repro.streaming.windows import TimeWindowedStream, TimestampedRecord
from repro.streaming.monitor import (
    MonitorWindowResult,
    PaneDelta,
    WindowedTriangleMonitor,
)
from repro.streaming.degree_tracker import DegreeTracker

__all__ = [
    "EdgeStream",
    "DegreeTracker",
    "read_edge_list",
    "parse_edge_line",
    "write_edge_list",
    "JsonlEdgeLogWriter",
    "iter_jsonl_records",
    "read_jsonl_records",
    "deduplicate_edges",
    "drop_self_loops",
    "relabel_nodes",
    "shuffle_stream",
    "subsample_stream",
    "TimeWindowedStream",
    "TimestampedRecord",
    "WindowedTriangleMonitor",
    "MonitorWindowResult",
    "PaneDelta",
]
