"""Edge-list file readers.

Supports the common plain-text formats the public datasets ship in:
whitespace- or comma-separated ``u v`` pairs, optional comment lines
(``#`` or ``%``), optional third column (timestamp or weight, ignored or
kept depending on the caller).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.exceptions import StreamFormatError
from repro.streaming.edge_stream import EdgeStream
from repro.types import EdgeTuple

PathLike = Union[str, Path]

_COMMENT_PREFIXES = ("#", "%", "//")


def parse_edge_line(
    line: str, delimiter: Optional[str] = None, as_int: bool = True
) -> Optional[EdgeTuple]:
    """Parse one line of an edge-list file.

    Returns ``None`` for blank lines and comments.  Raises
    :class:`StreamFormatError` when the line has fewer than two fields.

    Parameters
    ----------
    line:
        The raw text line.
    delimiter:
        Field separator; ``None`` means any whitespace.
    as_int:
        Convert endpoints to ``int`` when both fields parse as integers.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith(_COMMENT_PREFIXES):
        return None
    fields = stripped.split(delimiter)
    if len(fields) < 2:
        raise StreamFormatError(f"cannot parse edge from line: {line!r}")
    u_raw, v_raw = fields[0], fields[1]
    if as_int:
        try:
            return (int(u_raw), int(v_raw))
        except ValueError:
            pass
    return (u_raw, v_raw)


def iter_edge_lines(
    path: PathLike, delimiter: Optional[str] = None, as_int: bool = True
) -> Iterator[EdgeTuple]:
    """Yield edges from a (possibly gzip-compressed) edge-list file."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:  # type: ignore[operator]
        for line in handle:
            edge = parse_edge_line(line, delimiter=delimiter, as_int=as_int)
            if edge is not None:
                yield edge


def read_edge_list(
    path: PathLike,
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
    as_int: bool = True,
    drop_self_loops: bool = True,
) -> EdgeStream:
    """Read an edge-list file into an :class:`EdgeStream`.

    Parameters
    ----------
    path:
        File path; ``.gz`` files are decompressed transparently.
    name:
        Stream name; defaults to the file stem.
    delimiter:
        Field separator (``None`` = any whitespace, ``","`` for CSV).
    as_int:
        Convert node identifiers to integers when possible.
    drop_self_loops:
        Silently skip ``u == v`` records (they are meaningless for triangle
        counting and present in some raw datasets).
    """
    path = Path(path)
    edges = iter_edge_lines(path, delimiter=delimiter, as_int=as_int)
    if drop_self_loops:
        edges = (e for e in edges if e[0] != e[1])
    return EdgeStream(edges, name=name or path.stem, validate=not drop_self_loops)
