"""Edge-list file readers.

Supports the common plain-text formats the public datasets ship in:
whitespace- or comma-separated ``u v`` pairs, optional comment lines
(``#`` or ``%``), optional third column (timestamp or weight, ignored or
kept depending on the caller).

Real dumps also contain damage — truncated last lines, interleaved binary
garbage, half-written records.  The readers take an ``on_bad_record``
policy for those:

* ``"raise"`` (default) — fail loudly with
  :class:`~repro.exceptions.StreamFormatError`, the right behaviour for
  curated benchmark inputs where damage means a wrong download;
* ``"skip"`` — drop unparseable lines, counting them in the
  :class:`BadRecordLog`;
* ``"quarantine"`` — drop them *and* append the raw lines to a sidecar
  file (``<input>.quarantine`` by default) for post-mortem inspection.

Blank lines and comments are never "bad": they are format features,
skipped silently under every policy and never counted.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.exceptions import StreamFormatError
from repro.streaming.edge_stream import EdgeStream
from repro.types import EdgeTuple

PathLike = Union[str, Path]

_COMMENT_PREFIXES = ("#", "%", "//")

#: Valid ``on_bad_record`` policies.
BAD_RECORD_POLICIES = ("raise", "skip", "quarantine")


@dataclass
class BadRecordLog:
    """Counters of damaged input lines observed by one read.

    ``skipped`` counts every dropped line (under both non-raising
    policies); ``quarantined`` counts the subset that was also appended to
    ``quarantine_path``.  Attached to the returned stream by
    :func:`read_edge_list` as ``stream.bad_records``.
    """

    skipped: int = 0
    quarantined: int = 0
    quarantine_path: Optional[Path] = None


def parse_edge_line(
    line: str, delimiter: Optional[str] = None, as_int: bool = True
) -> Optional[EdgeTuple]:
    """Parse one line of an edge-list file.

    Returns ``None`` for blank lines and comments.  Raises
    :class:`StreamFormatError` when the line has fewer than two fields.

    Parameters
    ----------
    line:
        The raw text line.
    delimiter:
        Field separator; ``None`` means any whitespace.
    as_int:
        Convert endpoints to ``int`` when both fields parse as integers.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith(_COMMENT_PREFIXES):
        return None
    fields = stripped.split(delimiter)
    if len(fields) < 2:
        raise StreamFormatError(f"cannot parse edge from line: {line!r}")
    u_raw, v_raw = fields[0], fields[1]
    if as_int:
        try:
            return (int(u_raw), int(v_raw))
        except ValueError:
            pass
    return (u_raw, v_raw)


def iter_edge_lines(
    path: PathLike,
    delimiter: Optional[str] = None,
    as_int: bool = True,
    on_bad_record: str = "raise",
    bad_record_log: Optional[BadRecordLog] = None,
    quarantine_path: Optional[PathLike] = None,
) -> Iterator[EdgeTuple]:
    """Yield edges from a (possibly gzip-compressed) edge-list file.

    ``on_bad_record`` selects the damage policy (see the module
    docstring); ``bad_record_log`` receives the counters (a fresh one is
    used when omitted); ``quarantine_path`` overrides the default
    ``<input>.quarantine`` sidecar of the ``"quarantine"`` policy.
    """
    if on_bad_record not in BAD_RECORD_POLICIES:
        raise ValueError(
            f"unknown on_bad_record policy {on_bad_record!r}; "
            f"use one of {BAD_RECORD_POLICIES}"
        )
    path = Path(path)
    log = bad_record_log if bad_record_log is not None else BadRecordLog()
    quarantine_handle = None
    opener = gzip.open if path.suffix == ".gz" else open
    # Under the tolerant policies undecodable bytes become replacement
    # characters so the line survives to the parser (and the policy);
    # under "raise" decoding stays strict, as before.
    errors = "strict" if on_bad_record == "raise" else "replace"
    try:
        with opener(path, "rt", encoding="utf-8", errors=errors) as handle:  # type: ignore[operator]
            for line in handle:
                try:
                    edge = parse_edge_line(line, delimiter=delimiter, as_int=as_int)
                except StreamFormatError:
                    if on_bad_record == "raise":
                        raise
                    log.skipped += 1
                    if on_bad_record == "quarantine":
                        if quarantine_handle is None:
                            log.quarantine_path = Path(
                                quarantine_path
                                if quarantine_path is not None
                                else str(path) + ".quarantine"
                            )
                            quarantine_handle = open(
                                log.quarantine_path, "a", encoding="utf-8"
                            )
                        quarantine_handle.write(line.rstrip("\n") + "\n")
                        log.quarantined += 1
                    continue
                if edge is not None:
                    yield edge
    finally:
        if quarantine_handle is not None:
            quarantine_handle.close()


def iter_jsonl_records(
    path: PathLike,
    on_bad_record: str = "raise",
    bad_record_log: Optional[BadRecordLog] = None,
    quarantine_path: Optional[PathLike] = None,
) -> Iterator[Tuple]:
    """Yield records from a JSONL edge log (see ``JsonlEdgeLogWriter``).

    Each non-blank line must be a JSON array ``[u, v]`` or ``[u, v, t]``;
    yields ``(u, v)`` / ``(u, v, t)`` tuples in file order.  Damage — most
    commonly the torn final line an append-mode log is left with after a
    crash — follows the same ``on_bad_record`` policy as the edge-list
    readers: ``"raise"`` (default), ``"skip"`` (count in
    ``bad_record_log``), or ``"quarantine"`` (count and append the raw line
    to the sidecar).  Blank lines are format features, skipped silently.
    """
    if on_bad_record not in BAD_RECORD_POLICIES:
        raise ValueError(
            f"unknown on_bad_record policy {on_bad_record!r}; "
            f"use one of {BAD_RECORD_POLICIES}"
        )
    path = Path(path)
    log = bad_record_log if bad_record_log is not None else BadRecordLog()
    quarantine_handle = None
    opener = gzip.open if path.suffix == ".gz" else open
    errors = "strict" if on_bad_record == "raise" else "replace"
    try:
        with opener(path, "rt", encoding="utf-8", errors=errors) as handle:  # type: ignore[operator]
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if (
                        not isinstance(record, list)
                        or not 2 <= len(record) <= 3
                    ):
                        raise StreamFormatError(
                            f"JSONL record is not a [u, v(, t)] array: {stripped!r}"
                        )
                    if len(record) == 3:
                        record[2] = float(record[2])
                except (StreamFormatError, ValueError, TypeError) as exc:
                    if on_bad_record == "raise":
                        if isinstance(exc, StreamFormatError):
                            raise
                        raise StreamFormatError(
                            f"cannot parse JSONL record from line: {line!r}"
                        ) from exc
                    log.skipped += 1
                    if on_bad_record == "quarantine":
                        if quarantine_handle is None:
                            log.quarantine_path = Path(
                                quarantine_path
                                if quarantine_path is not None
                                else str(path) + ".quarantine"
                            )
                            quarantine_handle = open(
                                log.quarantine_path, "a", encoding="utf-8"
                            )
                        quarantine_handle.write(line.rstrip("\n") + "\n")
                        log.quarantined += 1
                    continue
                yield tuple(record)
    finally:
        if quarantine_handle is not None:
            quarantine_handle.close()


def read_jsonl_records(
    path: PathLike,
    on_bad_record: str = "raise",
    quarantine_path: Optional[PathLike] = None,
) -> Tuple[List[Tuple], BadRecordLog]:
    """Materialise a JSONL edge log; returns ``(records, bad_record_log)``.

    The convenience wrapper the service's recovery and audit tooling uses:
    ``records`` is the full list of ``(u, v)`` / ``(u, v, t)`` tuples and
    the log carries the damage counters (a torn final line under
    ``"skip"``/``"quarantine"`` shows up as ``skipped == 1`` with every
    earlier record intact).
    """
    log = BadRecordLog()
    records = list(
        iter_jsonl_records(
            path,
            on_bad_record=on_bad_record,
            bad_record_log=log,
            quarantine_path=quarantine_path,
        )
    )
    return records, log


def read_edge_list(
    path: PathLike,
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
    as_int: bool = True,
    drop_self_loops: bool = True,
    on_bad_record: str = "raise",
    quarantine_path: Optional[PathLike] = None,
) -> EdgeStream:
    """Read an edge-list file into an :class:`EdgeStream`.

    Parameters
    ----------
    path:
        File path; ``.gz`` files are decompressed transparently.
    name:
        Stream name; defaults to the file stem.
    delimiter:
        Field separator (``None`` = any whitespace, ``","`` for CSV).
    as_int:
        Convert node identifiers to integers when possible.
    drop_self_loops:
        Silently skip ``u == v`` records (they are meaningless for triangle
        counting and present in some raw datasets).
    on_bad_record:
        Damage policy for unparseable lines: ``"raise"`` (default),
        ``"skip"``, or ``"quarantine"`` (see the module docstring).  The
        returned stream carries the counters as ``stream.bad_records``
        (a :class:`BadRecordLog`).
    quarantine_path:
        Sidecar file of the ``"quarantine"`` policy (default:
        ``<input>.quarantine``).
    """
    path = Path(path)
    log = BadRecordLog()
    edges = iter_edge_lines(
        path,
        delimiter=delimiter,
        as_int=as_int,
        on_bad_record=on_bad_record,
        bad_record_log=log,
        quarantine_path=quarantine_path,
    )
    if drop_self_loops:
        edges = (e for e in edges if e[0] != e[1])
    stream = EdgeStream(edges, name=name or path.stem, validate=not drop_self_loops)
    stream.bad_records = log
    return stream
