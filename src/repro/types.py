"""Shared primitive types for the REPT reproduction library.

The whole library revolves around *undirected edges* flowing past as a
stream.  We keep the representation deliberately small and explicit:

* a **node** is any hashable identifier (typically an ``int`` or ``str``);
* an **edge** is an unordered pair of distinct nodes, canonicalised so that
  ``(u, v)`` and ``(v, u)`` refer to the same edge;
* a **timestamped edge** additionally carries the discrete arrival time
  ``t`` (1-based position in the stream) used by the η/η_v definitions.

Only plain dataclasses and tuples are used so that edges can be hashed,
pickled across process boundaries, and stored in sets without surprises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Tuple

NodeId = Hashable
"""Type alias for node identifiers.  Any hashable value is accepted."""

EdgeTuple = Tuple[NodeId, NodeId]
"""A plain ``(u, v)`` tuple; not necessarily canonicalised."""


def canonical_edge(u: NodeId, v: NodeId) -> EdgeTuple:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    The canonical form orders the two endpoints so that the same undirected
    edge always maps to the same tuple, which makes edges usable as
    dictionary keys and hash-function inputs.

    Parameters
    ----------
    u, v:
        The two endpoints.  They may be of mixed types; ordering falls back
        to the string representation when direct comparison fails.

    Raises
    ------
    ValueError
        If ``u == v`` (self-loops are not valid undirected edges for
        triangle counting and must be filtered by the stream layer).
    """
    if u == v:
        raise ValueError(f"self-loop ({u!r}, {v!r}) is not a valid undirected edge")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        # Mixed / incomparable types: order by a stable textual key.  repr()
        # is included so that e.g. the int 5 and the string "5" still get a
        # consistent relative order from either argument position.
        key_u = (str(u), repr(u))
        key_v = (str(v), repr(v))
        return (u, v) if key_u <= key_v else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected edge with canonical endpoint ordering.

    Instances are immutable and hashable.  ``Edge(2, 1) == Edge(1, 2)``.
    """

    u: NodeId
    v: NodeId

    def __post_init__(self) -> None:
        cu, cv = canonical_edge(self.u, self.v)
        object.__setattr__(self, "u", cu)
        object.__setattr__(self, "v", cv)

    def as_tuple(self) -> EdgeTuple:
        """Return the canonical ``(u, v)`` tuple."""
        return (self.u, self.v)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint that is not ``node``.

        Raises
        ------
        ValueError
            If ``node`` is not an endpoint of this edge.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def __iter__(self) -> Iterator[NodeId]:
        yield self.u
        yield self.v


@dataclass(frozen=True)
class TimestampedEdge:
    """An edge together with its 1-based arrival position on the stream."""

    edge: Edge
    timestamp: int

    def __post_init__(self) -> None:
        if self.timestamp < 1:
            raise ValueError("stream timestamps are 1-based and must be >= 1")

    @property
    def u(self) -> NodeId:
        return self.edge.u

    @property
    def v(self) -> NodeId:
        return self.edge.v


def normalize_edges(pairs: Iterable[EdgeTuple]) -> Iterator[Edge]:
    """Yield :class:`Edge` objects for an iterable of ``(u, v)`` pairs.

    Self-loops raise :class:`ValueError`; use the streaming transforms when
    the input may contain them.
    """
    for u, v in pairs:
        yield Edge(u, v)
