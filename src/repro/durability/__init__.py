"""Durability layer: checkpointing, recovery, and retry policies.

This package makes long-running runs survivable:

* :mod:`repro.durability.checkpoint` — integrity-checked, generation-
  numbered, atomically-renamed checkpoint files with a manifest, a
  retention policy and a recovery path that skips torn or corrupt files;
* :mod:`repro.durability.retry` — the shared exponential-backoff-with-
  jitter policy used by the parallel drivers' worker supervision and the
  campaign engine's retry-on-task-failure;
* :mod:`repro.durability.runner` — checkpointed drivers (``run_rept_durable``,
  ``run_estimator_durable``, ``run_monitor_durable``) whose resumed runs are
  bit-identical to uninterrupted ones;
* :mod:`repro.durability.wal` — the bounded write-ahead log of stream
  batches that the elastic shard coordinator replays after migrating a
  shard's restore point to a healthy worker.
"""

from repro.durability.checkpoint import (
    Checkpoint,
    CheckpointManager,
    RecoveryReport,
    shard_checkpoint_dir,
)
from repro.durability.retry import RetryPolicy, call_with_retry
from repro.durability.runner import (
    run_estimator_durable,
    run_monitor_durable,
    run_rept_durable,
)
from repro.durability.wal import BatchWAL, WalEntry

__all__ = [
    "BatchWAL",
    "Checkpoint",
    "CheckpointManager",
    "RecoveryReport",
    "RetryPolicy",
    "WalEntry",
    "call_with_retry",
    "run_estimator_durable",
    "run_monitor_durable",
    "run_rept_durable",
    "shard_checkpoint_dir",
]
