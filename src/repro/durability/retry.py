"""Exponential backoff with deterministic jitter.

One policy object serves every retry loop in the package — the chunked
drivers' worker supervision (:mod:`repro.core.parallel`) and the campaign
engine's retry-on-task-failure (:mod:`repro.experiments.campaign.engine`) —
so their behaviour under repeated failure is tuned in exactly one place.

Jitter is *deterministic*: each policy derives a private
:class:`random.Random` from its ``seed``, so a test that injects a fault on
attempt N observes the same delay schedule on every run.  Pass a different
seed per call site (e.g. derived from the task key) to decorrelate retry
storms without losing reproducibility.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries).
    base_delay:
        Delay before the first retry, in seconds.
    backoff:
        Multiplier applied to the delay after every failed attempt.
    max_delay:
        Ceiling on any single delay (applied before jitter).
    jitter:
        Fraction of the delay drawn uniformly at random and *added*:
        the actual sleep is ``delay * (1 + U[0, jitter])``.  0 disables it.
    seed:
        Seed of the private jitter RNG — the delay schedule is a pure
        function of (policy, attempt sequence).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> "list[float]":
        """The jittered delay before each retry (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed)
        delays = []
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            bounded = min(delay, self.max_delay)
            delays.append(bounded * (1.0 + rng.random() * self.jitter))
            delay *= self.backoff
        return delays

    def reseeded(self, seed: int) -> "RetryPolicy":
        """The same policy with a different jitter seed (per call site)."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.base_delay,
            backoff=self.backoff,
            max_delay=self.max_delay,
            jitter=self.jitter,
            seed=seed,
        )


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``; return its result or re-raise.

    Exceptions matching ``retry_on`` consume an attempt and trigger the
    next backoff delay; anything else propagates immediately.  ``on_retry``
    (if given) observes ``(attempt_number, exception)`` before each sleep —
    the supervision layer uses it to count retries in run metadata.  The
    final failure re-raises the last exception unchanged so callers keep
    the original type and traceback.
    """
    delays = policy.delays()
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= len(delays):
                raise
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
