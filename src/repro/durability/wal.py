"""Bounded write-ahead log of stream batches for shard replay.

The elastic shard coordinator (:mod:`repro.cluster`) assigns every
processor-group shard a *restore point* — the newest portable snapshot it
holds for that shard, in memory or on disk — and keeps here the suffix of
stream batches that some restore point does not yet cover.  When a worker
dies, its shards are rebuilt on a healthy worker from their restore points
and only the **unacked suffix** — the WAL entries newer than the restore
point — is replayed, so recovery cost is bounded by the snapshot cadence,
never by stream length.

The log is sequence-numbered and append-only between truncations:

* :meth:`BatchWAL.append` admits strictly increasing sequence numbers (a
  routing bug that would replay out of order is caught at the log, not in
  the counters);
* :meth:`BatchWAL.entries_after` returns the replay suffix for one restore
  point;
* :meth:`BatchWAL.truncate_through` drops entries every restore point has
  covered — the coordinator calls it with ``min`` over the per-shard
  snapshot offsets after each snapshot round.

Boundedness is cooperative: the WAL never refuses an append (losing a
batch would silently corrupt estimates — the one failure mode this layer
exists to prevent), but :attr:`BatchWAL.over_capacity` turns True once the
retained suffix exceeds ``capacity`` batches, which is the coordinator's
signal to force a snapshot round and truncate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence, Tuple


@dataclass(frozen=True)
class WalEntry:
    """One logged batch: its routing sequence number and its records."""

    seq: int
    batch: Sequence


class BatchWAL:
    """In-memory, bounded-by-contract log of ``(seq, batch)`` entries."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"WAL capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Deque[WalEntry] = deque()
        self._last_seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever appended (0 = empty history)."""
        return self._last_seq

    @property
    def over_capacity(self) -> bool:
        """Whether the retained suffix exceeds the configured capacity."""
        return len(self._entries) > self.capacity

    def append(self, seq: int, batch: Sequence) -> None:
        """Log one batch under ``seq`` (must exceed every earlier seq)."""
        if seq <= self._last_seq:
            raise ValueError(
                f"WAL sequence numbers must be strictly increasing: "
                f"got {seq} after {self._last_seq}"
            )
        self._entries.append(WalEntry(seq, batch))
        self._last_seq = seq

    def entries_after(self, seq: int) -> List[WalEntry]:
        """The replay suffix for a restore point at ``seq``, oldest first.

        Raises :class:`LookupError` when the suffix is not fully retained
        (``seq`` predates the oldest logged entry minus one): replaying a
        torn suffix would silently drop batches, so the caller must fall
        back to a newer restore point — or fail loudly.
        """
        suffix = [entry for entry in self._entries if entry.seq > seq]
        expected = self._last_seq - seq
        if len(suffix) != expected:
            raise LookupError(
                f"WAL no longer retains the suffix after seq {seq}: "
                f"{len(suffix)} of {expected} batches present"
            )
        return suffix

    def truncate_through(self, seq: int) -> int:
        """Drop entries with ``entry.seq <= seq``; returns how many."""
        dropped = 0
        entries = self._entries
        while entries and entries[0].seq <= seq:
            entries.popleft()
            dropped += 1
        return dropped

    def spans(self) -> Tuple[int, int]:
        """``(oldest_seq, newest_seq)`` of the retained entries (0, 0 if empty)."""
        if not self._entries:
            return (0, 0)
        return (self._entries[0].seq, self._entries[-1].seq)
