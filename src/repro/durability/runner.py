"""Durable drivers: checkpointed, resumable runs of the estimation engines.

Each driver runs its engine over a stream in fixed-size segments, writing a
:class:`~repro.durability.checkpoint.CheckpointManager` checkpoint after
every segment, and on startup recovers the newest valid checkpoint and
replays the stream from its recorded offset.  All three are **bit-identical
resumable**: a run killed at any point and resumed from its checkpoint
directory produces exactly the estimates of the uninterrupted run —

* :func:`run_rept_durable` checkpoints the
  :class:`~repro.core.state.GroupStateSet` through its portable (raw-node-
  keyed) snapshot and advances segments through
  :func:`~repro.core.parallel.advance_state_chunked`, whose shard-then-merge
  schedule is exact, so neither segment boundaries nor chunk boundaries nor
  the crash point show up in the counters;
* :func:`run_estimator_durable` checkpoints any picklable
  :class:`~repro.baselines.base.StreamingTriangleEstimator` whole — the
  pickle captures its RNG state (TRIÈST's reservoir coin-flips resume
  mid-sequence) and its sampled sets;
* :func:`run_monitor_durable` checkpoints a
  :class:`~repro.streaming.monitor.WindowedTriangleMonitor` whole, plus the
  window results already emitted, so the returned result list is complete
  even though pre-crash windows are not re-sealed on replay.

The drivers only require the *source* to be re-iterable from the start
(replay skips ``stream_offset`` records); they never require the crashed
process's memory.  Checkpoint compatibility is guarded through the header
``meta``: recovery rejects (with
:class:`~repro.exceptions.RecoveryError`) a checkpoint whose recorded
engine configuration differs from the caller's — resuming REPT with a
different ``(m, c)`` would silently corrupt counters otherwise.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.config import ReptConfig
from repro.core.state import GroupStateSet
from repro.durability.checkpoint import CheckpointManager, RecoveryReport
from repro.exceptions import RecoveryError
from repro.testing.faults import maybe_fail

#: Default stream records per segment (and thus per checkpoint).
DEFAULT_CHECKPOINT_EVERY = 100_000


def _segments(source, offset: int, segment_records: int):
    """Yield ``(next_offset, records)`` segments of ``source`` after ``offset``.

    ``source`` is re-iterated from the start; lists and tuples skip by
    slicing, everything else through :func:`itertools.islice`.
    """
    if isinstance(source, (list, tuple)):
        iterator = iter(source[offset:])
    else:
        iterator = islice(iter(source), offset, None)
    position = offset
    while True:
        segment = list(islice(iterator, segment_records))
        if not segment:
            return
        position += len(segment)
        yield position, segment


def _check_meta(report: RecoveryReport, expected: Dict[str, object]):
    """Validate a recovered checkpoint's meta; return the checkpoint or None."""
    if report.checkpoint is None:
        return None
    meta = report.checkpoint.meta
    for key, value in expected.items():
        if meta.get(key) != value:
            raise RecoveryError(
                f"checkpoint {report.checkpoint.path.name} is from an "
                f"incompatible run: meta[{key!r}] = {meta.get(key)!r}, "
                f"this run expects {value!r}"
            )
    return report.checkpoint


def run_rept_durable(
    edges: Iterable,
    config: ReptConfig,
    checkpoint_dir,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    use_processes: bool = False,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    supervision=None,
    keep: int = 3,
    resume: bool = True,
):
    """Run REPT durably over ``edges``; returns ``(estimate, report)``.

    The stream is consumed in segments of ``checkpoint_every`` records;
    after each segment the group states (portable snapshot), the stream
    offset, and the run configuration are checkpointed under
    ``checkpoint_dir``.  With ``resume=True`` (the default) an existing
    valid checkpoint is restored first and the stream replayed from its
    offset — the returned estimate is bit-identical to an uninterrupted
    run with the same parameters.

    ``edges`` must be re-iterable from the start on resume (a list, or a
    reader that restarts); generators consumed by the crashed process
    cannot be replayed.  ``use_processes`` routes each segment through the
    supervised chunked-process schedule; the serial schedule is used
    otherwise (both are exact, so this never changes the estimate).
    """
    from repro.core.parallel import advance_state_chunked

    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    manager = CheckpointManager(checkpoint_dir, keep=keep)
    expected_meta = {"engine": "rept", "config": repr(config)}
    state = GroupStateSet(config)
    offset = 0
    report = RecoveryReport()
    if resume:
        report = manager.recover()
        checkpoint = _check_meta(report, expected_meta)
        if checkpoint is not None:
            state.restore_portable(checkpoint.payload)
            offset = checkpoint.stream_offset

    for position, segment in _segments(edges, offset, checkpoint_every):
        maybe_fail("rept-segment", offset=offset)
        advance_state_chunked(
            state,
            segment,
            use_processes=use_processes,
            max_workers=max_workers,
            chunk_size=chunk_size,
            supervision=supervision,
        )
        manager.save(state.portable_state(), position, meta=expected_meta)
        offset = position

    return state.estimate(edges_processed=offset), report


def run_estimator_durable(
    factory: Callable[[], object],
    edges: Iterable,
    checkpoint_dir,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    keep: int = 3,
    resume: bool = True,
):
    """Run any picklable streaming estimator durably; returns
    ``(estimator, report)``.

    ``factory`` builds the fresh estimator when no checkpoint exists (or
    ``resume=False``); on resume the checkpointed estimator object itself
    is restored — pickling captures sampled edge sets and RNG state, so
    randomised estimators (TRIÈST) continue their coin-flip sequence
    exactly where the crashed run left it.  The estimator's class name is
    recorded in the checkpoint meta and checked on resume.

    The caller takes the final estimate from the returned estimator
    (``estimator.estimate()``), keeping this driver agnostic to the
    estimator interface beyond ``process_edges``/``process_edge``.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    manager = CheckpointManager(checkpoint_dir, keep=keep)
    estimator = factory()
    expected_meta = {"engine": "estimator", "class": type(estimator).__name__}
    offset = 0
    report = RecoveryReport()
    if resume:
        report = manager.recover()
        checkpoint = _check_meta(report, expected_meta)
        if checkpoint is not None:
            estimator = checkpoint.payload
            offset = checkpoint.stream_offset

    for position, segment in _segments(edges, offset, checkpoint_every):
        maybe_fail("estimator-segment", offset=offset)
        ingest = getattr(estimator, "process_edges", None)
        if ingest is not None:
            ingest(segment)
        else:
            for u, v in segment:
                estimator.process_edge(u, v)
        manager.save(estimator, position, meta=expected_meta)
        offset = position

    return estimator, report


def run_monitor_durable(
    factory: Callable[[], object],
    records: Iterable,
    checkpoint_dir,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    keep: int = 3,
    resume: bool = True,
    flush: bool = True,
):
    """Run a windowed monitor durably; returns ``(results, report)``.

    ``factory`` builds the fresh
    :class:`~repro.streaming.monitor.WindowedTriangleMonitor` (it must be
    picklable: REPT chains always are; custom ``estimator_factory``
    callables must be module-level, not lambdas).  Each checkpoint carries
    the monitor *and* every window result sealed so far, so the returned
    ``results`` list is complete across crashes: windows sealed before the
    last checkpoint come from the checkpoint, later ones from replay —
    and because the monitor's pane/watermark state round-trips exactly
    through pickle, the combined list is bit-identical to the
    uninterrupted run's.

    ``flush=True`` drains still-open windows once the stream ends (same
    contract as :meth:`WindowedTriangleMonitor.flush`).
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    manager = CheckpointManager(checkpoint_dir, keep=keep)
    monitor = factory()
    expected_meta = {"engine": "monitor", "class": type(monitor).__name__}
    results: List[object] = []
    offset = 0
    report = RecoveryReport()
    if resume:
        report = manager.recover()
        checkpoint = _check_meta(report, expected_meta)
        if checkpoint is not None:
            monitor = checkpoint.payload["monitor"]
            results = list(checkpoint.payload["results"])
            offset = checkpoint.stream_offset

    for position, segment in _segments(records, offset, checkpoint_every):
        maybe_fail("monitor-segment", offset=offset)
        results.extend(monitor.ingest(segment))
        manager.save(
            {"monitor": monitor, "results": results}, position, meta=expected_meta
        )
        offset = position

    if flush:
        results.extend(monitor.flush())
    return results, report
