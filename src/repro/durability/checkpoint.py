"""Integrity-checked, generation-numbered checkpoint files.

File format (one checkpoint = one file, ``ckpt-<generation:08d>.ckpt``)::

    REPTCKPT1\\n                  magic + format version
    {...header JSON...}\\n        generation, stream_offset, payload_bytes,
                                  payload_sha256, meta
    <payload bytes>               pickled application state

The header is authenticated by construction: a torn write truncates the
payload (length check fails), bit rot flips payload bytes (sha256 check
fails) or mangles the header (JSON parse fails) — every failure mode is
detected on read, and :meth:`CheckpointManager.recover` simply skips the
damaged file and falls back to the previous generation.

Writes are crash-safe: the file is staged under a temporary name in the
same directory, fsynced, then atomically renamed — a crash mid-write
leaves at worst a stale ``*.tmp`` that recovery ignores, never a plausible-
looking half checkpoint under the real name.  ``manifest.json`` (also
written atomically) records the known generations for observability, but
recovery never *trusts* it: the directory is rescanned and every candidate
file re-validated, so a manifest lost or lying about a deleted file cannot
break recovery.

Retention keeps the newest ``keep`` generations.  ``keep >= 2`` is the
useful minimum: the newest file could itself be the torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import CheckpointError, RecoveryError
from repro.testing.faults import maybe_fail

PathLike = Union[str, Path]

_MAGIC = b"REPTCKPT1\n"
_FILE_PATTERN = re.compile(r"^ckpt-(\d{8})\.ckpt$")

#: Manifest filename inside the checkpoint directory.
MANIFEST_FILE = "manifest.json"


@dataclass(frozen=True)
class Checkpoint:
    """One materialised checkpoint: application state at a stream offset."""

    generation: int
    stream_offset: int
    payload: object
    meta: Dict[str, object]
    path: Path


@dataclass
class RecoveryReport:
    """Outcome of one :meth:`CheckpointManager.recover` call.

    ``checkpoint`` is the newest valid checkpoint (None = fresh start);
    ``skipped`` lists the newer files that failed validation, with reasons —
    a non-empty list after a clean shutdown is worth alerting on.
    """

    checkpoint: Optional[Checkpoint] = None
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    examined: int = 0


def _checkpoint_name(generation: int) -> str:
    return f"ckpt-{generation:08d}.ckpt"


def shard_checkpoint_dir(base: PathLike, shard_id: int) -> Path:
    """Checkpoint directory for one processor-group shard.

    The elastic coordinator keeps one generation sequence per shard —
    ``<base>/shard-0007/ckpt-*.ckpt`` — so shard migrations restore from a
    directory whose name is derived from the stable group index, never from
    the (epoch-dependent) worker that happened to write the snapshot.
    """
    if shard_id < 0:
        raise CheckpointError(f"shard id must be >= 0, got {shard_id}")
    return Path(base) / f"shard-{shard_id:04d}"


class CheckpointManager:
    """Write, prune, and recover generation-numbered checkpoints.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first save).
    keep:
        Retention: how many newest generations survive pruning.

    The manager is crash-safe *and* concurrency-safe: generation numbers
    are claimed atomically (``os.link`` refuses to overwrite, so two
    processes saving into one directory can never interleave into a torn
    "newest" generation — the loser rescans and takes the next number).
    Recovery is read-only and may run anywhere.
    """

    def __init__(self, directory: PathLike, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"retention keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self._next_generation: Optional[int] = None

    # -- write path ----------------------------------------------------------

    def save(
        self,
        payload: object,
        stream_offset: int,
        meta: Optional[Dict[str, object]] = None,
    ) -> Checkpoint:
        """Persist ``payload`` as the next generation; returns the checkpoint.

        ``stream_offset`` is the number of stream records fully reflected in
        the payload — recovery replays the stream from there.  ``meta`` is
        free-form (config fingerprints, engine names); recovery consumers
        use it to reject checkpoints from an incompatible run.

        Raises :class:`CheckpointError` on any serialisation or I/O
        failure; earlier generations are never touched by a failed save.
        """
        if stream_offset < 0:
            raise CheckpointError(f"stream_offset must be >= 0, got {stream_offset}")
        generation = self._claim_generation()
        meta = dict(meta or {})
        try:
            body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint payload is not picklable: {exc}"
            ) from exc
        try:
            while True:
                maybe_fail("checkpoint-write", generation=generation)
                self.directory.mkdir(parents=True, exist_ok=True)
                header = {
                    "generation": generation,
                    "stream_offset": int(stream_offset),
                    "payload_bytes": len(body),
                    "payload_sha256": hashlib.sha256(body).hexdigest(),
                    "meta": meta,
                }
                path = self.directory / _checkpoint_name(generation)
                fd, temp_name = tempfile.mkstemp(
                    dir=self.directory, prefix=".ckpt-", suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(_MAGIC)
                        handle.write(
                            json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
                        )
                        handle.write(body)
                        handle.flush()
                        os.fsync(handle.fileno())
                    published = self._publish(temp_name, path)
                except BaseException:
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
                    raise
                if published:
                    break
                # Lost the claim race: a concurrent writer owns this
                # generation number.  Rescan the directory and take the next
                # free one — the header embeds the generation, so the file
                # is restaged from scratch rather than renamed.
                self._next_generation = None
                generation = self._claim_generation()
        except CheckpointError:
            raise
        except OSError as exc:
            raise CheckpointError(
                f"failed to write checkpoint generation {generation}: {exc}"
            ) from exc
        self._next_generation = generation + 1
        self._write_manifest()
        self._prune()
        return Checkpoint(
            generation=generation,
            stream_offset=int(stream_offset),
            payload=payload,
            meta=meta,
            path=path,
        )

    def _publish(self, temp_name: str, path: Path) -> bool:
        """Atomically claim ``path`` for the staged file; False = lost race.

        ``os.link`` refuses to overwrite an existing name (the O_EXCL idiom
        the fault harness uses for its once-only tokens), so two processes
        checkpointing the same directory can never both win one generation
        number — the loser restages under the next free number.  Exotic
        filesystems without hard links fall back to ``os.replace``
        (crash-safe, last-writer-wins — the historical single-writer
        behaviour).
        """
        try:
            os.link(temp_name, path)
        except FileExistsError:
            os.unlink(temp_name)
            return False
        except OSError:
            os.replace(temp_name, path)
            return True
        os.unlink(temp_name)
        return True

    def _claim_generation(self) -> int:
        if self._next_generation is None:
            existing = self._generations_on_disk()
            self._next_generation = (existing[-1] + 1) if existing else 0
        return self._next_generation

    def _generations_on_disk(self) -> List[int]:
        if not self.directory.is_dir():
            return []
        generations = []
        for entry in self.directory.iterdir():
            matched = _FILE_PATTERN.match(entry.name)
            if matched:
                generations.append(int(matched.group(1)))
        return sorted(generations)

    def _write_manifest(self) -> None:
        manifest = {
            "keep": self.keep,
            "generations": self._generations_on_disk(),
        }
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".manifest-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)
            os.replace(temp_name, self.directory / MANIFEST_FILE)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _prune(self) -> None:
        generations = self._generations_on_disk()
        for generation in generations[: -self.keep]:
            try:
                (self.directory / _checkpoint_name(generation)).unlink()
            except OSError:
                pass  # pruning is best-effort; retention re-runs next save
        if len(generations) > self.keep:
            self._write_manifest()

    # -- read path -----------------------------------------------------------

    def generations(self) -> List[int]:
        """Generations currently on disk, oldest first."""
        return self._generations_on_disk()

    def recover(self, strict: bool = False) -> RecoveryReport:
        """Restore the newest valid checkpoint, skipping damaged files.

        Candidates are tried newest-first; each must pass magic, header,
        payload-length and sha256 validation before its payload is
        unpickled.  With ``strict=True`` an empty result (no valid
        checkpoint at all) raises :class:`RecoveryError` instead of
        reporting a fresh start — for operators who *know* state existed.
        """
        report = RecoveryReport()
        for generation in reversed(self._generations_on_disk()):
            path = self.directory / _checkpoint_name(generation)
            report.examined += 1
            try:
                report.checkpoint = self._read(path, generation)
                return report
            except CheckpointError as exc:
                report.skipped.append((path.name, str(exc)))
        if strict:
            raise RecoveryError(
                f"no valid checkpoint under {self.directory} "
                f"(examined {report.examined}, "
                f"skipped {[name for name, _ in report.skipped]})"
            )
        return report

    def _read(self, path: Path, generation: int) -> Checkpoint:
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"unreadable: {exc}") from exc
        if not blob.startswith(_MAGIC):
            raise CheckpointError("bad magic (not a checkpoint, or torn at byte 0)")
        newline = blob.find(b"\n", len(_MAGIC))
        if newline < 0:
            raise CheckpointError("truncated before header end")
        try:
            header = json.loads(blob[len(_MAGIC) : newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt header: {exc}") from exc
        body = blob[newline + 1 :]
        if header.get("generation") != generation:
            raise CheckpointError(
                f"header names generation {header.get('generation')!r}, "
                f"file names {generation}"
            )
        if len(body) != header.get("payload_bytes"):
            raise CheckpointError(
                f"torn payload: {len(body)} bytes on disk, "
                f"header promises {header.get('payload_bytes')}"
            )
        if hashlib.sha256(body).hexdigest() != header.get("payload_sha256"):
            raise CheckpointError("payload sha256 mismatch (corrupt bytes)")
        try:
            payload = pickle.loads(body)
        except Exception as exc:
            raise CheckpointError(f"payload does not unpickle: {exc}") from exc
        return Checkpoint(
            generation=generation,
            stream_offset=int(header.get("stream_offset", 0)),
            payload=payload,
            meta=dict(header.get("meta", {})),
            path=path,
        )
