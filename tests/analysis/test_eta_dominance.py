"""Dataset-level checks of the paper's motivating observation (Figure 1).

The REPT argument rests on the covariance pair count η being much larger
than the triangle count τ on realistic graphs, so that the covariance term
``2η(p⁻¹−1)`` dominates MASCOT's variance.  The synthetic dataset registry
must preserve that property or the downstream accuracy figures would be
meaningless.
"""

import pytest

from repro.generators.datasets import load_dataset
from repro.graph.statistics import compute_statistics

# The dense heavy-tailed Chung-Lu analogues are the covariance-dominated
# ones; the BA analogues have milder ratios, mirroring the spread of the
# eta/tau ratio visible in Figure 1(a).
COVARIANCE_HEAVY = ["flickr-sim", "twitter-sim"]


@pytest.fixture(scope="module")
def dataset_stats():
    stats = {}
    for name in COVARIANCE_HEAVY:
        stream = load_dataset(name)
        stats[name] = compute_statistics(stream.edges(), name=name)
    return stats


class TestEtaDominance:
    def test_eta_exceeds_tau(self, dataset_stats):
        for name, stats in dataset_stats.items():
            assert stats.eta > stats.num_triangles, name

    def test_covariance_term_dominates_at_p_01(self, dataset_stats):
        for name, stats in dataset_stats.items():
            terms = stats.mascot_variance_terms(0.1)
            assert terms["covariance_term"] > terms["tau_term"], name

    def test_dominance_shrinks_as_p_decreases(self, dataset_stats):
        """Figure 1(b)-(d): the ratio covariance/tau term shrinks with p."""
        for name, stats in dataset_stats.items():
            ratio_01 = (
                stats.mascot_variance_terms(0.1)["covariance_term"]
                / stats.mascot_variance_terms(0.1)["tau_term"]
            )
            ratio_001 = (
                stats.mascot_variance_terms(0.01)["covariance_term"]
                / stats.mascot_variance_terms(0.01)["tau_term"]
            )
            assert ratio_001 < ratio_01, name

    def test_all_datasets_have_positive_triangles(self, dataset_stats):
        for name, stats in dataset_stats.items():
            assert stats.num_triangles > 0, name
