"""Tests for the closed-form variance formulas."""

import pytest

from repro.analysis.variance import (
    mascot_variance,
    parallel_mascot_variance,
    predicted_nrmse,
    rept_variance,
    variance_reduction_factor,
)
from repro.exceptions import ConfigurationError


class TestMascotVariance:
    def test_formula(self):
        # tau=10, eta=100, p=0.1 -> 10*(100-1) + 2*100*(10-1)
        assert mascot_variance(10, 100, 0.1) == pytest.approx(10 * 99 + 200 * 9)

    def test_p_one_gives_zero(self):
        assert mascot_variance(10, 100, 1.0) == 0.0

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            mascot_variance(1, 1, 0.0)

    def test_parallel_divides_by_c(self):
        single = mascot_variance(10, 100, 0.1)
        assert parallel_mascot_variance(10, 100, 10, 4) == pytest.approx(single / 4)


class TestReptVariance:
    def test_c_less_than_m(self):
        # (tau(m^2-c) + 2 eta (m-c)) / c
        assert rept_variance(10, 100, m=10, c=2) == pytest.approx(
            (10 * (100 - 2) + 200 * (10 - 2)) / 2
        )

    def test_c_equals_m_eliminates_covariance(self):
        assert rept_variance(10, 1_000_000, m=10, c=10) == pytest.approx(10 * 9)

    def test_exact_multiple(self):
        assert rept_variance(10, 1_000_000, m=10, c=30) == pytest.approx(10 * 9 / 3)

    def test_partial_group_combination_below_both(self):
        tau, eta, m, c = 50, 5000, 10, 25  # c1=2, c2=5
        combined = rept_variance(tau, eta, m, c)
        complete_only = tau * (m - 1) / 2
        partial_only = (tau * (m * m - 5) + 2 * eta * (m - 5)) / 5
        assert combined < complete_only
        assert combined < partial_only

    def test_rept_never_worse_than_parallel_mascot(self):
        for c in (2, 5, 10, 15, 20, 25, 30):
            rept = rept_variance(100, 10_000, m=10, c=c)
            baseline = parallel_mascot_variance(100, 10_000, m=10, c=c)
            assert rept <= baseline + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            rept_variance(1, 1, m=0, c=1)
        with pytest.raises(ConfigurationError):
            rept_variance(1, 1, m=2, c=0)


class TestHelpers:
    def test_predicted_nrmse(self):
        assert predicted_nrmse(4.0, 10.0) == pytest.approx(0.2)

    def test_predicted_nrmse_zero_truth(self):
        with pytest.raises(ConfigurationError):
            predicted_nrmse(1.0, 0.0)

    def test_variance_reduction_grows_with_eta(self):
        low = variance_reduction_factor(100, 100, m=10, c=10)
        high = variance_reduction_factor(100, 100_000, m=10, c=10)
        assert high > low > 1.0

    def test_reduction_factor_when_rept_exact(self):
        assert variance_reduction_factor(10, 10, m=1, c=1) == 1.0
