"""Tests for the GPS In-Stream estimator."""

import math
import statistics

import pytest

from repro.baselines.gps import GpsInStreamEstimator
from repro.exceptions import ConfigurationError


class TestGpsBasics:
    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            GpsInStreamEstimator(0)

    def test_full_budget_is_exact(self, clique_stream):
        estimate = GpsInStreamEstimator(len(clique_stream), seed=1).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))

    def test_budget_respected(self, medium_stream):
        estimator = GpsInStreamEstimator(80, seed=2, track_local=False)
        estimator.process_stream(medium_stream)
        assert estimator.edges_stored <= 80

    def test_self_loops_ignored(self):
        estimator = GpsInStreamEstimator(10, seed=1)
        estimator.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert estimator.estimate().global_count == pytest.approx(1.0)

    def test_local_counts_positive_where_triangles_exist(self, clique_stream):
        estimate = GpsInStreamEstimator(len(clique_stream), seed=1).run(clique_stream)
        assert all(estimate.local_count(node) > 0 for node in range(12))

    def test_metadata_contains_threshold(self, medium_stream):
        estimate = GpsInStreamEstimator(50, seed=1, track_local=False).run(
            medium_stream.prefix(1000)
        )
        assert "threshold" in estimate.metadata

    def test_estimates_nonnegative(self, medium_stream):
        estimate = GpsInStreamEstimator(60, seed=4, track_local=False).run(
            medium_stream.prefix(2000)
        )
        assert estimate.global_count >= 0


class TestGpsStatistics:
    def test_reasonable_accuracy_with_half_budget(self, medium_stream, medium_stats):
        truth = medium_stats.num_triangles
        budget = medium_stream.num_distinct_edges // 2
        estimates = [
            GpsInStreamEstimator(budget, seed=seed, track_local=False)
            .run(medium_stream)
            .global_count
            for seed in range(10)
        ]
        mean = statistics.mean(estimates)
        assert abs(mean - truth) / truth < 0.3

    def test_larger_budget_reduces_error(self, medium_stream, medium_stats):
        truth = medium_stats.num_triangles
        errors = {}
        for budget in (200, 2000):
            estimates = [
                GpsInStreamEstimator(budget, seed=seed, track_local=False)
                .run(medium_stream)
                .global_count
                for seed in range(8)
            ]
            errors[budget] = statistics.mean((e - truth) ** 2 for e in estimates)
        assert errors[2000] < errors[200]
