"""Tests for the DOULION estimator."""

import math
import statistics

import pytest

from repro.baselines.doulion import DoulionEstimator
from repro.exceptions import ConfigurationError


class TestDoulionBasics:
    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            DoulionEstimator(0.0)

    def test_probability_one_is_exact(self, clique_stream):
        estimate = DoulionEstimator(1.0, seed=1).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))

    def test_probability_one_local_exact(self, clique_stream):
        estimate = DoulionEstimator(1.0, seed=1).run(clique_stream)
        for node in range(12):
            assert estimate.local_count(node) == pytest.approx(math.comb(11, 2))

    def test_memory_roughly_p_fraction(self, medium_stream):
        estimator = DoulionEstimator(0.25, seed=2, track_local=False)
        estimator.process_stream(medium_stream)
        expected = 0.25 * medium_stream.num_distinct_edges
        assert 0.7 * expected < estimator.edges_stored < 1.3 * expected

    def test_self_loops_ignored(self):
        estimator = DoulionEstimator(1.0, seed=1)
        estimator.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert estimator.estimate().global_count == pytest.approx(1.0)

    def test_local_counts_only_positive_nodes(self, clique_stream):
        estimate = DoulionEstimator(0.6, seed=3).run(clique_stream)
        assert all(value > 0 for value in estimate.local_counts.values())


class TestDoulionStatistics:
    def test_roughly_unbiased(self, clique_stream):
        truth = math.comb(12, 3)
        estimates = [
            DoulionEstimator(0.6, seed=seed, track_local=False).run(clique_stream).global_count
            for seed in range(150)
        ]
        assert abs(statistics.mean(estimates) - truth) / truth < 0.1

    def test_mascot_beats_doulion_at_equal_p(self, medium_stream, medium_stats):
        """The semi-triangle estimators use unsampled closing edges; DOULION
        does not, so at the same p MASCOT should have lower MSE."""
        from repro.baselines.mascot import MascotEstimator

        truth = medium_stats.num_triangles
        p = 0.2
        doulion_estimates = [
            DoulionEstimator(p, seed=seed, track_local=False).run(medium_stream).global_count
            for seed in range(15)
        ]
        mascot_estimates = [
            MascotEstimator(p, seed=seed, track_local=False).run(medium_stream).global_count
            for seed in range(15)
        ]
        doulion_mse = statistics.mean((e - truth) ** 2 for e in doulion_estimates)
        mascot_mse = statistics.mean((e - truth) ** 2 for e in mascot_estimates)
        assert mascot_mse < doulion_mse
