"""Counted-vs-skipped audit: uniform self-loop semantics across estimators.

The library-wide contract (documented on StreamingTriangleEstimator): every
stream record — self-loops included — counts toward ``edges_processed``,
but self-loops never influence the estimate.  Feeding the same stream with
and without interleaved self-loops must therefore change only the processed
count, never the global or local estimates, for *every* estimator.
"""

import pytest

from repro.baselines.doulion import DoulionEstimator
from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.gps import GpsInStreamEstimator
from repro.baselines.mascot import MascotEstimator
from repro.baselines.parallel import parallelize
from repro.baselines.triest import TriestImprEstimator
from repro.baselines.triest_base import TriestBaseEstimator
from repro.core.config import ReptConfig
from repro.core.parallel import DriverBackedRept
from repro.core.rept import ReptEstimator

CLEAN = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 0), (1, 3)]
DIRTY = [(0, 1), (5, 5), (1, 2), (0, 2), (2, 3), (0, 0), (3, 0), (1, 3), (2, 2)]

FACTORIES = [
    pytest.param(lambda: ExactStreamingCounter(), id="exact"),
    pytest.param(lambda: DoulionEstimator(0.9, seed=4), id="doulion"),
    pytest.param(lambda: MascotEstimator(0.9, seed=4), id="mascot"),
    pytest.param(lambda: TriestImprEstimator(4, seed=4), id="triest-impr"),
    pytest.param(lambda: TriestBaseEstimator(4, seed=4), id="triest-base"),
    pytest.param(lambda: GpsInStreamEstimator(4, seed=4), id="gps"),
    pytest.param(lambda: ReptEstimator(ReptConfig(m=2, c=3, seed=4)), id="rept"),
    pytest.param(
        lambda: DriverBackedRept(ReptConfig(m=2, c=3, seed=4), backend="chunked-serial"),
        id="rept-driver",
    ),
    pytest.param(
        lambda: parallelize("mascot", 2, 0.9, len(CLEAN), seed=4), id="ensemble"
    ),
]


class TestSelfLoopSemantics:
    @pytest.mark.parametrize("factory", FACTORIES)
    def test_loops_counted_but_never_estimated(self, factory):
        clean = factory().run(CLEAN)
        dirty = factory().run(DIRTY)
        assert dirty.edges_processed == len(DIRTY)
        assert clean.edges_processed == len(CLEAN)
        assert dirty.global_count == clean.global_count
        assert dirty.local_counts == clean.local_counts
        assert dirty.edges_stored == clean.edges_stored

    def test_triest_weights_use_reservoir_clock(self):
        # Regression for the counted-vs-offered skew: with a budget smaller
        # than the stream, TRIÈST-IMPR's weight η_t = (t-1)(t-2)/(k(k-1))
        # must be driven by offered (non-loop) edges.  Before the fix, the
        # interleaved self-loops inflated t and hence the estimate.
        clean = TriestImprEstimator(4, seed=8).run(CLEAN)
        dirty = TriestImprEstimator(4, seed=8).run(DIRTY)
        assert dirty.global_count == clean.global_count

    def test_triest_base_scaling_uses_reservoir_clock(self):
        budget = 3
        clean = TriestBaseEstimator(budget, seed=8).run(CLEAN)
        dirty = TriestBaseEstimator(budget, seed=8).run(DIRTY)
        assert dirty.global_count == clean.global_count
