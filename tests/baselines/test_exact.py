"""Tests for the exact streaming counter."""

import math

from repro.baselines.exact import ExactStreamingCounter
from repro.graph.triangles import count_triangles, count_triangles_per_node


class TestExactStreamingCounter:
    def test_single_triangle(self, triangle_stream):
        estimate = ExactStreamingCounter().run(triangle_stream)
        assert estimate.global_count == 1
        assert estimate.local_counts == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_clique(self, clique_stream):
        estimate = ExactStreamingCounter().run(clique_stream)
        assert estimate.global_count == math.comb(12, 3)

    def test_matches_offline_counts(self, medium_stream):
        estimate = ExactStreamingCounter().run(medium_stream)
        graph = medium_stream.to_graph()
        assert estimate.global_count == count_triangles(graph)
        offline_local = count_triangles_per_node(graph)
        for node, value in estimate.local_counts.items():
            assert value == offline_local[node]

    def test_duplicate_edges_ignored(self):
        counter = ExactStreamingCounter()
        counter.process_stream([(0, 1), (1, 2), (0, 2), (0, 1), (1, 2)])
        assert counter.estimate().global_count == 1

    def test_self_loops_ignored(self):
        counter = ExactStreamingCounter()
        counter.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert counter.estimate().global_count == 1

    def test_edges_stored_and_processed(self, triangle_stream):
        counter = ExactStreamingCounter()
        counter.process_stream(triangle_stream)
        estimate = counter.estimate()
        assert estimate.edges_processed == 3
        assert estimate.edges_stored == 3

    def test_order_invariance_of_global_count(self, clique_stream):
        from repro.streaming.transforms import shuffle_stream

        shuffled = shuffle_stream(clique_stream, seed=5)
        assert (
            ExactStreamingCounter().run(clique_stream).global_count
            == ExactStreamingCounter().run(shuffled).global_count
        )

    def test_incremental_estimates_monotone(self, clique_stream):
        counter = ExactStreamingCounter()
        previous = 0.0
        for u, v in clique_stream:
            counter.process_edge(u, v)
            current = counter.estimate().global_count
            assert current >= previous
            previous = current
