"""Tests for the MASCOT estimator."""

import math
import statistics

import pytest

from repro.baselines.mascot import MascotEstimator
from repro.exceptions import ConfigurationError


class TestMascotBasics:
    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            MascotEstimator(0.0)

    def test_probability_one_is_exact(self, clique_stream):
        estimate = MascotEstimator(1.0, seed=1).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))

    def test_probability_one_local_exact(self, clique_stream):
        estimate = MascotEstimator(1.0, seed=1).run(clique_stream)
        for node in range(12):
            assert estimate.local_count(node) == pytest.approx(math.comb(11, 2))

    def test_local_tracking_can_be_disabled(self, clique_stream):
        estimate = MascotEstimator(0.5, seed=1, track_local=False).run(clique_stream)
        assert estimate.local_counts == {}
        assert estimate.global_count >= 0

    def test_self_loops_ignored(self):
        estimator = MascotEstimator(1.0, seed=1)
        estimator.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert estimator.estimate().global_count == pytest.approx(1.0)

    def test_memory_fraction_roughly_p(self, medium_stream):
        estimator = MascotEstimator(0.2, seed=3, track_local=False)
        estimator.process_stream(medium_stream)
        stored = estimator.edges_stored
        expected = 0.2 * medium_stream.num_distinct_edges
        assert 0.6 * expected < stored < 1.4 * expected

    def test_metadata_records_probability(self, triangle_stream):
        estimate = MascotEstimator(0.25, seed=1).run(triangle_stream)
        assert estimate.metadata["probability"] == 0.25


class TestMascotStatistics:
    def test_global_estimate_unbiased(self, clique_stream):
        """Mean of many independent runs should approach the true count."""
        truth = math.comb(12, 3)
        estimates = [
            MascotEstimator(0.5, seed=seed, track_local=False).run(clique_stream).global_count
            for seed in range(200)
        ]
        mean = statistics.mean(estimates)
        standard_error = statistics.pstdev(estimates) / math.sqrt(len(estimates))
        assert abs(mean - truth) < 4 * standard_error + 1e-9

    def test_larger_p_reduces_error(self, medium_stream, medium_stats):
        truth = medium_stats.num_triangles
        errors = {}
        for p in (0.1, 0.5):
            estimates = [
                MascotEstimator(p, seed=seed, track_local=False).run(medium_stream).global_count
                for seed in range(20)
            ]
            errors[p] = statistics.mean((estimate - truth) ** 2 for estimate in estimates)
        assert errors[0.5] < errors[0.1]
