"""Tests for the static wedge-sampling baseline (Section III-D scope)."""

import math

import pytest

from repro.baselines.wedge_sampling import WedgeSamplingEstimator
from repro.exceptions import ConfigurationError
from repro.graph.adjacency import AdjacencyGraph


class TestWedgeSampling:
    def test_invalid_sample_count(self):
        with pytest.raises(ConfigurationError):
            WedgeSamplingEstimator(0)

    def test_complete_graph_transitivity_one(self, clique_stream):
        graph = clique_stream.to_graph()
        result = WedgeSamplingEstimator(500, seed=1).estimate(graph)
        assert result.transitivity_estimate == pytest.approx(1.0)
        assert result.triangle_estimate == pytest.approx(math.comb(12, 3))

    def test_triangle_free_graph(self):
        star = AdjacencyGraph([(0, i) for i in range(1, 8)])
        result = WedgeSamplingEstimator(300, seed=1).estimate(star)
        assert result.transitivity_estimate == 0.0
        assert result.triangle_estimate == 0.0

    def test_empty_graph(self):
        result = WedgeSamplingEstimator(10, seed=1).estimate(AdjacencyGraph())
        assert result.triangle_estimate == 0.0
        assert result.samples == 0

    def test_estimate_close_on_medium_graph(self, medium_stream, medium_stats):
        graph = medium_stream.to_graph()
        result = WedgeSamplingEstimator(4000, seed=3).estimate(graph)
        truth = medium_stats.num_triangles
        assert abs(result.triangle_estimate - truth) / truth < 0.2

    def test_more_samples_reduce_error(self, medium_stream, medium_stats):
        graph = medium_stream.to_graph()
        truth = medium_stats.num_triangles
        errors = {}
        for samples in (100, 5000):
            trial_errors = []
            for seed in range(5):
                result = WedgeSamplingEstimator(samples, seed=seed).estimate(graph)
                trial_errors.append((result.triangle_estimate - truth) ** 2)
            errors[samples] = sum(trial_errors) / len(trial_errors)
        assert errors[5000] < errors[100]

    def test_wedge_count_reported(self, clique_stream):
        graph = clique_stream.to_graph()
        result = WedgeSamplingEstimator(10, seed=1).estimate(graph)
        assert result.num_wedges == 12 * math.comb(11, 2)
