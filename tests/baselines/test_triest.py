"""Tests for the TRIÈST-IMPR estimator."""

import math
import statistics

import pytest

from repro.baselines.triest import TriestImprEstimator
from repro.exceptions import ConfigurationError


class TestTriestBasics:
    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            TriestImprEstimator(0)

    def test_budget_at_least_stream_is_exact(self, clique_stream):
        estimate = TriestImprEstimator(len(clique_stream), seed=1).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))

    def test_budget_never_exceeded(self, medium_stream):
        estimator = TriestImprEstimator(100, seed=2, track_local=False)
        estimator.process_stream(medium_stream)
        assert estimator.edges_stored <= 100

    def test_weight_formula(self):
        estimator = TriestImprEstimator(10, seed=1)
        assert estimator._increment_weight(5) == 1.0  # below budget -> weight 1
        assert estimator._increment_weight(100) == pytest.approx(99 * 98 / (10 * 9))

    def test_single_edge_budget_weight(self):
        estimator = TriestImprEstimator(1, seed=1)
        assert estimator._increment_weight(100) == 1.0

    def test_self_loops_ignored(self):
        estimator = TriestImprEstimator(10, seed=1)
        estimator.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert estimator.estimate().global_count == pytest.approx(1.0)

    def test_local_counts_exact_with_full_budget(self, clique_stream):
        estimate = TriestImprEstimator(len(clique_stream), seed=1).run(clique_stream)
        for node in range(12):
            assert estimate.local_count(node) == pytest.approx(math.comb(11, 2))

    def test_counters_never_decrease(self, medium_stream):
        estimator = TriestImprEstimator(50, seed=3, track_local=False)
        previous = 0.0
        for index, (u, v) in enumerate(medium_stream):
            estimator.process_edge(u, v)
            if index % 500 == 0:
                current = estimator.estimate().global_count
                assert current >= previous
                previous = current


class TestTriestStatistics:
    def test_roughly_unbiased(self, clique_stream):
        truth = math.comb(12, 3)
        budget = len(clique_stream) // 2
        estimates = [
            TriestImprEstimator(budget, seed=seed, track_local=False)
            .run(clique_stream)
            .global_count
            for seed in range(200)
        ]
        mean = statistics.mean(estimates)
        assert abs(mean - truth) / truth < 0.15

    def test_larger_budget_reduces_error(self, medium_stream, medium_stats):
        truth = medium_stats.num_triangles
        errors = {}
        for budget in (300, 3000):
            estimates = [
                TriestImprEstimator(budget, seed=seed, track_local=False)
                .run(medium_stream)
                .global_count
                for seed in range(15)
            ]
            errors[budget] = statistics.mean((e - truth) ** 2 for e in estimates)
        assert errors[3000] < errors[300]
