"""Tests for the independent-ensemble (direct parallelisation) wrapper."""

import math
import statistics

import pytest

from repro.baselines.mascot import MascotEstimator
from repro.baselines.parallel import IndependentEnsemble, parallelize
from repro.exceptions import ConfigurationError


class TestIndependentEnsemble:
    def test_requires_positive_processor_count(self):
        with pytest.raises(ConfigurationError):
            IndependentEnsemble(lambda seed: MascotEstimator(0.5, seed=seed), 0)

    def test_members_receive_distinct_seeds(self, clique_stream):
        ensemble = IndependentEnsemble(
            lambda seed: MascotEstimator(0.5, seed=seed, track_local=False), 4, seed=1
        )
        ensemble.process_stream(clique_stream)
        member_estimates = [member.estimate().global_count for member in ensemble.members]
        assert len(set(member_estimates)) > 1

    def test_estimate_is_average_of_members(self, clique_stream):
        ensemble = IndependentEnsemble(
            lambda seed: MascotEstimator(0.5, seed=seed, track_local=False), 3, seed=2
        )
        estimate = ensemble.run(clique_stream)
        member_mean = statistics.mean(
            member.estimate().global_count for member in ensemble.members
        )
        assert estimate.global_count == pytest.approx(member_mean)

    def test_local_counts_averaged(self, clique_stream):
        ensemble = IndependentEnsemble(
            lambda seed: MascotEstimator(1.0, seed=seed), 3, seed=2
        )
        estimate = ensemble.run(clique_stream)
        assert estimate.local_count(0) == pytest.approx(math.comb(11, 2))

    def test_name_includes_member_method(self):
        ensemble = IndependentEnsemble(lambda seed: MascotEstimator(0.5, seed=seed), 2, seed=1)
        assert "mascot" in ensemble.name

    def test_more_processors_reduce_variance(self, medium_stream, medium_stats):
        truth = medium_stats.num_triangles
        variances = {}
        for c in (1, 8):
            estimates = [
                IndependentEnsemble(
                    lambda seed: MascotEstimator(0.2, seed=seed, track_local=False),
                    c,
                    seed=trial,
                )
                .run(medium_stream)
                .global_count
                for trial in range(12)
            ]
            variances[c] = statistics.pvariance(estimates)
        assert variances[8] < variances[1]


class TestParallelizeFactory:
    def test_known_methods(self, clique_stream):
        for method in ("mascot", "triest", "gps"):
            ensemble = parallelize(method, 2, 0.5, len(clique_stream), seed=1)
            estimate = ensemble.run(clique_stream)
            assert estimate.global_count >= 0
            assert len(ensemble.members) == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            parallelize("unknown", 2, 0.5, 100)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            parallelize("mascot", 2, 0.0, 100)

    def test_gps_budget_is_halved(self):
        ensemble = parallelize("gps", 1, 0.5, 1000, seed=1)
        assert ensemble.members[0].budget == 250

    def test_triest_budget_matches_probability(self):
        ensemble = parallelize("triest", 1, 0.25, 1000, seed=1)
        assert ensemble.members[0].budget == 250
