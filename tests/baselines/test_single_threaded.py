"""Tests for the single-threaded (combined-memory) baseline factories."""

import pytest

from repro.baselines.single_threaded import (
    make_single_threaded_gps,
    make_single_threaded_mascot,
    make_single_threaded_triest,
)
from repro.exceptions import ConfigurationError


class TestCombinedMemoryAccounting:
    def test_mascot_probability_scaled_by_c(self):
        estimator = make_single_threaded_mascot(0.1, 5, seed=1)
        assert estimator.probability == pytest.approx(0.5)
        assert estimator.name == "mascot-s"

    def test_mascot_probability_capped_at_one(self):
        estimator = make_single_threaded_mascot(0.1, 100, seed=1)
        assert estimator.probability == 1.0

    def test_triest_budget_scaled(self):
        estimator = make_single_threaded_triest(0.1, 4, stream_length=1000, seed=1)
        assert estimator.budget == 400
        assert estimator.name == "triest-s"

    def test_gps_budget_halved(self):
        estimator = make_single_threaded_gps(0.1, 4, stream_length=1000, seed=1)
        assert estimator.budget == 200
        assert estimator.name == "gps-s"

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            make_single_threaded_mascot(0.0, 4)

    def test_invalid_processor_count(self):
        with pytest.raises(ConfigurationError):
            make_single_threaded_triest(0.1, 0, stream_length=100)

    def test_estimators_run_end_to_end(self, clique_stream):
        for factory in (
            lambda: make_single_threaded_mascot(0.5, 2, seed=3),
            lambda: make_single_threaded_triest(0.5, 2, len(clique_stream), seed=3),
            lambda: make_single_threaded_gps(0.5, 2, len(clique_stream), seed=3),
        ):
            estimate = factory().run(clique_stream)
            assert estimate.global_count >= 0
