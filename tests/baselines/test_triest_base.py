"""Tests for the TRIÈST-BASE estimator."""

import math
import statistics

import pytest

from repro.baselines.triest import TriestImprEstimator
from repro.baselines.triest_base import TriestBaseEstimator
from repro.exceptions import ConfigurationError


class TestTriestBaseBasics:
    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            TriestBaseEstimator(0)

    def test_full_budget_is_exact(self, clique_stream):
        estimate = TriestBaseEstimator(len(clique_stream), seed=1).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))

    def test_full_budget_local_exact(self, clique_stream):
        estimate = TriestBaseEstimator(len(clique_stream), seed=1).run(clique_stream)
        for node in range(12):
            assert estimate.local_count(node) == pytest.approx(math.comb(11, 2))

    def test_budget_respected(self, medium_stream):
        estimator = TriestBaseEstimator(100, seed=2, track_local=False)
        estimator.process_stream(medium_stream)
        assert estimator.edges_stored <= 100

    def test_scaling_factor(self):
        # ξ(t) is driven by the reservoir clock (offered, non-loop edges),
        # per the counted-vs-skipped contract on the base class.
        estimator = TriestBaseEstimator(10, seed=1)
        estimator._reservoir.num_offered = 5
        assert estimator._scaling() == 1.0
        estimator._reservoir.num_offered = 100
        assert estimator._scaling() == pytest.approx(100 * 99 * 98 / (10 * 9 * 8))

    def test_raw_counters_never_negative_globally(self, medium_stream):
        estimator = TriestBaseEstimator(60, seed=4, track_local=False)
        for index, (u, v) in enumerate(medium_stream.prefix(3000)):
            estimator.process_edge(u, v)
            if index % 500 == 0:
                assert estimator._global >= 0

    def test_self_loops_ignored(self):
        estimator = TriestBaseEstimator(10, seed=1)
        estimator.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert estimator.estimate().global_count == pytest.approx(1.0)

    def test_metadata_reports_scaling(self, clique_stream):
        estimate = TriestBaseEstimator(10, seed=1).run(clique_stream)
        assert estimate.metadata["scaling"] >= 1.0


class TestTriestBaseStatistics:
    def test_roughly_unbiased(self, clique_stream):
        truth = math.comb(12, 3)
        budget = len(clique_stream) // 2
        estimates = [
            TriestBaseEstimator(budget, seed=seed, track_local=False)
            .run(clique_stream)
            .global_count
            for seed in range(300)
        ]
        assert abs(statistics.mean(estimates) - truth) / truth < 0.2

    def test_impr_variant_is_more_accurate(self, medium_stream, medium_stats):
        """TRIÈST-IMPR dominates BASE at the same budget (why the paper and
        this reproduction use IMPR in the comparisons)."""
        truth = medium_stats.num_triangles
        budget = 800
        base_estimates = [
            TriestBaseEstimator(budget, seed=seed, track_local=False)
            .run(medium_stream)
            .global_count
            for seed in range(12)
        ]
        impr_estimates = [
            TriestImprEstimator(budget, seed=seed, track_local=False)
            .run(medium_stream)
            .global_count
            for seed in range(12)
        ]
        base_mse = statistics.mean((e - truth) ** 2 for e in base_estimates)
        impr_mse = statistics.mean((e - truth) ** 2 for e in impr_estimates)
        assert impr_mse < base_mse
