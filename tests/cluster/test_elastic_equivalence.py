"""Property tests: elastic execution ≡ serial, across the (m, c) grid.

The ISSUE's correctness bar: for every REPT shape — single group, many
equal groups, a partial trailing group — the coordinator's estimate after
a *scripted* kill/join/rebalance sequence must be bit-identical to the
serial driver on the same stream.  Shard counters are placement-
independent (each shard sees the full stream through its own hash seed),
so any divergence here is a lost or double-applied batch — exactly the
corruption the WAL + restore-point machinery exists to prevent.
"""

from __future__ import annotations

import pytest

from repro.cluster import ElasticCoordinator
from repro.core.config import ReptConfig
from repro.core.parallel import run_rept

from tests.cluster.conftest import assert_bit_identical, make_edges

PROBE_NODES = (0, 3, 9, 27, 81)

#: (m, c) grid spanning the group-shape regimes: c < m (single partial
#: group), c == m (one full group), c = k*m (equal groups), and a ragged
#: c that leaves a partial trailing group.
GRID = [(4, 3), (4, 4), (4, 12), (8, 24), (8, 30), (16, 40)]

#: Scripted membership scenarios: (name, num_workers, script) where the
#: script maps a batch index to an action run *before* that batch.
def _kill_first(coord):
    coord.kill_worker(coord.worker_ids()[0])


def _kill_last(coord):
    coord.kill_worker(coord.worker_ids()[-1])


def _join(coord):
    coord.add_worker()


def _leave(coord):
    coord.remove_worker(coord.worker_ids()[0])


SCENARIOS = [
    ("kill-one", 2, {4: _kill_first}),
    ("join-one", 1, {4: _join}),
    ("rebalance", 2, {3: _join, 7: _leave}),
    ("kill-then-join", 2, {2: _kill_last, 6: _join}),
    ("churn", 3, {2: _kill_first, 4: _join, 6: _kill_last, 8: _join}),
]


def _run_scripted(config, edges, num_workers, script, batch=120):
    with ElasticCoordinator(
        config, num_workers=num_workers, snapshot_every=3, wal_capacity=16
    ) as coord:
        for index, start in enumerate(range(0, len(edges), batch)):
            action = script.get(index)
            if action is not None:
                action(coord)
            coord.submit(edges[start : start + batch])
        return coord.estimate(), dict(coord.counters)


@pytest.mark.parametrize("m,c", GRID)
@pytest.mark.parametrize(
    "name,num_workers,script", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_scripted_membership_is_bit_identical(m, c, name, num_workers, script):
    config = ReptConfig(m=m, c=c, seed=101 + m, track_local=True)
    edges = make_edges(1200, nodes=90, seed=m * 1000 + c)
    reference = run_rept(edges, config, backend="serial")
    estimate, counters = _run_scripted(config, edges, num_workers, script)
    assert_bit_identical(estimate, reference, PROBE_NODES)
    # the script's membership events must actually have been observed
    kills = sum(1 for a in script.values() if a in (_kill_first, _kill_last))
    joins = sum(1 for a in script.values() if a is _join)
    leaves = sum(1 for a in script.values() if a is _leave)
    assert counters["worker_deaths"] == kills
    assert counters["worker_joins"] == joins
    assert counters["worker_removals"] == leaves
    # Single-shard maps can see membership events that touch no owner (a
    # shardless worker dying, a joiner with nothing to steal), so only
    # multi-shard shapes guarantee observable migrations.
    if (kills or joins or leaves) and len(config.group_sizes()) >= 2:
        assert counters["shard_migrations"] > 0


@pytest.mark.parametrize("m,c", [(4, 14), (8, 30)])
def test_eta_tracking_survives_migration(m, c):
    # A ragged c (partial trailing group) with track_eta exercises the η
    # counter's merge path — and its eta_hat diagnostic — through a
    # kill + join cycle.
    config = ReptConfig(m=m, c=c, seed=404, track_local=True, track_eta=True)
    edges = make_edges(1000, nodes=60, seed=77)
    reference = run_rept(edges, config, backend="serial")
    estimate, counters = _run_scripted(
        config, edges, 2, {3: _kill_first, 6: _join}
    )
    assert_bit_identical(estimate, reference, PROBE_NODES)
    assert estimate.metadata["eta_hat"] == reference.metadata["eta_hat"]
    assert counters["worker_deaths"] == 1
